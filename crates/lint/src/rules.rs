//! The MASC rule engine: R1–R5 over a single file's token stream.
//!
//! Rules operate on *significant* tokens (comments stripped) with two
//! region masks: `#[cfg(test)]` / `#[test]` items and `macro_rules!`
//! bodies are excluded from every rule — the invariants govern shipping
//! decode/store/parser code, not its tests or macro plumbing.
//!
//! The engine is a lexical heuristic, not a type checker: it cannot do
//! dataflow, so R1's index rule and R2's allocation rule use a *guard
//! window* — a bounds-establishing token (`MAX_*`, `bounded*`, `.len()`,
//! `.min(…)`, a loop header) within the preceding [`GUARD_WINDOW_LINES`]
//! lines of the same file. False accepts are possible by construction;
//! the rules are tripwires that force every risky site to either carry an
//! obvious nearby guard, a justification pragma, or a baseline entry.

use crate::diag::{Finding, RuleId};
use crate::lexer::{lex, Token, TokenKind};
use crate::manifest::ClassSet;
use crate::pragma::{self, Pragma};

/// Lines above a risky site in which a guard token satisfies R1/R2.
pub const GUARD_WINDOW_LINES: u32 = 16;

/// Per-file input to the rule engine.
#[derive(Debug, Clone, Copy)]
pub struct FileInput<'s> {
    /// Workspace-relative path with `/` separators.
    pub path: &'s str,
    /// File contents.
    pub src: &'s str,
    /// Hardened-surface classes from the manifest (drives R1/R2).
    pub classes: ClassSet,
    /// True for library code (drives R3 payloads and R5 docs).
    pub is_lib: bool,
}

/// Everything the engine learns about one file. Cross-file rules
/// (`error-impl`) and pragma resolution are finished by the caller.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Raw findings, before pragma suppression.
    pub findings: Vec<Finding>,
    /// Parsed suppression pragmas.
    pub pragmas: Vec<Pragma>,
    /// `pub enum *Error` definitions: (name, line).
    pub error_enums: Vec<(String, u32)>,
    /// Type names with an `impl … Display for <name>` in this file.
    pub display_impls: Vec<String>,
    /// Type names with an `impl … Error for <name>` in this file.
    pub error_impls: Vec<String>,
}

/// Keywords that may directly precede a `[` that is *not* an index.
const NON_INDEX_KEYWORDS: [&str; 28] = [
    "return", "break", "continue", "in", "if", "else", "match", "while", "for", "loop", "move",
    "static", "const", "let", "mut", "ref", "unsafe", "async", "dyn", "impl", "where", "as", "use",
    "pub", "fn", "enum", "struct", "trait",
];

/// Chain-terminating methods that make a size expression derive from data
/// already held (rather than from a decoded claim). `nnz` is the sparse
/// layer's `len`: a validated pattern's non-zero count.
const SIZE_OF_HELD_DATA: [&str; 4] = ["len", "capacity", "count", "nnz"];

/// Guard calls accepted inside an R1 index window. `need` is the netlist
/// parser's arity guard (`need(n)?` checks `tokens.len()` before fixed
/// indexing) — see DESIGN.md §3.10.
const INDEX_GUARD_CALLS: [&str; 12] = [
    "len",
    "is_empty",
    "get",
    "get_mut",
    "min",
    "max",
    "clamp",
    "chunks",
    "chunks_exact",
    "windows",
    "split_at",
    "need",
];

/// Assertion macros recognized as explicit bounds contracts: a
/// `debug_assert!(k < self.len())` above a hot-path index documents the
/// caller invariant and (in debug/fuzz builds) enforces it.
const ASSERT_MACROS: [&str; 6] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Analyzes one file.
pub fn analyze(input: FileInput<'_>) -> FileAnalysis {
    let tokens = lex(input.src);
    let (pragmas, pragma_findings) = pragma::collect(input.path, input.src, &tokens);
    let scan = Scan::new(input, &tokens);
    let mut out = FileAnalysis {
        pragmas,
        ..FileAnalysis::default()
    };
    out.findings.extend(pragma_findings);
    if input.classes.hardened() {
        scan.rule_panic_calls(&mut out.findings);
        scan.rule_panic_macros(&mut out.findings);
        scan.rule_panic_index(&mut out.findings);
        scan.rule_unbounded_alloc(&mut out.findings);
    }
    if input.is_lib {
        scan.rule_error_payload(&mut out.findings);
        scan.rule_doc_coverage(&mut out.findings);
    }
    if input.classes.concurrency {
        crate::concurrency::check(&scan, &mut out.findings);
    }
    scan.rule_thread_spawn(&mut out.findings);
    scan.collect_error_types(&mut out);
    out
}

/// Token-stream view shared by the rules (including the R6–R8
/// concurrency rules in [`crate::concurrency`], which layer a block tree
/// from [`crate::analysis`] on top of it).
pub(crate) struct Scan<'s, 't> {
    pub(crate) input: FileInput<'s>,
    /// Full token stream, comments included.
    pub(crate) tokens: &'t [Token],
    /// Indices into `tokens` of non-comment tokens.
    pub(crate) sig: Vec<usize>,
    /// Per-`sig` index: token sits in a test item or macro body.
    pub(crate) excluded: Vec<bool>,
}

impl<'s, 't> Scan<'s, 't> {
    /// Test-only constructor for the analysis-layer unit tests.
    #[cfg(test)]
    pub(crate) fn for_tests(input: FileInput<'s>, tokens: &'t [Token]) -> Self {
        Self::new(input, tokens)
    }

    fn new(input: FileInput<'s>, tokens: &'t [Token]) -> Self {
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let mut scan = Scan {
            input,
            tokens,
            excluded: vec![false; sig.len()],
            sig,
        };
        scan.mark_excluded_regions();
        scan
    }

    /// The `si`-th significant token, if any.
    pub(crate) fn tok(&self, si: usize) -> Option<&Token> {
        self.sig.get(si).and_then(|&i| self.tokens.get(i))
    }

    pub(crate) fn kind(&self, si: usize) -> Option<TokenKind> {
        self.tok(si).map(|t| t.kind)
    }

    pub(crate) fn text(&self, si: usize) -> &str {
        self.tok(si).map(|t| t.text(self.input.src)).unwrap_or("")
    }

    pub(crate) fn line(&self, si: usize) -> u32 {
        self.tok(si).map(|t| t.line).unwrap_or(0)
    }

    pub(crate) fn is_punct(&self, si: usize, c: char) -> bool {
        self.kind(si) == Some(TokenKind::Punct) && self.text(si) == c.to_string().as_str()
    }

    pub(crate) fn is_ident(&self, si: usize, s: &str) -> bool {
        self.kind(si) == Some(TokenKind::Ident) && self.text(si) == s
    }

    /// True when sig tokens `si` and `si + 1` are adjacent in the source
    /// (no whitespace/comments between) — used to recognize `->` and `=>`
    /// so their `>` is not mistaken for a closing angle bracket.
    pub(crate) fn adjacent(&self, si: usize) -> bool {
        match (self.tok(si), self.tok(si + 1)) {
            (Some(a), Some(b)) => a.end == b.start,
            _ => false,
        }
    }

    /// Is the `>` at `si` the tail of a `->` / `=>` arrow?
    pub(crate) fn gt_is_arrow(&self, si: usize) -> bool {
        si > 0 && (self.text(si - 1) == "-" || self.text(si - 1) == "=") && self.adjacent(si - 1)
    }

    /// Index of the sig token closing the bracket opened at `si_open`
    /// (`(`/`)`, `[`/`]`, `{`/`}`). Unbalanced input returns the last
    /// token index, keeping every scan bounded.
    pub(crate) fn match_forward(&self, si_open: usize, open: char, close: char) -> usize {
        let mut depth = 0i64;
        let mut si = si_open;
        while let Some(t) = self.tok(si) {
            if t.kind == TokenKind::Punct {
                let txt = self.text(si);
                if txt.len() == 1 {
                    let c = txt.as_bytes().first().copied().unwrap_or(0) as char;
                    if c == open {
                        depth += 1;
                    } else if c == close {
                        depth -= 1;
                        if depth == 0 {
                            return si;
                        }
                    }
                }
            }
            si += 1;
        }
        self.sig.len().saturating_sub(1)
    }

    /// Marks `#[cfg(test)]` / `#[test]` items and `macro_rules!` bodies.
    fn mark_excluded_regions(&mut self) {
        let mut si = 0usize;
        while si < self.sig.len() {
            if self.is_punct(si, '#') && self.is_punct(si + 1, '[') && self.attr_is_test(si + 1) {
                let end = self.item_end_after_attrs(si);
                for flag in self
                    .excluded
                    .iter_mut()
                    .skip(si)
                    .take(end.saturating_sub(si) + 1)
                {
                    *flag = true;
                }
                si = end + 1;
            } else if self.is_ident(si, "macro_rules") && self.is_punct(si + 1, '!') {
                // `macro_rules! name { body }` — exclude the body token
                // tree (any of the three delimiters).
                let mut j = si + 2;
                if self.kind(j) == Some(TokenKind::Ident) {
                    j += 1;
                }
                let end = match self.text(j) {
                    "{" => self.match_forward(j, '{', '}'),
                    "(" => self.match_forward(j, '(', ')'),
                    "[" => self.match_forward(j, '[', ']'),
                    _ => j,
                };
                for flag in self
                    .excluded
                    .iter_mut()
                    .skip(si)
                    .take(end.saturating_sub(si) + 1)
                {
                    *flag = true;
                }
                si = end + 1;
            } else {
                si += 1;
            }
        }
    }

    /// Does the attribute opening at `si_bracket` gate on `test`?
    fn attr_is_test(&self, si_bracket: usize) -> bool {
        let close = self.match_forward(si_bracket, '[', ']');
        let head = self.text(si_bracket + 1);
        if head == "test" {
            return true;
        }
        if head != "cfg" {
            return false;
        }
        (si_bracket..=close).any(|si| self.is_ident(si, "test"))
    }

    /// Given `si` at a `#` starting an attribute, skips that attribute and
    /// any following ones, then returns the sig index ending the annotated
    /// item (its closing `}`, or its `;` for braceless items).
    fn item_end_after_attrs(&self, mut si: usize) -> usize {
        while self.is_punct(si, '#') && self.is_punct(si + 1, '[') {
            si = self.match_forward(si + 1, '[', ']') + 1;
        }
        // Scan to the first `{` or a `;` before any brace.
        let mut j = si;
        while let Some(_t) = self.tok(j) {
            if self.is_punct(j, ';') {
                return j;
            }
            if self.is_punct(j, '{') {
                return self.match_forward(j, '{', '}');
            }
            j += 1;
        }
        self.sig.len().saturating_sub(1)
    }

    /// Sig indices of tokens on lines `[line - GUARD_WINDOW_LINES, line]`.
    fn window(&self, line: u32) -> impl Iterator<Item = usize> + '_ {
        let lo = line.saturating_sub(GUARD_WINDOW_LINES);
        (0..self.sig.len()).filter(move |&si| {
            let l = self.line(si);
            l >= lo && l <= line
        })
    }

    /// True when the guard window above `line` contains a bounds
    /// indicator: a `MAX_*` constant, a `bounded*` helper, a clamp, a
    /// length/lookup call, a loop header, an assertion contract, or an
    /// ordered comparison (`<=`/`>=` — the shape of an explicit range
    /// check, and unlike `<`/`>` never part of a generic argument list).
    fn window_has_index_guard(&self, line: u32) -> bool {
        self.window(line).any(|si| match self.kind(si) {
            Some(TokenKind::Ident) => {
                let t = self.text(si);
                t.starts_with("MAX_")
                    || t.contains("bounded")
                    || t == "for"
                    || t == "while"
                    || (INDEX_GUARD_CALLS.contains(&t) && self.is_punct(si + 1, '('))
                    || (ASSERT_MACROS.contains(&t) && self.is_punct(si + 1, '!'))
            }
            Some(TokenKind::Punct) => {
                let t = self.text(si);
                (t == "<" || t == ">") && self.adjacent(si) && self.text(si + 1) == "="
            }
            _ => false,
        })
    }

    /// True when the guard window above `line` contains an allocation
    /// bound: a `MAX_*` comparison, a `bounded*` helper, a `.min(` clamp,
    /// a size-of-held-data call (`len()`/`capacity()`/`nnz()` — the count
    /// visibly derives from data already in memory), or an assertion
    /// pinning the size. Deliberately stricter than the index guard: a
    /// plain comparison does not qualify.
    fn window_has_alloc_guard(&self, line: u32) -> bool {
        self.window(line).any(|si| {
            if self.kind(si) != Some(TokenKind::Ident) {
                return false;
            }
            let t = self.text(si);
            t.starts_with("MAX_")
                || t.contains("bounded")
                || ((t == "min" || SIZE_OF_HELD_DATA.contains(&t)) && self.is_punct(si + 1, '('))
                || (ASSERT_MACROS.contains(&t) && self.is_punct(si + 1, '!'))
        })
    }

    pub(crate) fn push(
        &self,
        findings: &mut Vec<Finding>,
        rule: RuleId,
        si: usize,
        message: String,
    ) {
        findings.push(Finding {
            rule,
            file: self.input.path.to_string(),
            line: self.line(si),
            message,
        });
    }

    /// R1: `.unwrap()` / `.expect(…)`.
    fn rule_panic_calls(&self, findings: &mut Vec<Finding>) {
        for si in 0..self.sig.len() {
            if self.excluded[si] {
                continue;
            }
            let t = self.text(si);
            if (t == "unwrap" || t == "expect")
                && self.kind(si) == Some(TokenKind::Ident)
                && si > 0
                && self.is_punct(si - 1, '.')
                && self.is_punct(si + 1, '(')
            {
                self.push(
                    findings,
                    RuleId::PanicCall,
                    si,
                    format!("`.{t}(…)` in a hardened module; return a structured error instead"),
                );
            }
        }
    }

    /// R1: `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    fn rule_panic_macros(&self, findings: &mut Vec<Finding>) {
        for si in 0..self.sig.len() {
            if self.excluded[si] {
                continue;
            }
            let t = self.text(si);
            if matches!(t, "panic" | "unreachable" | "todo" | "unimplemented")
                && self.kind(si) == Some(TokenKind::Ident)
                && self.is_punct(si + 1, '!')
            {
                self.push(
                    findings,
                    RuleId::PanicMacro,
                    si,
                    format!("`{t}!` in a hardened module; return a structured error instead"),
                );
            }
        }
    }

    /// R1: unguarded index expressions `expr[…]`.
    fn rule_panic_index(&self, findings: &mut Vec<Finding>) {
        for si in 0..self.sig.len() {
            if self.excluded[si] || !self.is_punct(si, '[') || si == 0 {
                continue;
            }
            // Expression position: the `[` directly follows a value.
            let prev_kind = self.kind(si - 1);
            let prev_text = self.text(si - 1);
            let is_expr = match prev_kind {
                Some(TokenKind::Ident) => !NON_INDEX_KEYWORDS.contains(&prev_text),
                Some(TokenKind::Punct) => prev_text == ")" || prev_text == "]",
                _ => false,
            };
            if !is_expr {
                continue;
            }
            let close = self.match_forward(si, '[', ']');
            if close <= si + 1 {
                continue; // `[]` — not an index expression.
            }
            // `&x[..]` never panics.
            let content: Vec<usize> = (si + 1..close).collect();
            if content.iter().all(|&j| self.is_punct(j, '.')) {
                continue;
            }
            if self.window_has_index_guard(self.line(si)) {
                continue;
            }
            self.push(
                findings,
                RuleId::PanicIndex,
                si,
                format!(
                    "unguarded index `{}[…]` in a hardened module; use `.get(…)` or guard the bound",
                    prev_text
                ),
            );
        }
    }

    /// R2: allocations sized by decoded/wire variables.
    fn rule_unbounded_alloc(&self, findings: &mut Vec<Finding>) {
        for si in 0..self.sig.len() {
            if self.excluded[si] || self.kind(si) != Some(TokenKind::Ident) {
                continue;
            }
            let t = self.text(si);
            let (label, expr): (&str, Vec<usize>) = match t {
                "with_capacity"
                    if si > 0
                        && (self.is_punct(si - 1, '.') || self.is_punct(si - 1, ':'))
                        && self.is_punct(si + 1, '(') =>
                {
                    let close = self.match_forward(si + 1, '(', ')');
                    ("with_capacity", (si + 2..close).collect())
                }
                "resize" | "reserve" | "reserve_exact" | "resize_with"
                    if si > 0 && self.is_punct(si - 1, '.') && self.is_punct(si + 1, '(') =>
                {
                    let close = self.match_forward(si + 1, '(', ')');
                    let first_arg_end = self.top_level_comma(si + 2, close).unwrap_or(close);
                    (t, (si + 2..first_arg_end).collect())
                }
                "vec" if self.is_punct(si + 1, '!') && self.is_punct(si + 2, '[') => {
                    let close = self.match_forward(si + 2, '[', ']');
                    match self.top_level_semi(si + 3, close) {
                        Some(semi) => ("vec![…; n]", (semi + 1..close).collect()),
                        None => continue, // `vec![a, b, c]` literal.
                    }
                }
                _ => continue,
            };
            if !self.size_expr_is_risky(&expr) {
                continue;
            }
            if self.window_has_alloc_guard(self.line(si)) {
                continue;
            }
            self.push(
                findings,
                RuleId::UnboundedAlloc,
                si,
                format!(
                    "`{label}` sized by a variable with no `MAX_*` guard or `bounded` helper in reach"
                ),
            );
        }
    }

    /// First top-level `,` in `(start..end)`, tracking nested brackets.
    fn top_level_comma(&self, start: usize, end: usize) -> Option<usize> {
        self.top_level_punct(start, end, ',')
    }

    /// First top-level `;` in `(start..end)`, tracking nested brackets.
    fn top_level_semi(&self, start: usize, end: usize) -> Option<usize> {
        self.top_level_punct(start, end, ';')
    }

    fn top_level_punct(&self, start: usize, end: usize, which: char) -> Option<usize> {
        let mut depth = 0i64;
        for si in start..end {
            if self.kind(si) != Some(TokenKind::Punct) {
                continue;
            }
            match self.text(si) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                s if depth == 0 && s.len() == 1 && s.starts_with(which) => return Some(si),
                _ => {}
            }
        }
        None
    }

    /// A size expression is risky when it mentions a *bare* variable — one
    /// that is neither a call name nor the head of a chain ending in
    /// `.len()`/`.capacity()`/`.count()` — and carries no inline clamp.
    fn size_expr_is_risky(&self, expr: &[usize]) -> bool {
        let mut has_bare = false;
        for (k, &si) in expr.iter().enumerate() {
            if self.kind(si) != Some(TokenKind::Ident) {
                continue;
            }
            let t = self.text(si);
            // Inline clamps make the expression self-bounding.
            if t.starts_with("MAX_") || t.contains("bounded") {
                return false;
            }
            // SCREAMING_CASE idents are constants, not decoded variables.
            if !t.is_empty()
                && t.chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
            {
                continue;
            }
            if (t == "min" || t == "clamp") && self.is_punct(si + 1, '(') {
                return false;
            }
            // Call names are not variables.
            if self.is_punct(si + 1, '(') {
                continue;
            }
            // Path segments (`std::mem::size_of`) are not variables.
            if self.is_punct(si + 1, ':') || (si > 0 && self.is_punct(si - 1, ':')) {
                continue;
            }
            // Chain heads and fields: walk `ident (. ident)*`; if the chain
            // ends in a size-of-held-data call, the mention is fine.
            if k + 1 < expr.len() && self.is_punct(si + 1, '.') {
                let mut j = si;
                while self.is_punct(j + 1, '.') && self.kind(j + 2) == Some(TokenKind::Ident) {
                    j += 2;
                }
                if SIZE_OF_HELD_DATA.contains(&self.text(j)) && self.is_punct(j + 1, '(') {
                    continue;
                }
            }
            // Interior chain members are judged at the chain head.
            if si > 0 && self.is_punct(si - 1, '.') {
                continue;
            }
            has_bare = true;
        }
        has_bare
    }

    /// R3 (payload half): `pub fn … -> Result<_, String | Box<dyn …> |
    /// &str | ()>`.
    fn rule_error_payload(&self, findings: &mut Vec<Finding>) {
        for si in 0..self.sig.len() {
            if self.excluded[si] || !self.is_ident(si, "pub") {
                continue;
            }
            if self.is_punct(si + 1, '(') {
                continue; // pub(crate) etc. — not public API.
            }
            // Skip modifiers to find `fn`.
            let mut j = si + 1;
            loop {
                match self.text(j) {
                    "unsafe" | "async" | "extern" => j += 1,
                    "const" if self.is_ident(j + 1, "fn") => j += 1,
                    _ => break,
                }
                if self.kind(j) == Some(TokenKind::Str) {
                    j += 1; // extern "C"
                }
            }
            if !self.is_ident(j, "fn") {
                continue;
            }
            let name = self.text(j + 1).to_string();
            let Some((ret_start, ret_end)) = self.return_type_span(j + 1) else {
                continue;
            };
            if let Some(offender) = self.bad_result_payload(ret_start, ret_end) {
                self.push(
                    findings,
                    RuleId::ErrorPayload,
                    si,
                    format!(
                        "`pub fn {name}` returns `Result<_, {offender}>`; use a crate-local structured error type"
                    ),
                );
            }
        }
    }

    /// Given the sig index of a `fn`'s name, returns the sig-index span of
    /// its return type, or `None` when it returns `()` implicitly.
    fn return_type_span(&self, name_si: usize) -> Option<(usize, usize)> {
        let mut j = name_si + 1;
        // Optional generics.
        if self.is_punct(j, '<') {
            j = self.match_angle(j) + 1;
        }
        if !self.is_punct(j, '(') {
            return None;
        }
        j = self.match_forward(j, '(', ')') + 1;
        // Arrow?
        if !(self.text(j) == "-" && self.text(j + 1) == ">" && self.adjacent(j)) {
            return None;
        }
        let start = j + 2;
        let mut k = start;
        let mut depth = 0i64;
        while let Some(_t) = self.tok(k) {
            let txt = self.text(k);
            match txt {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "<" if self.kind(k) == Some(TokenKind::Punct) => depth += 1,
                ">" if self.kind(k) == Some(TokenKind::Punct) && !self.gt_is_arrow(k) => depth -= 1,
                "{" | ";" if depth <= 0 => return Some((start, k)),
                "where" if depth <= 0 => return Some((start, k)),
                _ => {}
            }
            k += 1;
        }
        Some((start, self.sig.len()))
    }

    /// Matches `<` at `si` to its closing `>`, skipping arrow `>`s.
    fn match_angle(&self, si_open: usize) -> usize {
        let mut depth = 0i64;
        let mut si = si_open;
        while let Some(t) = self.tok(si) {
            if t.kind == TokenKind::Punct {
                match self.text(si) {
                    "<" => depth += 1,
                    ">" if !self.gt_is_arrow(si) => {
                        depth -= 1;
                        if depth == 0 {
                            return si;
                        }
                    }
                    _ => {}
                }
            }
            si += 1;
        }
        self.sig.len().saturating_sub(1)
    }

    /// If the return type in `(start..end)` is a `Result` whose error
    /// parameter is a stringly/boxed payload, returns its description.
    fn bad_result_payload(&self, start: usize, end: usize) -> Option<String> {
        let result_si =
            (start..end).find(|&si| self.is_ident(si, "Result") && self.is_punct(si + 1, '<'))?;
        let close = self.match_angle(result_si + 1);
        let comma = self.top_level_comma_angle(result_si + 2, close)?;
        let err: Vec<usize> = (comma + 1..close).collect();
        let has = |s: &str| err.iter().any(|&si| self.is_ident(si, s));
        if has("String") {
            return Some("String".to_string());
        }
        if has("Box") && has("dyn") {
            return Some("Box<dyn …>".to_string());
        }
        if has("str") {
            return Some("&str".to_string());
        }
        if err.len() == 2
            && err
                .first()
                .map(|&si| self.is_punct(si, '('))
                .unwrap_or(false)
            && err
                .get(1)
                .map(|&si| self.is_punct(si, ')'))
                .unwrap_or(false)
        {
            return Some("()".to_string());
        }
        None
    }

    /// First `,` at angle-depth 0 in `(start..end)` (inside a `Result<…>`).
    fn top_level_comma_angle(&self, start: usize, end: usize) -> Option<usize> {
        let mut depth = 0i64;
        for si in start..end {
            if self.kind(si) != Some(TokenKind::Punct) {
                continue;
            }
            match self.text(si) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "<" => depth += 1,
                ">" if !self.gt_is_arrow(si) => depth -= 1,
                "," if depth == 0 => return Some(si),
                _ => {}
            }
        }
        None
    }

    /// R4: `thread::spawn` outside a join-on-drop owner.
    fn rule_thread_spawn(&self, findings: &mut Vec<Finding>) {
        let file_has_join_on_drop = self.has_drop_impl_with_join();
        for si in 0..self.sig.len() {
            if self.excluded[si] {
                continue;
            }
            if self.is_ident(si, "spawn")
                && si >= 3
                && self.is_punct(si - 1, ':')
                && self.is_punct(si - 2, ':')
                && self.is_ident(si - 3, "thread")
                && !file_has_join_on_drop
            {
                self.push(
                    findings,
                    RuleId::ThreadSpawn,
                    si,
                    "`thread::spawn` without a join-on-drop owner in this file; wrap the handle \
                     or use `std::thread::scope`"
                        .to_string(),
                );
            }
        }
    }

    /// Does any `impl Drop for …` block in this file call `join`?
    fn has_drop_impl_with_join(&self) -> bool {
        for si in 0..self.sig.len() {
            if !self.is_ident(si, "impl") {
                continue;
            }
            // Find the `for` of this impl header before its `{`.
            let mut j = si + 1;
            let mut is_drop = false;
            while let Some(_t) = self.tok(j) {
                if self.is_punct(j, '{') {
                    break;
                }
                if self.is_ident(j, "for") && self.is_ident(j - 1, "Drop") {
                    is_drop = true;
                }
                j += 1;
            }
            if is_drop && self.is_punct(j, '{') {
                let end = self.match_forward(j, '{', '}');
                if (j..end).any(|k| self.is_ident(k, "join")) {
                    return true;
                }
            }
        }
        false
    }

    /// R5: `pub` items need doc comments.
    fn rule_doc_coverage(&self, findings: &mut Vec<Finding>) {
        for si in 0..self.sig.len() {
            if self.excluded[si] || !self.is_ident(si, "pub") {
                continue;
            }
            if self.is_punct(si + 1, '(') {
                continue; // pub(crate)/pub(super) — not public API.
            }
            let mut j = si + 1;
            loop {
                match self.text(j) {
                    "unsafe" | "async" => j += 1,
                    "extern" => {
                        j += 1;
                        if self.kind(j) == Some(TokenKind::Str) {
                            j += 1;
                        }
                    }
                    "const" if self.is_ident(j + 1, "fn") => j += 1,
                    "static" if self.is_ident(j + 1, "mut") => break,
                    _ => break,
                }
            }
            let kind = self.text(j);
            if !matches!(
                kind,
                "fn" | "struct" | "enum" | "trait" | "mod" | "const" | "static" | "type" | "union"
            ) {
                continue; // field, `pub use`, …
            }
            // `pub mod name;` — the module file documents itself via `//!`.
            if kind == "mod" && self.is_punct(j + 2, ';') {
                continue;
            }
            let name = if self.is_ident(j + 1, "mut") {
                self.text(j + 2).to_string()
            } else {
                self.text(j + 1).to_string()
            };
            if !self.has_doc_before(si) {
                self.push(
                    findings,
                    RuleId::DocMissing,
                    si,
                    format!("public {kind} `{name}` has no doc comment"),
                );
            }
        }
    }

    /// Walks back from the `pub` at sig index `si` over attributes and
    /// plain comments, looking for an outer doc comment (`///`, `/** */`,
    /// or a `#[doc…]` attribute).
    fn has_doc_before(&self, si: usize) -> bool {
        let Some(&full_start) = self.sig.get(si) else {
            return false;
        };
        let mut k = full_start;
        while k > 0 {
            k -= 1;
            let Some(t) = self.tokens.get(k) else {
                return false;
            };
            let text = t.text(self.input.src);
            match t.kind {
                TokenKind::LineComment => {
                    if text.starts_with("///") {
                        return true;
                    }
                    if text.starts_with("//!") {
                        return false;
                    }
                    // Plain comment (e.g. a pragma): transparent.
                }
                TokenKind::BlockComment => {
                    if text.starts_with("/**") && text != "/**/" {
                        return true;
                    }
                    if text.starts_with("/*!") {
                        return false;
                    }
                }
                TokenKind::Punct if text == "]" => {
                    // Attribute: scan back to its `[`, checking for `doc`.
                    let mut depth = 1i64;
                    let mut saw_doc = false;
                    while k > 0 && depth > 0 {
                        k -= 1;
                        let Some(inner) = self.tokens.get(k) else {
                            return false;
                        };
                        let itext = inner.text(self.input.src);
                        match inner.kind {
                            TokenKind::Punct if itext == "]" => depth += 1,
                            TokenKind::Punct if itext == "[" => depth -= 1,
                            TokenKind::Ident if itext == "doc" => saw_doc = true,
                            _ => {}
                        }
                    }
                    if saw_doc {
                        return true;
                    }
                    // Step over the `#` (and `!` of an inner attribute).
                    while k > 0 {
                        let Some(prev) = self.tokens.get(k - 1) else {
                            break;
                        };
                        let ptext = prev.text(self.input.src);
                        if prev.kind == TokenKind::Punct && (ptext == "#" || ptext == "!") {
                            k -= 1;
                        } else {
                            break;
                        }
                    }
                }
                _ => return false,
            }
        }
        false
    }

    /// Collects `pub enum *Error` definitions and `Display`/`Error` impl
    /// targets for the cross-file R3 check.
    fn collect_error_types(&self, out: &mut FileAnalysis) {
        for si in 0..self.sig.len() {
            if self.excluded[si] {
                continue;
            }
            if self.is_ident(si, "pub") && self.is_ident(si + 1, "enum") {
                let name = self.text(si + 2);
                if name.ends_with("Error") && !name.is_empty() {
                    out.error_enums.push((name.to_string(), self.line(si)));
                }
            }
            if self.is_ident(si, "for") && si > 0 {
                // `impl … Display for X` / `impl … Error for X` — the trait
                // path's last segment sits directly before `for`.
                let trait_seg = self.text(si - 1);
                if trait_seg != "Display" && trait_seg != "Error" {
                    continue;
                }
                // Confirm we are in an impl header: scan back for `impl`
                // on the same statement (bounded look-back).
                let is_impl = (si.saturating_sub(12)..si).any(|k| self.is_ident(k, "impl"));
                if !is_impl {
                    continue;
                }
                // Target: last ident of the path after `for`, before `<`,
                // `{`, or `where`.
                let mut j = si + 1;
                let mut target = String::new();
                while let Some(_t) = self.tok(j) {
                    let txt = self.text(j);
                    if txt == "{" || txt == "<" || txt == "where" {
                        break;
                    }
                    if self.kind(j) == Some(TokenKind::Ident) {
                        target = txt.to_string();
                    }
                    j += 1;
                }
                if target.is_empty() {
                    continue;
                }
                if trait_seg == "Display" {
                    out.display_impls.push(target);
                } else {
                    out.error_impls.push(target);
                }
            }
        }
    }
}
