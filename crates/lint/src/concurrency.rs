//! R6–R8: concurrency discipline for `concurrency`-class modules.
//!
//! These rules encode the coordination invariants the worker-pool era
//! (PRs 6–9) depends on, pitched at the same tripwire level as R1/R2 —
//! every flagged site either gets fixed or carries a reasoned pragma:
//!
//! - **R6 condvar discipline** (`condvar-wait-loop`,
//!   `condvar-pred-unguarded`, `condvar-notify-unguarded`): waits sit
//!   under a `while`/`loop` predicate re-check, wait predicates read
//!   state through the guard they pass to the wait, and every notify is
//!   preceded by a lock acquisition in the enclosing function — the
//!   exact shape of PR 8's lost-wakeup bug (`closed` flag written
//!   outside the queue mutex before `notify_all`).
//! - **R7 lock hygiene** (`guard-across-blocking`, `lock-order`): no
//!   live mutex guard across channel/join/blocking-I/O calls unless the
//!   call is rooted at the guard itself (locking the writer *is* the
//!   point of `lock(out).write…`), and the per-file two-lock acquisition
//!   order forms an acyclic graph.
//! - **R8 worker lifecycle** (`spawn-discard`, `sender-live-join`,
//!   `unwind-discard`): scoped-spawn handles are consumed, channel
//!   senders are dropped before a same-block join, and `catch_unwind`
//!   results are mapped, never discarded.
//!
//! Soundness limits are documented in DESIGN.md §3.15: the layer sees
//! one file at a time, resolves bindings lexically, and cannot follow
//! moves or aliases — the interleaving explorer in `masc-testkit::sched`
//! covers the dynamic side of the same invariants.

use crate::analysis::{
    bindings_in, chain_root, is_lock_name, receiver_is_lock_call, BlockHeader, Blocks,
};
use crate::diag::{Finding, RuleId};
use crate::lexer::TokenKind;
use crate::rules::{Scan, GUARD_WINDOW_LINES};

/// Blocking calls a live guard must not span (R7). `wait` is absent on
/// purpose: `Condvar::wait` releases the guard it is handed.
const BLOCKING_CALLS: [&str; 9] = [
    "send",
    "recv",
    "recv_timeout",
    "join",
    "write_all",
    "read_exact",
    "read_line",
    "read_to_end",
    "flush",
];

/// Entry point: runs every R6–R8 check over one file.
pub(crate) fn check(scan: &Scan<'_, '_>, findings: &mut Vec<Finding>) {
    let blocks = Blocks::build(scan);
    rule_condvar_wait(scan, &blocks, findings);
    rule_condvar_notify(scan, &blocks, findings);
    rule_guards(scan, &blocks, findings);
    rule_spawn_discard(scan, findings);
    rule_sender_live_join(scan, &blocks, findings);
    rule_unwind_discard(scan, findings);
}

/// R6: `wait`/`wait_timeout` must sit under a `while`/`loop`/`for`
/// re-check before the enclosing `fn`/closure boundary, and a `while`
/// predicate must read through the guard passed to the wait.
fn rule_condvar_wait(scan: &Scan<'_, '_>, blocks: &Blocks, findings: &mut Vec<Finding>) {
    for si in 0..scan.sig.len() {
        if scan.excluded[si] || scan.kind(si) != Some(TokenKind::Ident) {
            continue;
        }
        let name = scan.text(si);
        // `wait_while`/`wait_timeout_while` loop internally.
        if !matches!(name, "wait" | "wait_timeout")
            || !scan.is_punct(si + 1, '(')
            || si == 0
            || !scan.is_punct(si - 1, '.')
        {
            continue;
        }
        // Guard binding: first identifier of the first wait argument.
        let close = scan.match_forward(si + 1, '(', ')');
        let guard = (si + 2..close)
            .find(|&j| scan.kind(j) == Some(TokenKind::Ident))
            .map(|j| scan.text(j).to_string());

        let Some(start) = blocks.enclosing(si) else {
            scan.push(
                findings,
                RuleId::CondvarWaitLoop,
                si,
                format!("`.{name}(…)` with no enclosing predicate re-check loop"),
            );
            continue;
        };
        let mut loop_block: Option<usize> = None;
        let mut saw_if = false;
        for id in blocks.ancestors(start) {
            match blocks.header(id) {
                BlockHeader::While | BlockHeader::Loop | BlockHeader::For => {
                    loop_block = Some(id);
                    break;
                }
                BlockHeader::If => saw_if = true,
                BlockHeader::Fn | BlockHeader::Closure => break,
                BlockHeader::Match | BlockHeader::Other => {}
            }
        }
        let Some(lb) = loop_block else {
            let msg = if saw_if {
                format!(
                    "`.{name}(…)` guarded by `if` with no enclosing loop; a stolen wakeup \
                     leaves the predicate unchecked — use `while` (or `wait_while`)"
                )
            } else {
                format!("`.{name}(…)` with no enclosing predicate re-check loop")
            };
            scan.push(findings, RuleId::CondvarWaitLoop, si, msg);
            continue;
        };
        // Predicate check, only for `while <pred>` loops: the predicate
        // must mention the guard the wait consumes/rebinds.
        if blocks.header(lb) != BlockHeader::While {
            continue;
        }
        let Some(guard) = guard else { continue };
        let open = blocks.blocks[lb].open;
        let Some(kw) = find_header_keyword(scan, open, "while") else {
            continue;
        };
        let mentions_guard =
            (kw + 1..open).any(|j| scan.kind(j) == Some(TokenKind::Ident) && scan.text(j) == guard);
        if !mentions_guard {
            scan.push(
                findings,
                RuleId::CondvarPredUnguarded,
                si,
                format!(
                    "wait predicate on line {} never reads through the guard `{guard}` it \
                     passes to `.{name}(…)`; the flag it polls is not protected by this mutex",
                    scan.line(kw)
                ),
            );
        }
    }
}

/// Backward scan from a block's `{` for its introducing keyword.
fn find_header_keyword(scan: &Scan<'_, '_>, open_si: usize, kw: &str) -> Option<usize> {
    let floor = open_si.saturating_sub(64);
    let mut depth = 0i64;
    let mut si = open_si;
    while si > floor {
        si -= 1;
        match scan.text(si) {
            ")" | "]" => depth += 1,
            "(" | "[" => depth -= 1,
            ";" | "{" | "}" if depth == 0 => return None,
            t if depth == 0 && t == kw && scan.kind(si) == Some(TokenKind::Ident) => {
                return Some(si)
            }
            _ => {}
        }
    }
    None
}

/// R6: `notify_one`/`notify_all` must follow a lock acquisition in the
/// enclosing function, within the guard window — the state change the
/// notify advertises must have happened under the mutex.
fn rule_condvar_notify(scan: &Scan<'_, '_>, blocks: &Blocks, findings: &mut Vec<Finding>) {
    for si in 0..scan.sig.len() {
        if scan.excluded[si] || scan.kind(si) != Some(TokenKind::Ident) {
            continue;
        }
        let name = scan.text(si);
        if !matches!(name, "notify_one" | "notify_all")
            || !scan.is_punct(si + 1, '(')
            || si == 0
            || !scan.is_punct(si - 1, '.')
        {
            continue;
        }
        // Floor: the opening `{` of the enclosing fn/closure body.
        let mut floor = 0usize;
        if let Some(start) = blocks.enclosing(si) {
            for id in blocks.ancestors(start) {
                if matches!(blocks.header(id), BlockHeader::Fn | BlockHeader::Closure) {
                    floor = blocks.blocks[id].open;
                    break;
                }
            }
        }
        let line = scan.line(si);
        let lo = line.saturating_sub(GUARD_WINDOW_LINES);
        let guarded = (floor..si).rev().any(|j| {
            scan.line(j) >= lo
                && scan.kind(j) == Some(TokenKind::Ident)
                && is_lock_name(scan.text(j))
                && scan.is_punct(j + 1, '(')
        });
        if !guarded {
            scan.push(
                findings,
                RuleId::CondvarNotifyUnguarded,
                si,
                format!(
                    "`.{name}()` with no lock acquisition in the preceding {GUARD_WINDOW_LINES} \
                     lines of this function; writing the flag outside the mutex loses wakeups"
                ),
            );
        }
    }
}

/// R7: per-block guard liveness — no blocking call under a live guard
/// unless rooted at a guard, and lock-order edges stay acyclic.
fn rule_guards(scan: &Scan<'_, '_>, blocks: &Blocks, findings: &mut Vec<Finding>) {
    // Lock-order graph: edges (held, acquired) with the site that
    // recorded them, checked incrementally for cycles.
    let mut edges: Vec<(String, String)> = Vec::new();
    for id in 0..blocks.blocks.len() {
        let block = blocks.blocks[id];
        for bind in bindings_in(scan, blocks, id) {
            let Some(lock_si) = guard_lock_site(scan, blocks, id, &bind) else {
                continue;
            };
            let Some(guard_name) = bind.names.first().cloned() else {
                continue;
            };
            let held = lock_target(scan, lock_si);
            let live_end =
                drop_site(scan, bind.stmt_end, block.close, &guard_name).unwrap_or(block.close);
            for j in bind.stmt_end..live_end {
                if scan.excluded[j] || scan.kind(j) != Some(TokenKind::Ident) {
                    continue;
                }
                let t = scan.text(j);
                if BLOCKING_CALLS.contains(&t)
                    && scan.is_punct(j - 1, '.')
                    && scan.is_punct(j + 1, '(')
                {
                    let root = chain_root(scan, j);
                    let rooted_at_guard = root == Some(guard_name.as_str())
                        || root.is_none() && receiver_is_lock_call(scan, j);
                    if !rooted_at_guard {
                        scan.push(
                            findings,
                            RuleId::GuardAcrossBlocking,
                            j,
                            format!(
                                "`.{t}(…)` while the guard `{guard_name}` (locked on line {}) \
                                 is live; drop the guard before blocking",
                                scan.line(bind.let_si)
                            ),
                        );
                    }
                }
                // Nested acquisition while `guard_name` is held.
                if is_lock_name(t) && scan.is_punct(j + 1, '(') && j != lock_si {
                    if let (Some(a), Some(b)) = (held.clone(), lock_target(scan, j)) {
                        if a != b {
                            if reaches(&edges, &b, &a) {
                                scan.push(
                                    findings,
                                    RuleId::LockOrder,
                                    j,
                                    format!(
                                        "acquiring `{b}` while holding `{a}` conflicts with an \
                                         earlier `{b}` → `{a}` acquisition order in this file"
                                    ),
                                );
                            }
                            edges.push((a, b));
                        }
                    }
                }
            }
        }
    }
}

/// Does `bind` actually bind a *guard*? Three ways it does not:
///
/// - the initializer contains no lock call at all;
/// - the lock is confined to a nested init block
///   (`let job = { let g = rx.lock()…; g.recv() };` — released before
///   the binding exists);
/// - the bound value is *derived* from the guard in the same statement
///   (`let leader = lock(&inflight).insert(key);` — the guard is a
///   temporary dropped at the `;`).
///
/// Returns the lock-call site when the binding really holds the guard.
fn guard_lock_site(
    scan: &Scan<'_, '_>,
    blocks: &Blocks,
    block_id: usize,
    bind: &crate::analysis::Binding,
) -> Option<usize> {
    let lock_si = (bind.init.0..bind.init.1).find(|&j| {
        scan.kind(j) == Some(TokenKind::Ident)
            && is_lock_name(scan.text(j))
            && scan.is_punct(j + 1, '(')
            && blocks.enclosing(j) == Some(block_id)
    })?;
    // Walk the chain after the lock call; poison-stripping adapters keep
    // the guard, any other method call derives a non-guard value.
    let mut k = scan.match_forward(lock_si + 1, '(', ')') + 1;
    while scan.is_punct(k, '.') {
        if matches!(
            scan.text(k + 1),
            "unwrap" | "expect" | "unwrap_or_else" | "into_inner"
        ) && scan.is_punct(k + 2, '(')
        {
            k = scan.match_forward(k + 2, '(', ')') + 1;
            continue;
        }
        return None;
    }
    Some(lock_si)
}

/// Name of the mutex a lock call acquires: the receiver field for
/// `m.lock()` / `self.queue.lock()`, or the last identifier of the
/// argument for `lock(&self.server.inflight)`.
fn lock_target(scan: &Scan<'_, '_>, lock_si: usize) -> Option<String> {
    if lock_si >= 2 && scan.is_punct(lock_si - 1, '.') {
        if scan.kind(lock_si - 2) == Some(TokenKind::Ident) {
            return Some(scan.text(lock_si - 2).to_string());
        }
        return None;
    }
    let close = scan.match_forward(lock_si + 1, '(', ')');
    (lock_si + 2..close)
        .rev()
        .find(|&j| scan.kind(j) == Some(TokenKind::Ident) && !scan.is_punct(j + 1, '('))
        .map(|j| scan.text(j).to_string())
}

/// Site of `drop(<name>…)` in `(start..end)`, if any.
fn drop_site(scan: &Scan<'_, '_>, start: usize, end: usize, name: &str) -> Option<usize> {
    (start..end).find(|&j| {
        scan.is_ident(j, "drop") && scan.is_punct(j + 1, '(') && {
            let close = scan.match_forward(j + 1, '(', ')');
            (j + 2..close).any(|k| scan.is_ident(k, name))
        }
    })
}

/// Is `to` reachable from `from` in the edge list?
fn reaches(edges: &[(String, String)], from: &str, to: &str) -> bool {
    let mut stack = vec![from.to_string()];
    let mut seen = vec![];
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if seen.contains(&node) {
            continue;
        }
        seen.push(node.clone());
        for (a, b) in edges {
            if *a == node {
                stack.push(b.clone());
            }
        }
    }
    false
}

/// R8: `….spawn(…);` in statement position discards the join handle —
/// panics in the worker become invisible until scope exit.
fn rule_spawn_discard(scan: &Scan<'_, '_>, findings: &mut Vec<Finding>) {
    for si in 0..scan.sig.len() {
        if scan.excluded[si]
            || !scan.is_ident(si, "spawn")
            || !scan.is_punct(si + 1, '(')
            || si == 0
            || !scan.is_punct(si - 1, '.')
        {
            continue;
        }
        // Root of the receiver chain; the token before it decides
        // statement position.
        let mut root = si;
        while root >= 2
            && scan.is_punct(root - 1, '.')
            && scan.kind(root - 2) == Some(TokenKind::Ident)
        {
            root -= 2;
        }
        if root == 0 {
            continue;
        }
        let before = scan.text(root - 1);
        let stmt_position = matches!(before, ";" | "{" | "}");
        if !stmt_position {
            continue;
        }
        let close = scan.match_forward(si + 1, '(', ')');
        if scan.is_punct(close + 1, ';') {
            scan.push(
                findings,
                RuleId::SpawnDiscard,
                si,
                "`spawn(…)` result discarded; bind the handle and consume its join result"
                    .to_string(),
            );
        }
    }
}

/// R8: `.join(…)` while a channel sender created in the same block is
/// still live (no `drop(sender)` first, sender not moved into a spawn).
pub(crate) fn rule_sender_live_join(
    scan: &Scan<'_, '_>,
    blocks: &Blocks,
    findings: &mut Vec<Finding>,
) {
    for id in 0..blocks.blocks.len() {
        let block = blocks.blocks[id];
        for bind in bindings_in(scan, blocks, id) {
            let is_channel = (bind.init.0..bind.init.1)
                .any(|j| matches!(scan.text(j), "channel" | "sync_channel") && is_called(scan, j));
            if !is_channel {
                continue;
            }
            let Some(sender) = bind.names.first().cloned() else {
                continue;
            };
            let dropped_at =
                drop_site(scan, bind.stmt_end, block.close, &sender).unwrap_or(block.close);
            let mut moved = false;
            for j in bind.stmt_end..block.close {
                if scan.excluded[j] {
                    continue;
                }
                // Sender moved (not cloned) into a spawn call: the
                // original binding is gone, joins are safe.
                if scan.is_ident(j, "spawn") && scan.is_punct(j + 1, '(') {
                    let close = scan.match_forward(j + 1, '(', ')');
                    let mentions = (j + 2..close).any(|k| scan.is_ident(k, &sender));
                    let clones = (j + 2..close).any(|k| {
                        scan.is_ident(k, &sender)
                            && scan.is_punct(k + 1, '.')
                            && scan.is_ident(k + 2, "clone")
                    });
                    if mentions && !clones {
                        moved = true;
                    }
                }
                if j >= dropped_at || moved {
                    continue;
                }
                if scan.is_ident(j, "join")
                    && scan.is_punct(j + 1, '(')
                    && j > 0
                    && scan.is_punct(j - 1, '.')
                {
                    scan.push(
                        findings,
                        RuleId::SenderLiveJoin,
                        j,
                        format!(
                            "`.join(…)` while channel sender `{sender}` (line {}) is still \
                             live; a receiver looping until disconnect never exits — \
                             `drop({sender})` first",
                            scan.line(bind.let_si)
                        ),
                    );
                }
            }
        }
    }
}

/// Is the identifier at `j` invoked — `name(…)` or `name::<T>(…)`?
fn is_called(scan: &Scan<'_, '_>, j: usize) -> bool {
    if scan.is_punct(j + 1, '(') {
        return true;
    }
    // Turbofish: `name :: < … > (`.
    if scan.is_punct(j + 1, ':') && scan.is_punct(j + 2, ':') && scan.is_punct(j + 3, '<') {
        let mut depth = 0i64;
        let mut k = j + 3;
        while k < j + 40 {
            match scan.text(k) {
                "<" => depth += 1,
                ">" if !scan.gt_is_arrow(k) => {
                    depth -= 1;
                    if depth == 0 {
                        return scan.is_punct(k + 1, '(');
                    }
                }
                "" => return false,
                _ => {}
            }
            k += 1;
        }
    }
    false
}

/// R8: `catch_unwind` results must be mapped to structured errors.
fn rule_unwind_discard(scan: &Scan<'_, '_>, findings: &mut Vec<Finding>) {
    for si in 0..scan.sig.len() {
        if scan.excluded[si] || !scan.is_ident(si, "catch_unwind") || !scan.is_punct(si + 1, '(') {
            continue;
        }
        // `let _ = …catch_unwind(…)` / `let _res = …` — walk back over
        // the path (`std :: panic ::`) to the statement head.
        let mut root = si;
        while root >= 3
            && scan.is_punct(root - 1, ':')
            && scan.is_punct(root - 2, ':')
            && scan.kind(root - 3) == Some(TokenKind::Ident)
        {
            root -= 3;
        }
        let discarded = if root >= 3
            && scan.text(root - 1) == "="
            && scan.kind(root - 2) == Some(TokenKind::Ident)
            && scan.is_ident(root - 3, "let")
        {
            scan.text(root - 2).starts_with('_')
        } else {
            // Expression statement: `catch_unwind(…)…;` from statement
            // position discards the Result outright.
            matches!(scan.text(root.wrapping_sub(1)), ";" | "{" | "}")
        };
        if discarded {
            scan.push(
                findings,
                RuleId::UnwindDiscard,
                si,
                "`catch_unwind` result discarded; map the `Err(payload)` to a structured \
                 worker-panicked error"
                    .to_string(),
            );
        }
    }
}
