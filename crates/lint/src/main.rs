//! `masc-lint` command-line interface.
//!
//! ```text
//! masc-lint [--root DIR] [--manifest FILE] [--baseline FILE]
//!           [--format human|json] [--write-baseline] [--no-baseline]
//!           [--list-pragmas]
//! ```
//!
//! Default mode lints the workspace and checks findings against the
//! baseline: exit 0 when findings and baseline agree exactly, exit 1 on
//! any new finding *or* stale baseline entry (the baseline may only
//! shrink), exit 2 on usage or I/O errors.

use masc_lint::baseline::{self, BaselineEntry};
use masc_lint::diag::{findings_to_json, json_escape, LintError};
use masc_lint::{find_root, run, Manifest};
use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command line.
struct Options {
    root: Option<PathBuf>,
    manifest: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
    no_baseline: bool,
    list_pragmas: bool,
}

fn parse_args() -> Result<Options, LintError> {
    let mut opts = Options {
        root: None,
        manifest: None,
        baseline: None,
        json: false,
        write_baseline: false,
        no_baseline: false,
        list_pragmas: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| {
            args.next()
                .map(PathBuf::from)
                .ok_or_else(|| LintError::Usage(format!("{arg} requires a value")))
        };
        match arg.as_str() {
            "--root" => opts.root = Some(path_arg(&mut args)?),
            "--manifest" => opts.manifest = Some(path_arg(&mut args)?),
            "--baseline" => opts.baseline = Some(path_arg(&mut args)?),
            "--format" => {
                let v = args
                    .next()
                    .ok_or_else(|| LintError::Usage("--format requires a value".to_string()))?;
                match v.as_str() {
                    "json" => opts.json = true,
                    "human" => opts.json = false,
                    other => {
                        return Err(LintError::Usage(format!(
                            "unknown format `{other}` (expected human or json)"
                        )))
                    }
                }
            }
            "--write-baseline" => opts.write_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            "--list-pragmas" => opts.list_pragmas = true,
            "--help" | "-h" => {
                println!(
                    "masc-lint: MASC workspace static analyzer\n\n\
                     USAGE: masc-lint [--root DIR] [--manifest FILE] [--baseline FILE]\n\
                    \x20                [--format human|json] [--write-baseline] [--no-baseline]\n\
                    \x20                [--list-pragmas]"
                );
                std::process::exit(0);
            }
            other => return Err(LintError::Usage(format!("unknown flag `{other}`"))),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    match run_cli() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("masc-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_cli() -> Result<bool, LintError> {
    let opts = parse_args()?;
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|source| LintError::Io {
                path: ".".to_string(),
                source,
            })?;
            find_root(&cwd).ok_or_else(|| {
                LintError::Usage("no workspace root found above cwd; pass --root".to_string())
            })?
        }
    };
    let manifest_path = opts
        .manifest
        .clone()
        .unwrap_or_else(|| root.join("lint-manifest.txt"));
    let manifest_text =
        std::fs::read_to_string(&manifest_path).map_err(|source| LintError::Io {
            path: manifest_path.display().to_string(),
            source,
        })?;
    let manifest = Manifest::parse(&manifest_text)?;
    let report = run(&root, &manifest)?;

    if opts.list_pragmas {
        for (file, p) in &report.pragmas {
            println!(
                "{}:{}: allow({}) applies to line {}: {}",
                file, p.comment_line, p.rule_name, p.applies_line, p.reason
            );
        }
        return Ok(true);
    }

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));

    if opts.write_baseline {
        // Preserve notes from the existing baseline where keys still match.
        let old = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => baseline::parse(&text)?,
            Err(_) => Vec::new(),
        };
        let entries: Vec<BaselineEntry> = report
            .findings
            .iter()
            .map(|f| {
                let note = old
                    .iter()
                    .find(|b| b.key() == f.key())
                    .map(|b| b.note.clone())
                    .unwrap_or_else(|| "TODO: justify or fix".to_string());
                BaselineEntry {
                    rule: f.rule,
                    file: f.file.clone(),
                    line: f.line,
                    note,
                }
            })
            .collect();
        std::fs::write(&baseline_path, baseline::to_json(&entries)).map_err(|source| {
            LintError::Io {
                path: baseline_path.display().to_string(),
                source,
            }
        })?;
        eprintln!(
            "masc-lint: wrote {} entries to {}",
            entries.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline_entries = if opts.no_baseline {
        Vec::new()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => baseline::parse(&text)?,
            // Missing baseline means an empty one.
            Err(_) => Vec::new(),
        }
    };
    let diff = baseline::diff(&report.findings, &baseline_entries);

    if opts.json {
        println!("{{");
        println!("  \"files\": {},", report.files);
        println!("  \"grandfathered\": {},", diff.grandfathered);
        println!("  \"findings\": {},", findings_to_json(&diff.new_findings));
        let stale: Vec<String> = diff
            .stale_entries
            .iter()
            .map(|b| {
                format!(
                    "{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                    b.rule,
                    json_escape(&b.file),
                    b.line
                )
            })
            .collect();
        println!("  \"stale_baseline\": [{}]", stale.join(", "));
        println!("}}");
    } else {
        for f in &diff.new_findings {
            println!("{f}");
        }
        for b in &diff.stale_entries {
            println!(
                "{}:{}: stale-baseline: `{}` entry no longer matches any finding; \
                 delete it (the baseline may only shrink)",
                b.file, b.line, b.rule
            );
        }
        eprintln!(
            "masc-lint: {} files, {} findings ({} grandfathered), {} new, {} stale baseline",
            report.files,
            report.findings.len(),
            diff.grandfathered,
            diff.new_findings.len(),
            diff.stale_entries.len()
        );
    }
    Ok(diff.clean())
}
