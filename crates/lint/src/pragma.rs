//! Inline suppression pragmas.
//!
//! Grammar (one directive per comment):
//!
//! ```text
//! // masc-lint: allow(<rule>, reason = "<non-empty justification>")
//! ```
//!
//! `<rule>` is a specific rule id (`panic-call`, `unbounded-alloc`, …) or a
//! group (`R1`–`R5`). A trailing pragma suppresses findings on its own
//! line; a pragma alone on a line suppresses findings on the next line that
//! carries code. The reason is mandatory — a pragma without one is itself a
//! finding (`pragma-syntax`) — and a pragma that suppresses nothing is a
//! finding too (`pragma-unused`), so stale allowances cannot accumulate.

use crate::diag::{Finding, RuleId};
use crate::lexer::{Token, TokenKind};

/// One parsed `allow` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Rules this pragma suppresses (singleton for a specific id, several
    /// for an `R1`-style group).
    pub rules: Vec<RuleId>,
    /// The rule name exactly as written in the source.
    pub rule_name: String,
    /// The mandatory justification string.
    pub reason: String,
    /// Line the pragma comment starts on.
    pub comment_line: u32,
    /// Line whose findings this pragma suppresses.
    pub applies_line: u32,
}

/// Scans a file's token stream for pragmas.
///
/// Returns the parsed pragmas plus `pragma-syntax` findings for malformed
/// ones. `file` is the workspace-relative path used in findings.
pub fn collect(file: &str, src: &str, tokens: &[Token]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let text = tok.text(src);
        let body = text.trim_start_matches('/').trim();
        let Some(directive) = body.strip_prefix("masc-lint:") else {
            continue;
        };
        let applies_line = applies_line(tokens, i, tok.line);
        match parse_directive(directive.trim()) {
            Ok((rule_name, reason)) => {
                let rules = RuleId::group_members(&rule_name);
                if rules.is_empty() {
                    findings.push(Finding {
                        rule: RuleId::PragmaSyntax,
                        file: file.to_string(),
                        line: tok.line,
                        message: format!("unknown rule `{rule_name}` in masc-lint pragma"),
                    });
                } else if rules.iter().any(|r| !r.suppressible()) {
                    findings.push(Finding {
                        rule: RuleId::PragmaSyntax,
                        file: file.to_string(),
                        line: tok.line,
                        message: format!("rule `{rule_name}` cannot be suppressed"),
                    });
                } else {
                    pragmas.push(Pragma {
                        rules,
                        rule_name,
                        reason,
                        comment_line: tok.line,
                        applies_line,
                    });
                }
            }
            Err(reason) => findings.push(Finding {
                rule: RuleId::PragmaSyntax,
                file: file.to_string(),
                line: tok.line,
                message: reason,
            }),
        }
    }
    (pragmas, findings)
}

/// The line a pragma at token index `i` applies to: its own line when code
/// precedes it on that line (trailing pragma), otherwise the next line
/// carrying a non-comment token.
fn applies_line(tokens: &[Token], i: usize, comment_line: u32) -> u32 {
    let code_before = tokens[..i]
        .iter()
        .rev()
        .take_while(|t| t.line == comment_line)
        .any(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment));
    if code_before {
        return comment_line;
    }
    tokens[i + 1..]
        .iter()
        .find(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|t| t.line)
        .unwrap_or(comment_line)
}

/// Parses `allow(<rule>, reason = "…")`, returning `(rule_name, reason)`.
fn parse_directive(s: &str) -> Result<(String, String), String> {
    let Some(rest) = s.strip_prefix("allow") else {
        return Err("expected `allow(<rule>, reason = \"...\")`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(inner) = rest.strip_suffix(')') else {
        return Err("pragma is missing its closing `)`".to_string());
    };
    let Some((rule, reason_part)) = inner.split_once(',') else {
        return Err("pragma requires `reason = \"...\"` — suppressions must be justified".into());
    };
    let rule = rule.trim().to_string();
    if rule.is_empty() {
        return Err("empty rule name in pragma".to_string());
    }
    let reason_part = reason_part.trim();
    let Some(value) = reason_part.strip_prefix("reason") else {
        return Err("expected `reason = \"...\"` after the rule name".to_string());
    };
    let value = value.trim_start();
    let Some(value) = value.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let value = value.trim();
    let quoted = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    if quoted.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((rule, quoted.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Pragma>, Vec<Finding>) {
        collect("x.rs", src, &lex(src))
    }

    #[test]
    fn trailing_pragma_applies_to_own_line() {
        let src = "let x = v.unwrap(); // masc-lint: allow(panic-call, reason = \"startup\")\n";
        let (pragmas, findings) = parse(src);
        assert!(findings.is_empty());
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].rules, vec![RuleId::PanicCall]);
        assert_eq!(pragmas[0].applies_line, 1);
        assert_eq!(pragmas[0].reason, "startup");
    }

    #[test]
    fn standalone_pragma_applies_to_next_code_line() {
        let src = "// masc-lint: allow(R1, reason = \"checked above\")\n// another comment\nlet x = v.unwrap();\n";
        let (pragmas, findings) = parse(src);
        assert!(findings.is_empty());
        assert_eq!(pragmas[0].applies_line, 3);
        assert_eq!(pragmas[0].rules.len(), 3);
    }

    #[test]
    fn missing_reason_is_a_finding() {
        let (pragmas, findings) = parse("// masc-lint: allow(panic-call)\nlet x = 1;\n");
        assert!(pragmas.is_empty());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::PragmaSyntax);
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let (pragmas, findings) =
            parse("// masc-lint: allow(made-up, reason = \"nope\")\nlet x = 1;\n");
        assert!(pragmas.is_empty());
        assert_eq!(findings[0].rule, RuleId::PragmaSyntax);
    }
}
