//! Module-classification manifest.
//!
//! The manifest (`lint-manifest.txt` at the workspace root) declares which
//! source paths carry MASC's hardened-surface invariants. Format: one
//! `<class> <path-prefix>` pair per line, `#` comments, blank lines
//! ignored. Classes:
//!
//! - `wire-decode` — parses attacker-controllable bytes (codecs, varints,
//!   cache files). R1 (panic-freedom) and R2 (bounded allocation) apply.
//! - `store-io`    — Jacobian store I/O and spill handling. R1 + R2 apply.
//! - `parser`      — text parsers (netlists, lint's own lexer). R1 + R2
//!   apply.
//! - `concurrency` — coordinates threads via mutexes, condvars, channels,
//!   or scoped spawns. R6 (condvar discipline), R7 (lock hygiene), and
//!   R8 (worker lifecycle) apply.
//! - `skip`        — excluded from analysis entirely (generated code, …).
//!
//! Paths are workspace-relative with `/` separators; a prefix matches the
//! file itself or any file below it. Crate-wide rules (R3 error
//! conventions, R4 thread hygiene, R5 doc coverage) do not need manifest
//! entries.

use crate::diag::LintError;

/// Hardened-surface classes a file can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Decodes wire/compressed bytes.
    WireDecode,
    /// Jacobian store I/O.
    StoreIo,
    /// Text parser.
    Parser,
    /// Thread-coordination module (mutex/condvar/channel discipline).
    Concurrency,
}

/// Per-file classification resolved from the manifest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassSet {
    /// File is in a `wire-decode` region.
    pub wire_decode: bool,
    /// File is in a `store-io` region.
    pub store_io: bool,
    /// File is in a `parser` region.
    pub parser: bool,
    /// File is in a `concurrency` region.
    pub concurrency: bool,
}

impl ClassSet {
    /// True when any hardened class applies (R1/R2 are in force).
    pub fn hardened(&self) -> bool {
        self.wire_decode || self.store_io || self.parser
    }
}

/// Parsed manifest: classified prefixes plus skip prefixes.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    entries: Vec<(Class, String)>,
    skips: Vec<String>,
}

impl Manifest {
    /// Parses manifest text. Lines: `<class> <path-prefix>`.
    pub fn parse(text: &str) -> Result<Manifest, LintError> {
        let mut manifest = Manifest::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx as u32 + 1;
            let Some((class, path)) = line.split_once(char::is_whitespace) else {
                return Err(LintError::Manifest {
                    line: lineno,
                    reason: format!("expected `<class> <path-prefix>`, got `{line}`"),
                });
            };
            let path = path.trim().trim_end_matches('/').to_string();
            if path.is_empty() {
                return Err(LintError::Manifest {
                    line: lineno,
                    reason: "empty path prefix".to_string(),
                });
            }
            match class {
                "wire-decode" => manifest.entries.push((Class::WireDecode, path)),
                "store-io" => manifest.entries.push((Class::StoreIo, path)),
                "parser" => manifest.entries.push((Class::Parser, path)),
                "concurrency" => manifest.entries.push((Class::Concurrency, path)),
                "skip" => manifest.skips.push(path),
                other => {
                    return Err(LintError::Manifest {
                        line: lineno,
                        reason: format!(
                            "unknown class `{other}` (expected wire-decode, store-io, parser, concurrency, or skip)"
                        ),
                    });
                }
            }
        }
        Ok(manifest)
    }

    /// Classifies a workspace-relative path.
    pub fn classify(&self, path: &str) -> ClassSet {
        let mut set = ClassSet::default();
        for (class, prefix) in &self.entries {
            if prefix_matches(prefix, path) {
                match class {
                    Class::WireDecode => set.wire_decode = true,
                    Class::StoreIo => set.store_io = true,
                    Class::Parser => set.parser = true,
                    Class::Concurrency => set.concurrency = true,
                }
            }
        }
        set
    }

    /// True when the path is excluded from analysis.
    pub fn skipped(&self, path: &str) -> bool {
        self.skips.iter().any(|p| prefix_matches(p, path))
    }

    /// All classified (class, prefix) entries, for reporting.
    pub fn entries(&self) -> &[(Class, String)] {
        &self.entries
    }
}

/// `prefix` matches `path` when equal or when `path` continues below it.
fn prefix_matches(prefix: &str, path: &str) -> bool {
    match path.strip_prefix(prefix) {
        Some("") => true,
        Some(rest) => rest.starts_with('/'),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_classify() {
        let m = Manifest::parse(
            "# classes\nwire-decode crates/codec/src\nparser crates/circuit/src/parser.rs\nskip crates/gen\n",
        )
        .expect("manifest parses");
        assert!(m.classify("crates/codec/src/rle.rs").wire_decode);
        assert!(!m.classify("crates/codec/src-other/x.rs").wire_decode);
        assert!(m.classify("crates/circuit/src/parser.rs").parser);
        assert!(!m.classify("crates/circuit/src/netlist.rs").hardened());
        assert!(m.skipped("crates/gen/src/lib.rs"));
    }

    #[test]
    fn rejects_unknown_class() {
        assert!(Manifest::parse("decode crates/x\n").is_err());
    }
}
