//! Lightweight intra-file analysis layer for the R6–R8 concurrency rules.
//!
//! The R1–R5 rules get away with flat token scans plus a guard window;
//! concurrency discipline needs a little structure: *which block* a wait
//! sits in, *which loop* encloses it, *which binding* a guard came from,
//! and *how long* that binding stays live. This module builds exactly
//! that — and nothing more — on top of the significant-token stream:
//!
//! - a **brace-matched block tree** ([`Blocks`]): every `{ … }` region
//!   becomes a node with its parent, plus a per-token innermost-block
//!   map. Struct literals and match bodies become anonymous nodes, which
//!   is harmless: they only ever *narrow* a liveness span.
//! - **block headers** ([`Blocks::header`]): the control keyword that
//!   introduced a block (`while`/`loop`/`for`/`if`/`else`/`match`/`fn`,
//!   or a closure), recovered by a bounded backward scan from the `{`.
//! - **`let`-binding def/use** (`bindings_in`, `chain_root`): the
//!   bindings introduced directly in a block and the root identifier of
//!   a method-call receiver chain, so rules can ask "is this call rooted
//!   at that guard?".
//!
//! This is still a lexical heuristic, not a type checker: aliasing,
//! moves into closures, and cross-function flows are invisible. The
//! rules that consume it are tripwires — every flagged site must carry a
//! fix or a reasoned pragma, and the deterministic interleaving explorer
//! (`masc-testkit::sched`) covers the dynamic side.

use crate::lexer::TokenKind;
use crate::rules::Scan;

/// What kind of control construct introduced a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockHeader {
    /// `while …` or `while let … =` — a predicate re-check loop.
    While,
    /// `loop`.
    Loop,
    /// `for … in …`.
    For,
    /// `if …` / `else if …` / `else`.
    If,
    /// `match …` body (arms are anonymous blocks inside it).
    Match,
    /// `fn …` body — a scope boundary for the R6 loop walk.
    Fn,
    /// `|…| { … }` closure body — also a scope boundary.
    Closure,
    /// Anything else: bare block, struct literal, `unsafe`, item body.
    Other,
}

/// One brace-delimited region, as sig-token indices into a `Scan`.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// Sig index of the opening `{`.
    pub open: usize,
    /// Sig index of the matching `}`.
    pub close: usize,
    /// Index into [`Blocks::blocks`] of the innermost enclosing block.
    pub parent: Option<usize>,
    /// Control construct that introduced this block.
    pub header: BlockHeader,
}

/// Brace-matched block tree over a file's significant tokens.
#[derive(Debug, Default)]
pub struct Blocks {
    /// All blocks, in opening order.
    pub blocks: Vec<Block>,
    /// Per-sig-index: innermost block containing the token, if any.
    pub enclosing: Vec<Option<usize>>,
}

/// Tokens scanned backwards from a `{` when recovering its header.
const HEADER_LOOKBACK: usize = 64;

impl Blocks {
    /// Builds the block tree for `scan`.
    pub(crate) fn build(scan: &Scan<'_, '_>) -> Blocks {
        let n = scan.sig.len();
        let mut out = Blocks {
            blocks: Vec::new(),
            enclosing: vec![None; n],
        };
        let mut stack: Vec<usize> = Vec::new();
        for si in 0..n {
            if scan.is_punct(si, '{') {
                let id = out.blocks.len();
                out.blocks.push(Block {
                    open: si,
                    close: n.saturating_sub(1),
                    parent: stack.last().copied(),
                    header: header_of(scan, si),
                });
                stack.push(id);
            }
            out.enclosing[si] = stack.last().copied();
            if scan.is_punct(si, '}') {
                if let Some(id) = stack.pop() {
                    out.blocks[id].close = si;
                }
            }
        }
        out
    }

    /// Innermost block containing sig index `si`.
    pub fn enclosing(&self, si: usize) -> Option<usize> {
        self.enclosing.get(si).copied().flatten()
    }

    /// Header of block `id`.
    pub fn header(&self, id: usize) -> BlockHeader {
        self.blocks
            .get(id)
            .map(|b| b.header)
            .unwrap_or(BlockHeader::Other)
    }

    /// Walks `id` and its ancestors, innermost first.
    pub fn ancestors(&self, id: usize) -> impl Iterator<Item = usize> + '_ {
        let mut cur = Some(id);
        std::iter::from_fn(move || {
            let id = cur?;
            cur = self.blocks.get(id).and_then(|b| b.parent);
            Some(id)
        })
    }
}

/// Recovers the control keyword introducing the block opened at
/// `open_si` by scanning backwards, bracket-depth aware, until a
/// statement boundary. `while let Some(_) = rx.recv() {` walks over the
/// scrutinee and its `=` to find the `while`; a struct literal walks
/// back to a `;`/`=`-free boundary and stays [`BlockHeader::Other`].
fn header_of(scan: &Scan<'_, '_>, open_si: usize) -> BlockHeader {
    // A `{` directly preceded by `|` is a closure body.
    if open_si > 0 && scan.is_punct(open_si - 1, '|') {
        return BlockHeader::Closure;
    }
    let mut depth = 0i64;
    let mut si = open_si;
    let floor = open_si.saturating_sub(HEADER_LOOKBACK);
    while si > floor {
        si -= 1;
        if scan.kind(si) != Some(TokenKind::Ident) {
            if scan.kind(si) == Some(TokenKind::Punct) {
                match scan.text(si) {
                    ")" | "]" => depth += 1,
                    "(" | "[" => {
                        depth -= 1;
                        if depth < 0 {
                            return BlockHeader::Other;
                        }
                    }
                    ";" | "{" | "}" | "," if depth == 0 => return BlockHeader::Other,
                    ">" if depth == 0 && scan.gt_is_arrow(si) && scan.text(si - 1) == "=" => {
                        // `=> {` — a match arm body.
                        return BlockHeader::Other;
                    }
                    _ => {}
                }
            }
            continue;
        }
        if depth != 0 {
            continue;
        }
        match scan.text(si) {
            "while" => return BlockHeader::While,
            "loop" => return BlockHeader::Loop,
            "for" => return BlockHeader::For,
            "if" | "else" => return BlockHeader::If,
            "match" => return BlockHeader::Match,
            "fn" => return BlockHeader::Fn,
            "move" if scan.is_punct(si.wrapping_sub(1), '|') => return BlockHeader::Closure,
            _ => {}
        }
    }
    BlockHeader::Other
}

/// One `let` binding declared directly in a block.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Bound names: one for `let g = …`, several for `let (tx, rx) = …`.
    pub names: Vec<String>,
    /// Sig index of the `let`.
    pub let_si: usize,
    /// Sig index just past the terminating `;` (liveness starts here).
    pub stmt_end: usize,
    /// Sig-index span of the initializer expression (after `=`).
    pub init: (usize, usize),
}

/// Collects the `let` bindings declared *directly* in block `id`
/// (bindings in nested blocks belong to those blocks).
pub(crate) fn bindings_in(scan: &Scan<'_, '_>, blocks: &Blocks, id: usize) -> Vec<Binding> {
    let Some(b) = blocks.blocks.get(id).copied() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut si = b.open + 1;
    while si < b.close {
        if blocks.enclosing(si) != Some(id) || !scan.is_ident(si, "let") {
            si += 1;
            continue;
        }
        // Pattern: everything up to the `=` (or `:` type ascription).
        let mut names = Vec::new();
        let mut j = si + 1;
        let mut init_start = None;
        while j < b.close {
            let txt = scan.text(j);
            if txt == "=" {
                init_start = Some(j + 1);
                break;
            }
            if txt == ";" {
                break;
            }
            if scan.kind(j) == Some(TokenKind::Ident)
                && !matches!(txt, "mut" | "ref" | "Some" | "Ok" | "Err" | "None")
                && !scan.is_punct(j + 1, ':')
            {
                names.push(txt.to_string());
            }
            if txt == ":" {
                // Type ascription: skip to `=` or `;` at depth 0.
                let mut depth = 0i64;
                while j < b.close {
                    match scan.text(j) {
                        "(" | "[" | "<" => depth += 1,
                        ")" | "]" => depth -= 1,
                        ">" if !scan.gt_is_arrow(j) => depth -= 1,
                        "=" if depth <= 0 => break,
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            j += 1;
        }
        // Statement end: first `;` at this block level after the `let`.
        let mut end = j;
        while end < b.close && !(scan.is_punct(end, ';') && blocks.enclosing(end) == Some(id)) {
            end += 1;
        }
        out.push(Binding {
            names,
            let_si: si,
            stmt_end: end + 1,
            init: (init_start.unwrap_or(end), end),
        });
        si = end + 1;
    }
    out
}

/// Root identifier of the receiver chain ending at the `.` before the
/// call name at `call_si` — `a.b.c.send(` ⇒ `Some("a")`. Returns `None`
/// when the receiver is not a plain identifier chain (parenthesised or
/// indexed expressions).
pub(crate) fn chain_root<'a>(scan: &'a Scan<'_, '_>, call_si: usize) -> Option<&'a str> {
    if call_si < 2 || !scan.is_punct(call_si - 1, '.') {
        return None;
    }
    let mut j = call_si - 2;
    loop {
        if scan.kind(j) != Some(TokenKind::Ident) {
            return None;
        }
        if j >= 2 && scan.is_punct(j - 1, '.') && scan.kind(j - 2) == Some(TokenKind::Ident) {
            j -= 2;
            continue;
        }
        return Some(scan.text(j));
    }
}

/// True when the parenthesised receiver ending at `close_paren_si` is a
/// lock-acquisition call — `lock(&x).send(…)` / `m.lock().unwrap().…`
/// style chains whose value *is* the guard.
pub(crate) fn receiver_is_lock_call(scan: &Scan<'_, '_>, call_si: usize) -> bool {
    // Walk the chain of `….ident(…)` segments backwards from the call,
    // looking for a `lock`/`lock_ignoring_poison` segment.
    let mut j = call_si;
    let mut hops = 0usize;
    while hops < 8 {
        hops += 1;
        if j < 2 || !scan.is_punct(j - 1, '.') {
            return false;
        }
        let mut k = j - 2;
        if scan.is_punct(k, ')') {
            // Match backwards to the `(` of the previous call.
            let mut depth = 1i64;
            while k > 0 && depth > 0 {
                k -= 1;
                match scan.text(k) {
                    ")" => depth += 1,
                    "(" => depth -= 1,
                    _ => {}
                }
            }
            if k == 0 {
                return false;
            }
            k -= 1; // the call name before `(`.
        }
        if scan.kind(k) != Some(TokenKind::Ident) {
            return false;
        }
        if is_lock_name(scan.text(k)) {
            return true;
        }
        j = k;
    }
    false
}

/// Function/method names recognized as lock acquisitions. The workspace
/// acquires mutexes through `Mutex::lock` and the crate-local
/// `lock(…)` / `lock_ignoring_poison(…)` poison-stripping helpers.
pub(crate) fn is_lock_name(name: &str) -> bool {
    matches!(name, "lock" | "lock_ignoring_poison")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ClassSet;
    use crate::rules::FileInput;

    fn scan_src(src: &str) -> (Vec<crate::lexer::Token>, &str) {
        (crate::lexer::lex(src), src)
    }

    #[test]
    fn block_tree_shapes() {
        let src = "fn f() { while x { if y { } } loop { } }";
        let (tokens, src) = scan_src(src);
        let input = FileInput {
            path: "t.rs",
            src,
            classes: ClassSet::default(),
            is_lib: false,
        };
        let scan = crate::rules::Scan::for_tests(input, &tokens);
        let blocks = Blocks::build(&scan);
        let headers: Vec<BlockHeader> = blocks.blocks.iter().map(|b| b.header).collect();
        assert_eq!(
            headers,
            vec![
                BlockHeader::Fn,
                BlockHeader::While,
                BlockHeader::If,
                BlockHeader::Loop
            ]
        );
        assert_eq!(blocks.blocks[1].parent, Some(0));
        assert_eq!(blocks.blocks[2].parent, Some(1));
        assert_eq!(blocks.blocks[3].parent, Some(0));
    }

    #[test]
    fn bindings_and_chain_roots() {
        let src = "fn f() { let (tx, rx) = sync_channel(4); let mut g = lock(&m); g.push(1); }";
        let (tokens, src) = scan_src(src);
        let input = FileInput {
            path: "t.rs",
            src,
            classes: ClassSet::default(),
            is_lib: false,
        };
        let scan = crate::rules::Scan::for_tests(input, &tokens);
        let blocks = Blocks::build(&scan);
        let binds = bindings_in(&scan, &blocks, 0);
        assert_eq!(binds.len(), 2);
        assert_eq!(binds[0].names, vec!["tx".to_string(), "rx".to_string()]);
        assert_eq!(binds[1].names, vec!["g".to_string()]);
        // `g.push(` — chain root is `g`.
        let push_si = (0..scan.sig.len())
            .find(|&si| scan.is_ident(si, "push"))
            .expect("push site");
        assert_eq!(chain_root(&scan, push_si), Some("g"));
    }
}
