//! Grandfathered-findings baseline.
//!
//! `lint-baseline.json` at the workspace root records findings that
//! predate the analyzer. Policy: the baseline may only shrink. The checker
//! fails when a finding is *not* in the baseline (new violation) **and**
//! when a baseline entry no longer matches any finding (stale entry — the
//! violation was fixed, so the entry must be deleted in the same change).
//! Exact matching in both directions means the file always mirrors
//! reality, and every entry carries a mandatory `note` justifying why it
//! was grandfathered rather than fixed.
//!
//! The file is JSON for tooling; since the workspace is hermetic, a
//! minimal recursive-descent parser for the JSON subset we emit lives
//! here (objects, arrays, strings with escapes, integers, bools, null).

use crate::diag::{json_escape, Finding, LintError, RuleId};

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Why this entry is grandfathered instead of fixed.
    pub note: String,
}

impl BaselineEntry {
    /// Identity used to match against findings.
    pub fn key(&self) -> (RuleId, &str, u32) {
        (self.rule, &self.file, self.line)
    }
}

/// Result of checking findings against the baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Findings not covered by the baseline: new violations.
    pub new_findings: Vec<Finding>,
    /// Baseline entries with no matching finding: must be deleted.
    pub stale_entries: Vec<BaselineEntry>,
    /// Count of findings absorbed by the baseline.
    pub grandfathered: usize,
}

impl BaselineDiff {
    /// True when findings and baseline agree exactly.
    pub fn clean(&self) -> bool {
        self.new_findings.is_empty() && self.stale_entries.is_empty()
    }
}

/// Compares findings against baseline entries (exact two-way match).
pub fn diff(findings: &[Finding], baseline: &[BaselineEntry]) -> BaselineDiff {
    let mut out = BaselineDiff::default();
    for f in findings {
        if baseline.iter().any(|b| b.key() == f.key()) {
            out.grandfathered += 1;
        } else {
            out.new_findings.push(f.clone());
        }
    }
    for b in baseline {
        if !findings.iter().any(|f| f.key() == b.key()) {
            out.stale_entries.push(b.clone());
        }
    }
    out
}

/// Serializes entries to the checked-in JSON form.
pub fn to_json(entries: &[BaselineEntry]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"note\": \"{}\"}}{}\n",
            e.rule,
            json_escape(&e.file),
            e.line,
            json_escape(&e.note),
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses the baseline file.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, LintError> {
    let value = Json::parse(text).map_err(|reason| LintError::Baseline { reason })?;
    let obj = value.as_object().ok_or_else(|| LintError::Baseline {
        reason: "top level must be an object".to_string(),
    })?;
    let findings = obj
        .iter()
        .find(|(k, _)| k == "findings")
        .map(|(_, v)| v)
        .ok_or_else(|| LintError::Baseline {
            reason: "missing `findings` array".to_string(),
        })?;
    let items = findings.as_array().ok_or_else(|| LintError::Baseline {
        reason: "`findings` must be an array".to_string(),
    })?;
    let mut entries = Vec::new();
    for (idx, item) in items.iter().enumerate() {
        let entry = item.as_object().ok_or_else(|| LintError::Baseline {
            reason: format!("findings[{idx}] must be an object"),
        })?;
        let get_str = |key: &str| -> Result<String, LintError> {
            entry
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| LintError::Baseline {
                    reason: format!("findings[{idx}] missing string `{key}`"),
                })
        };
        let rule_name = get_str("rule")?;
        let rule = RuleId::parse(&rule_name).ok_or_else(|| LintError::Baseline {
            reason: format!("findings[{idx}]: unknown rule `{rule_name}`"),
        })?;
        let line = entry
            .iter()
            .find(|(k, _)| k == "line")
            .and_then(|(_, v)| v.as_u32())
            .ok_or_else(|| LintError::Baseline {
                reason: format!("findings[{idx}] missing numeric `line`"),
            })?;
        let note = get_str("note")?;
        if note.trim().is_empty() {
            return Err(LintError::Baseline {
                reason: format!(
                    "findings[{idx}] has an empty note — every grandfathered entry must be justified"
                ),
            });
        }
        entries.push(BaselineEntry {
            rule,
            file: get_str("file")?,
            line,
            note,
        });
    }
    Ok(entries)
}

/// Minimal JSON value for the subset the baseline uses.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= u32::MAX as f64 && n.fract() == 0.0 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }
}

/// Recursive-descent parser state.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes.get(self.pos..self.pos + word.len()) == Some(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or_default())
            .map_err(|_| "non-UTF-8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let c = char::from_u32(code).unwrap_or('\u{FFFD}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
        String::from_utf8(out).map_err(|_| "non-UTF-8 string".to_string())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let entries = vec![BaselineEntry {
            rule: RuleId::PanicIndex,
            file: "crates/x/src/lib.rs".to_string(),
            line: 42,
            note: "guard is two screens up; refactor tracked".to_string(),
        }];
        let json = to_json(&entries);
        assert_eq!(parse(&json).expect("baseline parses"), entries);
    }

    #[test]
    fn empty_note_rejected() {
        let json = "{\"version\": 1, \"findings\": [{\"rule\": \"panic-call\", \"file\": \"a.rs\", \"line\": 1, \"note\": \" \"}]}";
        assert!(parse(json).is_err());
    }

    #[test]
    fn diff_two_way() {
        let finding = Finding {
            rule: RuleId::PanicCall,
            file: "a.rs".to_string(),
            line: 3,
            message: "m".to_string(),
        };
        let stale = BaselineEntry {
            rule: RuleId::PanicCall,
            file: "a.rs".to_string(),
            line: 9,
            note: "n".to_string(),
        };
        let d = diff(std::slice::from_ref(&finding), std::slice::from_ref(&stale));
        assert_eq!(d.new_findings.len(), 1);
        assert_eq!(d.stale_entries.len(), 1);
        assert!(!d.clean());
    }
}
