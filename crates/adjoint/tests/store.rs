//! Round-trip, residency, throttle, and cleanup tests for every
//! [`JacobianStore`] backend, driven through the public trait surface.

// Tests may assert with unwrap/expect; the crate's clippy.toml bans them
// in shipping code only (masc-lint rule R1).
#![allow(clippy::disallowed_methods)]

use masc_adjoint::store::{ForwardRecord, StepMatrices, StoreConfig, TensorLayout};
use masc_circuit::transient::JacobianSink;
use masc_compress::MascConfig;
use masc_sparse::{CsrMatrix, Pattern, TripletMatrix};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn pattern() -> Arc<Pattern> {
    let mut t = TripletMatrix::new(3, 3);
    for i in 0..3 {
        t.add(i, i, 1.0);
        if i > 0 {
            t.add(i, i - 1, 1.0);
            t.add(i - 1, i, 1.0);
        }
    }
    t.to_csr().pattern().clone()
}

/// A trivial layout where both tensors cover the whole union pattern.
fn layout(p: &Arc<Pattern>) -> TensorLayout {
    let identity = Arc::new((0..p.nnz()).collect::<Vec<_>>());
    TensorLayout {
        union: p.clone(),
        g_pattern: p.clone(),
        c_pattern: p.clone(),
        g_slots: identity.clone(),
        c_slots: identity,
    }
}

/// A fresh, empty scratch directory unique to `name`.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("masc-store-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dir_entries(dir: &PathBuf) -> usize {
    std::fs::read_dir(dir).map(|d| d.count()).unwrap_or(0)
}

fn feed(record: &mut ForwardRecord, pattern: &Arc<Pattern>, steps: usize) -> Vec<Vec<f64>> {
    let mut g_history = Vec::new();
    for s in 0..steps {
        let g_vals: Vec<f64> = (0..pattern.nnz())
            .map(|k| (s as f64) + (k as f64) * 0.1)
            .collect();
        let c_vals: Vec<f64> = (0..pattern.nnz()).map(|k| -(k as f64) - 1.0).collect();
        let g = CsrMatrix::from_parts(pattern.clone(), g_vals.clone()).unwrap();
        let c = CsrMatrix::from_parts(pattern.clone(), c_vals).unwrap();
        let x = vec![s as f64; 3];
        record
            .on_step(s, s as f64 * 1e-6, 1e-6, &x, &g, &c)
            .unwrap();
        g_history.push(g_vals);
    }
    g_history
}

fn check_backward(config: StoreConfig) {
    let p = pattern();
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    let g_history = feed(&mut record, &p, 5);
    assert_eq!(record.len(), 5);
    let mut reader = record.into_reader().unwrap();
    let mut expect = 5usize;
    while let Some((step, matrices)) = reader.next_back().unwrap() {
        expect -= 1;
        assert_eq!(step, expect);
        match matrices {
            StepMatrices::Stored { g, .. } => assert_eq!(g, g_history[step]),
            StepMatrices::Recompute => {
                assert!(matches!(config, StoreConfig::Recompute))
            }
        }
    }
    assert_eq!(expect, 0);
}

#[test]
fn raw_memory_round_trip() {
    check_backward(StoreConfig::RawMemory);
}

#[test]
fn recompute_yields_markers() {
    check_backward(StoreConfig::Recompute);
}

#[test]
fn disk_round_trip() {
    check_backward(StoreConfig::Disk {
        dir: scratch_dir("disk-rt"),
        bandwidth: None,
    });
}

#[test]
fn compressed_round_trip() {
    check_backward(StoreConfig::Compressed(MascConfig::default()));
}

#[test]
fn hybrid_round_trip() {
    // resident_blocks = 1 forces almost every block through the spill file.
    check_backward(StoreConfig::Hybrid {
        dir: scratch_dir("hybrid-rt"),
        bandwidth: None,
        resident_blocks: 1,
        masc: MascConfig::default(),
    });
}

/// Opening a spill-backed store scavenges spill files stranded by dead
/// processes — and only those: files owned by this process, by a live
/// process, or with foreign names survive untouched.
#[test]
fn stale_spill_files_are_scavenged_on_open() {
    if !std::path::Path::new("/proc").is_dir() {
        return; // liveness is established via procfs; skip elsewhere
    }
    let dir = scratch_dir("spill-scavenge");
    std::fs::create_dir_all(&dir).unwrap();
    // Stranded by a provably dead process: pids are capped well below
    // u32::MAX on Linux, so this owner cannot exist.
    let stale = dir.join(format!("masc-jacobians-{}-0.bin", u32::MAX));
    // Looks like a live run of *this* process (a concurrent record).
    let own = dir.join(format!("masc-jacobians-{}-999999.bin", std::process::id()));
    // Owned by pid 1, which is always alive.
    let live = dir.join("masc-jacobians-1-0.bin");
    // Not a spill filename at all.
    let foreign = dir.join("masc-jacobians-notapid-0.bin");
    for f in [&stale, &own, &live, &foreign] {
        std::fs::write(f, b"x").unwrap();
    }
    let record = ForwardRecord::new(
        layout(&pattern()),
        &StoreConfig::Disk {
            dir: dir.clone(),
            bandwidth: None,
        },
    )
    .unwrap();
    assert!(!stale.exists(), "dead-process spill must be reclaimed");
    assert!(own.exists(), "own-process spill must survive");
    assert!(live.exists(), "live-process spill must survive");
    assert!(foreign.exists(), "non-spill files must survive");
    drop(record);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The hybrid store reproduces both tensors *byte-exactly* across the
/// memory/disk tier boundary, and actually uses both tiers.
#[test]
fn hybrid_round_trips_byte_exactly_across_tiers() {
    let p = pattern();
    let steps = 24usize;
    let config = StoreConfig::Hybrid {
        dir: scratch_dir("hybrid-exact"),
        bandwidth: None,
        resident_blocks: 4,
        masc: MascConfig::default(),
    };
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    // A wiggly series so compressed blocks are non-trivial.
    let mut g_history = Vec::new();
    let mut c_history = Vec::new();
    for s in 0..steps {
        let g_vals: Vec<f64> = (0..p.nnz())
            .map(|k| 1e-3 * ((s as f64 * 0.37 + k as f64).sin() + 2.0))
            .collect();
        let c_vals: Vec<f64> = (0..p.nnz())
            .map(|k| -1e-9 * ((s as f64 * 0.11 - k as f64).cos() + 3.0))
            .collect();
        let g = CsrMatrix::from_parts(p.clone(), g_vals.clone()).unwrap();
        let c = CsrMatrix::from_parts(p.clone(), c_vals.clone()).unwrap();
        record
            .on_step(s, s as f64 * 1e-6, 1e-6, &[0.0; 3], &g, &c)
            .unwrap();
        g_history.push(g_vals);
        c_history.push(c_vals);
    }
    let spilled_bytes = {
        let m = record.metrics();
        assert!(m.bytes_written > 0, "sealed blocks must be accounted");
        m.bytes_written
    };
    let mut reader = record.into_reader().unwrap();
    let mut step = steps;
    while let Some((s, matrices)) = reader.next_back().unwrap() {
        step -= 1;
        assert_eq!(s, step);
        let StepMatrices::Stored { g, c } = matrices else {
            panic!("hybrid store must yield stored matrices");
        };
        for (a, b) in g.iter().zip(&g_history[s]) {
            assert_eq!(a.to_bits(), b.to_bits(), "G differs at step {s}");
        }
        for (a, b) in c.iter().zip(&c_history[s]) {
            assert_eq!(a.to_bits(), b.to_bits(), "C differs at step {s}");
        }
    }
    assert_eq!(step, 0);
    let m = reader.metrics();
    assert!(
        m.bytes_read > 0,
        "24 steps with 4 resident blocks must read spilled blocks back"
    );
    assert!(m.bytes_read <= spilled_bytes);
    assert!(m.decompress_time > Duration::ZERO);
}

#[test]
fn storage_bytes_ordering() {
    // Raw > Compressed > Recompute for a smooth series; hybrid stays in
    // the compressed regime even though it spans two tiers.
    let p = pattern();
    let mut sizes = Vec::new();
    for config in [
        StoreConfig::RawMemory,
        StoreConfig::Compressed(MascConfig::default()),
        StoreConfig::Hybrid {
            dir: scratch_dir("hybrid-size"),
            bandwidth: None,
            resident_blocks: 2,
            masc: MascConfig::default(),
        },
        StoreConfig::Recompute,
    ] {
        let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
        feed(&mut record, &p, 20);
        sizes.push(record.storage_bytes());
    }
    assert!(
        sizes[0] > sizes[1],
        "raw {} vs compressed {}",
        sizes[0],
        sizes[1]
    );
    assert!(
        sizes[0] > sizes[2],
        "raw {} vs hybrid {}",
        sizes[0],
        sizes[2]
    );
    assert_eq!(sizes[3], 0);
}

#[test]
fn disk_throttle_slows_reads() {
    let p = pattern();
    // ~50 kB/s: 5 steps × 2 × 7 nz × 8 B = 560 B each way → ≥ 20 ms total.
    let config = StoreConfig::Disk {
        dir: scratch_dir("throttle"),
        bandwidth: Some(50_000.0),
    };
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    feed(&mut record, &p, 5);
    let mut reader = record.into_reader().unwrap();
    while reader.next_back().unwrap().is_some() {}
    let m = reader.metrics();
    assert!(
        m.throttle_wait > Duration::from_millis(5),
        "expected throttling, waited {:?}",
        m.throttle_wait
    );
    assert_eq!(m.bytes_written, 560);
    assert_eq!(m.bytes_read, 560);
}

#[test]
fn buffered_disk_reader_reads_in_chunks() {
    // 40 steps at a 16-step chunk size: the reverse sweep costs 3 disk
    // reads, not 40, and still returns every step.
    let p = pattern();
    let config = StoreConfig::Disk {
        dir: scratch_dir("chunks"),
        bandwidth: None,
    };
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    let g_history = feed(&mut record, &p, 40);
    let mut reader = record.into_reader().unwrap();
    let mut seen = 0;
    while let Some((step, StepMatrices::Stored { g, .. })) = reader.next_back().unwrap() {
        assert_eq!(g, g_history[step]);
        seen += 1;
    }
    assert_eq!(seen, 40);
    assert_eq!(reader.metrics().bytes_read, 40 * 2 * 7 * 8);
}

#[test]
fn spill_file_is_cleaned_up() {
    let p = pattern();
    let dir = scratch_dir("cleanup");
    let config = StoreConfig::Disk {
        dir: dir.clone(),
        bandwidth: None,
    };
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    feed(&mut record, &p, 2);
    assert_eq!(dir_entries(&dir), 1);
    {
        let mut reader = record.into_reader().unwrap();
        reader.next_back().unwrap();
    } // drop
    assert_eq!(dir_entries(&dir), 0);
}

#[test]
fn hybrid_spill_file_is_cleaned_up() {
    let p = pattern();
    let dir = scratch_dir("hybrid-cleanup");
    let config = StoreConfig::Hybrid {
        dir: dir.clone(),
        bandwidth: None,
        resident_blocks: 1,
        masc: MascConfig::default(),
    };
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    feed(&mut record, &p, 10);
    assert_eq!(dir_entries(&dir), 1);
    {
        let mut reader = record.into_reader().unwrap();
        while reader.next_back().unwrap().is_some() {}
    } // drop
    assert_eq!(dir_entries(&dir), 0);
}

#[test]
fn abandoned_record_cleans_its_spill_file() {
    // The error path: a record dropped mid-forward (e.g. after a transient
    // failure) must not leak its spill file.
    let p = pattern();
    let dir = scratch_dir("abandoned");
    let config = StoreConfig::Disk {
        dir: dir.clone(),
        bandwidth: None,
    };
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    feed(&mut record, &p, 3);
    assert_eq!(dir_entries(&dir), 1);
    drop(record);
    assert_eq!(dir_entries(&dir), 0);
}

#[test]
fn empty_record_reader() {
    let p = pattern();
    let record = ForwardRecord::new(layout(&p), &StoreConfig::RawMemory).unwrap();
    assert!(record.is_empty());
    let mut reader = record.into_reader().unwrap();
    assert!(reader.next_back().unwrap().is_none());
    assert_eq!(reader.remaining(), 0);
}

#[test]
fn empty_hybrid_record_reader() {
    let p = pattern();
    let config = StoreConfig::Hybrid {
        dir: scratch_dir("hybrid-empty"),
        bandwidth: None,
        resident_blocks: 2,
        masc: MascConfig::default(),
    };
    let record = ForwardRecord::new(layout(&p), &config).unwrap();
    let mut reader = record.into_reader().unwrap();
    assert!(reader.next_back().unwrap().is_none());
}

#[test]
fn metrics_histograms_count_every_step() {
    let p = pattern();
    let mut record =
        ForwardRecord::new(layout(&p), &StoreConfig::Compressed(MascConfig::default())).unwrap();
    feed(&mut record, &p, 12);
    assert_eq!(record.metrics().put_hist.count(), 12);
    let mut reader = record.into_reader().unwrap();
    while reader.next_back().unwrap().is_some() {}
    let m = reader.metrics();
    assert_eq!(m.put_hist.count(), 12, "forward histogram survives finish");
    assert_eq!(m.fetch_hist.count(), 12);
    assert!(m.fetch_hist.quantile(1.0) >= m.fetch_hist.quantile(0.5));
    assert!(m.store_time > Duration::ZERO);
    assert!(m.fetch_time > Duration::ZERO);
    assert!(m.peak_resident_bytes > 0);
}

// ---------------------------------------------------------------------------
// Pipelined (asynchronous) store
// ---------------------------------------------------------------------------

/// Contents of the single spill file in `dir` (the reader must still be
/// alive so the file has not been cleaned up yet).
fn spill_bytes(dir: &PathBuf) -> Vec<u8> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("spill dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(entries.len(), 1, "exactly one spill file expected");
    std::fs::read(entries.pop().expect("one entry")).expect("spill file readable")
}

#[test]
fn pipelined_compressed_round_trip() {
    for queue_depth in [0, 1, 4] {
        check_backward(StoreConfig::Pipelined {
            inner: Box::new(StoreConfig::Compressed(MascConfig::default())),
            queue_depth,
            lookahead: 2,
            workers: 1,
        });
    }
}

#[test]
fn pooled_pipelined_compressed_round_trip() {
    for workers in [2, 4] {
        check_backward(StoreConfig::pipelined_pool(
            StoreConfig::Compressed(MascConfig::default()),
            workers,
        ));
    }
}

#[test]
fn pooled_pipelined_hybrid_round_trip() {
    check_backward(StoreConfig::pipelined_pool(
        StoreConfig::Hybrid {
            dir: scratch_dir("pool-hybrid-rt"),
            bandwidth: None,
            resident_blocks: 1,
            masc: MascConfig::default(),
        },
        3,
    ));
}

/// A pool over a store with no encode plan (raw disk) must fall back to
/// the single-worker pipeline and still round-trip.
#[test]
fn pooled_pipeline_over_planless_store_falls_back() {
    check_backward(StoreConfig::pipelined_pool(
        StoreConfig::Disk {
            dir: scratch_dir("pool-disk-fallback"),
            bandwidth: None,
        },
        4,
    ));
}

#[test]
fn pipelined_disk_round_trip() {
    check_backward(StoreConfig::Pipelined {
        inner: Box::new(StoreConfig::Disk {
            dir: scratch_dir("piped-disk-rt"),
            bandwidth: None,
        }),
        queue_depth: 2,
        lookahead: 1,
        workers: 1,
    });
}

#[test]
fn pipelined_recompute_passes_markers_and_skips_gather() {
    let p = pattern();
    let config = StoreConfig::pipelined(StoreConfig::Recompute);
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    feed(&mut record, &p, 6);
    assert_eq!(record.storage_bytes(), 0, "recompute stores nothing");
    let mut reader = record.into_reader().unwrap();
    let mut seen = 0;
    while let Some((_, matrices)) = reader.next_back().unwrap() {
        assert_eq!(matrices, StepMatrices::Recompute);
        seen += 1;
    }
    assert_eq!(seen, 6);
}

/// The acceptance bar of the async path: for any worker-queue depth and
/// any intra-matrix thread count, the *compressed byte stream on disk* is
/// identical to the synchronous hybrid store's — the pipeline moves
/// compression in time, never reorders or re-encodes it.
#[test]
fn pipelined_hybrid_spill_stream_is_byte_identical_to_sync() {
    let p = pattern();
    let steps = 18usize;
    let run = |config: StoreConfig, dir: &PathBuf| -> (Vec<u8>, u64) {
        let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
        for s in 0..steps {
            let vals: Vec<f64> = (0..p.nnz())
                .map(|k| 1e-3 * ((s as f64 * 0.61 + k as f64).sin() + 2.0))
                .collect();
            let g = CsrMatrix::from_parts(p.clone(), vals.clone()).unwrap();
            let c = CsrMatrix::from_parts(p.clone(), vals).unwrap();
            record
                .on_step(s, s as f64 * 1e-6, 1e-6, &[0.0; 3], &g, &c)
                .unwrap();
        }
        let mut reader = record.into_reader().unwrap();
        // Read the spill file while the reader still owns it; with zero
        // resident blocks every compressed block is in this file.
        let bytes = spill_bytes(dir);
        while reader.next_back().unwrap().is_some() {}
        (bytes, reader.metrics().bytes_written)
    };
    for threads in [1usize, 3] {
        let masc = MascConfig {
            threads,
            chunk_size: 8, // several chunks per block at this nnz
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        let sync_dir = scratch_dir(&format!("exact-sync-{threads}"));
        let hybrid = |dir: &PathBuf| StoreConfig::Hybrid {
            dir: dir.clone(),
            bandwidth: None,
            resident_blocks: 0,
            masc: masc.clone(),
        };
        let (sync_stream, sync_written) = run(hybrid(&sync_dir), &sync_dir);
        assert!(!sync_stream.is_empty());
        for queue_depth in [1usize, 4] {
            // workers > 1 exercises the encode pool (out-of-order encode,
            // in-order commit); the bytes must still match the sync path.
            for workers in [1usize, 4] {
                let dir = scratch_dir(&format!("exact-piped-{threads}-{queue_depth}-{workers}"));
                let (piped_stream, piped_written) = run(
                    StoreConfig::Pipelined {
                        inner: Box::new(hybrid(&dir)),
                        queue_depth,
                        lookahead: 2,
                        workers,
                    },
                    &dir,
                );
                assert_eq!(
                    sync_stream, piped_stream,
                    "threads={threads} queue_depth={queue_depth} workers={workers}: \
                     spill streams differ"
                );
                assert_eq!(sync_written, piped_written);
            }
        }
    }
}

#[test]
fn pipelined_metrics_track_queue_backpressure_and_prefetch() {
    let p = pattern();
    let steps = 10usize;
    // A throttled disk inner store (~50 kB/s) makes the worker slower
    // than the producer, so the depth-1 queue fills and `put` blocks.
    let config = StoreConfig::Pipelined {
        inner: Box::new(StoreConfig::Disk {
            dir: scratch_dir("piped-metrics"),
            bandwidth: Some(50_000.0),
        }),
        queue_depth: 1,
        lookahead: 2,
        workers: 1,
    };
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    feed(&mut record, &p, steps);
    let mut reader = record.into_reader().unwrap();
    while reader.next_back().unwrap().is_some() {}
    let m = reader.metrics();
    assert!(m.max_queue_depth >= 1, "queue depth was tracked");
    assert!(
        m.backpressure_wait > Duration::ZERO,
        "a throttled worker behind a depth-1 queue must stall the producer"
    );
    assert_eq!(
        m.prefetch_hits + m.prefetch_misses,
        steps as u64,
        "every reverse fetch is classified"
    );
    assert_eq!(m.put_hist.count(), steps as u64);
    assert_eq!(m.fetch_hist.count(), steps as u64);
    assert_eq!(m.bytes_written, (steps * 2 * p.nnz() * 8) as u64);
}

#[test]
fn empty_pipelined_record_reader() {
    let p = pattern();
    let config = StoreConfig::pipelined(StoreConfig::Compressed(MascConfig::default()));
    let record = ForwardRecord::new(layout(&p), &config).unwrap();
    let mut reader = record.into_reader().unwrap();
    assert!(reader.next_back().unwrap().is_none());
}

#[test]
fn pipelined_hybrid_spill_cleanup_on_success() {
    let p = pattern();
    let dir = scratch_dir("piped-cleanup");
    let config = StoreConfig::Pipelined {
        inner: Box::new(StoreConfig::Hybrid {
            dir: dir.clone(),
            bandwidth: None,
            resident_blocks: 1,
            masc: MascConfig::default(),
        }),
        queue_depth: 2,
        lookahead: 2,
        workers: 1,
    };
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    feed(&mut record, &p, 12);
    assert_eq!(dir_entries(&dir), 1);
    {
        let mut reader = record.into_reader().unwrap();
        while reader.next_back().unwrap().is_some() {}
    } // drop joins the prefetch worker and removes the spill file
    assert_eq!(dir_entries(&dir), 0);
}
