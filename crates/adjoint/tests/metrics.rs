//! `StoreMetrics` accounting consistency between synchronous backends and
//! their pipelined wrappers: pipelining changes *when* work happens, not
//! how many payload bytes exist, and its prefetch counters must account
//! for every reverse-pass fetch.

// Tests may assert with unwrap/expect; the crate's clippy.toml bans them
// in shipping code only (masc-lint rule R1).
#![allow(clippy::disallowed_methods)]

use masc_adjoint::store::{ForwardRecord, StepMatrices, StoreConfig, StoreMetrics, TensorLayout};
use masc_circuit::transient::JacobianSink;
use masc_compress::MascConfig;
use masc_sparse::{CsrMatrix, Pattern, TripletMatrix};
use std::path::PathBuf;
use std::sync::Arc;

fn pattern() -> Arc<Pattern> {
    let mut t = TripletMatrix::new(4, 4);
    for i in 0..4 {
        t.add(i, i, 1.0);
        if i > 0 {
            t.add(i, i - 1, 1.0);
            t.add(i - 1, i, 1.0);
        }
    }
    t.to_csr().pattern().clone()
}

fn layout(p: &Arc<Pattern>) -> TensorLayout {
    let identity = Arc::new((0..p.nnz()).collect::<Vec<_>>());
    TensorLayout {
        union: p.clone(),
        g_pattern: p.clone(),
        c_pattern: p.clone(),
        g_slots: identity.clone(),
        c_slots: identity,
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("masc-metrics-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Feeds a smooth deterministic series and drains the reverse pass,
/// returning (stored G values newest-first, final metrics).
fn run(config: StoreConfig, steps: usize) -> (Vec<Vec<f64>>, StoreMetrics) {
    let p = pattern();
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    for s in 0..steps {
        let g_vals: Vec<f64> = (0..p.nnz())
            .map(|k| 1.0 + (s as f64 * 0.07 + k as f64).sin() * 1e-3)
            .collect();
        let c_vals: Vec<f64> = (0..p.nnz())
            .map(|k| -1e-9 * ((s as f64 * 0.11 - k as f64).cos() + 3.0))
            .collect();
        let g = CsrMatrix::from_parts(p.clone(), g_vals).unwrap();
        let c = CsrMatrix::from_parts(p.clone(), c_vals).unwrap();
        record
            .on_step(s, s as f64 * 1e-6, 1e-6, &[0.0; 4], &g, &c)
            .unwrap();
    }
    let mut reader = record.into_reader().unwrap();
    let mut gs = Vec::new();
    let mut expect = steps;
    while let Some((step, matrices)) = reader.next_back().unwrap() {
        expect -= 1;
        assert_eq!(step, expect);
        let StepMatrices::Stored { g, .. } = matrices else {
            panic!("stored backend must yield matrices");
        };
        gs.push(g);
    }
    assert_eq!(expect, 0);
    (gs, reader.metrics().clone())
}

/// Pipelining a backend must not change what is stored or read — only
/// the waiting accounts differ.
fn assert_consistent(name: &str, sync_config: StoreConfig, piped_config: StoreConfig) {
    const STEPS: usize = 30;
    let (sync_gs, sync_m) = run(sync_config, STEPS);
    let (piped_gs, piped_m) = run(piped_config, STEPS);

    // Identical payloads, bit for bit, in identical order.
    assert_eq!(sync_gs.len(), piped_gs.len(), "{name}: step count");
    for (s, (a, b)) in sync_gs.iter().zip(&piped_gs).enumerate() {
        assert_eq!(a.len(), b.len(), "{name}: row width at step {s}");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{name}: G diverged at step {s}");
        }
    }

    // Identical byte accounting: the pipeline moves the same blocks.
    assert_eq!(
        sync_m.bytes_written, piped_m.bytes_written,
        "{name}: bytes_written"
    );
    assert_eq!(sync_m.bytes_read, piped_m.bytes_read, "{name}: bytes_read");
    assert!(sync_m.bytes_written > 0, "{name}: nothing was accounted");
    assert!(
        sync_m.peak_resident_bytes > 0,
        "{name}: sync peak residency"
    );
    assert!(
        piped_m.peak_resident_bytes > 0,
        "{name}: piped peak residency"
    );

    // Only the pipelined wrapper owns prefetch/queue accounting, and its
    // hit/miss split must cover every reverse-pass fetch.
    assert_eq!(
        sync_m.prefetch_hits + sync_m.prefetch_misses,
        0,
        "{name}: sync prefetch"
    );
    assert_eq!(sync_m.max_queue_depth, 0, "{name}: sync queue depth");
    assert_eq!(
        piped_m.prefetch_hits + piped_m.prefetch_misses,
        STEPS as u64,
        "{name}: prefetch hits+misses must account for every fetch"
    );
    assert!(piped_m.max_queue_depth > 0, "{name}: piped queue depth");

    // Both sides saw every step in both histograms.
    for (side, m) in [("sync", &sync_m), ("pipelined", &piped_m)] {
        assert_eq!(m.put_hist.count(), STEPS as u64, "{name}/{side}: put_hist");
        assert_eq!(
            m.fetch_hist.count(),
            STEPS as u64,
            "{name}/{side}: fetch_hist"
        );
    }
}

#[test]
fn pipelined_compressed_accounting_matches_sync() {
    assert_consistent(
        "compressed",
        StoreConfig::Compressed(MascConfig::default()),
        StoreConfig::pipelined(StoreConfig::Compressed(MascConfig::default())),
    );
}

#[test]
fn pipelined_hybrid_accounting_matches_sync() {
    let hybrid = |tag: &str| StoreConfig::Hybrid {
        dir: scratch_dir(tag),
        bandwidth: None,
        resident_blocks: 2,
        masc: MascConfig::default(),
    };
    assert_consistent(
        "hybrid",
        hybrid("sync"),
        StoreConfig::pipelined(hybrid("piped")),
    );
}

#[test]
fn pipelined_disk_accounting_matches_sync() {
    let disk = |tag: &str| StoreConfig::Disk {
        dir: scratch_dir(tag),
        bandwidth: None,
    };
    assert_consistent("disk", disk("sync"), StoreConfig::pipelined(disk("piped")));
}
