//! Sensitivity validation: adjoint vs direct vs finite differences, and
//! store equivalence (all four Jacobian stores must produce identical
//! sensitivities — MASC is lossless, so "identical" means bit-close).

// Tests may assert with unwrap/expect; the crate's clippy.toml bans them
// in shipping code only (masc-lint rule R1).
#![allow(clippy::disallowed_methods)]

use masc_adjoint::{
    adjoint_sensitivities, direct_sensitivities, finite_difference, run_adjoint, ForwardRecord,
    Objective, StoreConfig, TensorLayout,
};
use masc_circuit::parser::parse_netlist;
use masc_circuit::transient::{transient, TranOptions};
use masc_circuit::Circuit;
use masc_compress::MascConfig;

/// RC lowpass driven by a ramped pulse: smooth, linear, analytically sane.
fn rc_netlist() -> &'static str {
    "V1 in 0 PULSE(0 5 0 2u 2u 50u 200u)\n\
     R1 in out 1k\n\
     C1 out 0 1n\n\
     .tran 100n 10u\n\
     .end"
}

/// A diode clipper: nonlinear static elements.
fn diode_netlist() -> &'static str {
    "V1 in 0 SIN(0 2 100k)\n\
     R1 in out 1k\n\
     D1 out 0 IS=1e-14 CJ0=10p\n\
     .tran 50n 10u\n\
     .end"
}

/// A BJT amplifier stage with diffusion capacitance.
fn bjt_netlist() -> &'static str {
    "VCC vcc 0 DC 5\n\
     VIN in 0 SIN(0.65 0.01 200k)\n\
     RB in b 10k\n\
     RC vcc c 2k\n\
     Q1 c b 0 IS=1e-16 BF=100 TF=1n\n\
     C1 c 0 1p\n\
     .tran 25n 5u\n\
     .end"
}

/// An NMOS inverter with gate caps.
fn mos_netlist() -> &'static str {
    "VDD vdd 0 DC 3.3\n\
     VIN in 0 PULSE(0 3.3 100n 50n 50n 400n 1u)\n\
     RL vdd out 10k\n\
     M1 out in 0 NMOS KP=2e-4 VT0=0.7 CGS=10f CGD=5f\n\
     C1 out 0 20f\n\
     .tran 5n 1u\n\
     .end"
}

struct Case {
    netlist: &'static str,
    observe: &'static str,
    params: &'static [&'static str],
    fd_tolerance: f64,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            netlist: rc_netlist(),
            observe: "out",
            params: &["R1.r", "C1.c", "V1.scale"],
            fd_tolerance: 2e-3,
        },
        Case {
            netlist: diode_netlist(),
            observe: "out",
            params: &["R1.r", "D1.is", "D1.cj0"],
            fd_tolerance: 5e-3,
        },
        Case {
            netlist: bjt_netlist(),
            observe: "c",
            params: &["RC.r", "Q1.bf", "Q1.tf"],
            fd_tolerance: 1e-2,
        },
        Case {
            netlist: mos_netlist(),
            observe: "out",
            params: &["RL.r", "M1.kp", "M1.vt0"],
            fd_tolerance: 1e-2,
        },
    ]
}

fn setup(
    case: &Case,
) -> (
    Circuit,
    TranOptions,
    Vec<Objective>,
    Vec<masc_circuit::ParamRef>,
) {
    let parsed = parse_netlist(case.netlist).expect("valid netlist");
    let tran = parsed.tran.clone().expect(".tran present");
    let unknown = parsed
        .circuit
        .find_node(case.observe)
        .expect("observed node")
        .unknown()
        .expect("not ground");
    let objectives = vec![
        Objective::FinalValue { unknown },
        Objective::Integral { unknown },
    ];
    let params = case
        .params
        .iter()
        .map(|p| parsed.circuit.find_param(p).expect("param exists"))
        .collect();
    (parsed.circuit, tran, objectives, params)
}

#[test]
fn adjoint_matches_direct_method() {
    for case in cases() {
        let (mut circuit, tran, objectives, params) = setup(&case);
        let mut system = circuit.elaborate().unwrap();
        let mut record =
            ForwardRecord::new(TensorLayout::of(&system), &StoreConfig::RawMemory).unwrap();
        transient(&circuit, &mut system, &tran, &mut record).unwrap();
        let (meta, reader) = record.into_parts().unwrap();
        let adj = adjoint_sensitivities(&circuit, &mut system, &meta, reader, &objectives, &params)
            .unwrap();
        let dir = direct_sensitivities(&circuit, &mut system, &meta, &objectives, &params).unwrap();
        for (i, (a_row, d_row)) in adj.values.iter().zip(&dir).enumerate() {
            for (j, (a, d)) in a_row.iter().zip(d_row).enumerate() {
                let scale = a.abs().max(d.abs()).max(1e-12);
                assert!(
                    (a - d).abs() / scale < 1e-6,
                    "{}: obj {i} param {j}: adjoint {a:e} vs direct {d:e}",
                    case.observe
                );
            }
        }
    }
}

#[test]
fn adjoint_matches_finite_differences() {
    for case in cases() {
        let (mut circuit, tran, objectives, params) = setup(&case);
        let run = run_adjoint(
            &mut circuit,
            &tran,
            &StoreConfig::RawMemory,
            &objectives,
            &params,
        )
        .unwrap();
        for (i, objective) in objectives.iter().enumerate() {
            for (j, param) in params.iter().enumerate() {
                let a = run.sensitivities.values[i][j];
                // FD resolves dO/dp only when a relative perturbation of p
                // moves O by more than the Newton convergence noise
                // (~1e-9). Below that the central difference is noise —
                // skip (the adjoint-vs-direct test still covers those).
                let p0 = circuit.param_value(param).abs();
                if (a * p0).abs() < 1e-6 {
                    continue;
                }
                let fd = finite_difference(&circuit, &tran, objective, param, 1e-5).unwrap();
                let scale = a.abs().max(fd.abs());
                if scale < 1e-15 {
                    continue; // both zero
                }
                assert!(
                    (a - fd).abs() / scale < case.fd_tolerance,
                    "{} obj {i} param {}: adjoint {a:e} vs fd {fd:e}",
                    case.observe,
                    param.path,
                );
            }
        }
    }
}

#[test]
fn all_stores_agree_exactly() {
    for case in cases() {
        let (circuit, tran, objectives, params) = setup(&case);
        let stores = [
            StoreConfig::Recompute,
            StoreConfig::RawMemory,
            StoreConfig::Disk {
                dir: std::env::temp_dir().join("masc-validation"),
                bandwidth: None,
            },
            StoreConfig::Compressed(MascConfig::default()),
            StoreConfig::Compressed(MascConfig::default().with_markov(false)),
            StoreConfig::Hybrid {
                dir: std::env::temp_dir().join("masc-validation"),
                bandwidth: None,
                resident_blocks: 3,
                masc: MascConfig::default(),
            },
            // The async pipeline must not change a single bit relative to
            // its synchronous inner backend.
            StoreConfig::pipelined(StoreConfig::Compressed(MascConfig::default())),
            StoreConfig::Pipelined {
                inner: Box::new(StoreConfig::Hybrid {
                    dir: std::env::temp_dir().join("masc-validation"),
                    bandwidth: None,
                    resident_blocks: 3,
                    masc: MascConfig::default(),
                }),
                queue_depth: 4,
                lookahead: 3,
                workers: 1,
            },
        ];
        let mut results = Vec::new();
        for store in &stores {
            let mut circuit = circuit.clone();
            let run = run_adjoint(&mut circuit, &tran, store, &objectives, &params).unwrap();
            results.push(run.sensitivities.values);
        }
        let baseline = &results[0];
        for (si, result) in results.iter().enumerate().skip(1) {
            for (i, (b_row, r_row)) in baseline.iter().zip(result).enumerate() {
                for (j, (b, r)) in b_row.iter().zip(r_row).enumerate() {
                    // Stored-matrix paths reuse the *identical* floats the
                    // forward pass produced (MASC is lossless), so results
                    // are bit-identical across stores. The only wiggle room
                    // is none at all.
                    assert_eq!(
                        b.to_bits(),
                        r.to_bits(),
                        "store {si} differs at obj {i} param {j}: {b:e} vs {r:e}"
                    );
                }
            }
        }
    }
}

#[test]
fn compressed_store_is_smaller_than_raw() {
    let (mut circuit, tran, objectives, params) = setup(&cases()[0]);
    let raw = run_adjoint(
        &mut circuit.clone(),
        &tran,
        &StoreConfig::RawMemory,
        &objectives,
        &params,
    )
    .unwrap();
    let masc = run_adjoint(
        &mut circuit,
        &tran,
        &StoreConfig::Compressed(MascConfig::default()),
        &objectives,
        &params,
    )
    .unwrap();
    // Tiny circuit: per-matrix headers blunt the ratio, but compression
    // must still win. (Realistic ratios are covered by the bench harness.)
    assert!(
        masc.store_metrics.peak_resident_bytes < raw.store_metrics.peak_resident_bytes,
        "compressed {} vs raw {}",
        masc.store_metrics.peak_resident_bytes,
        raw.store_metrics.peak_resident_bytes
    );
    assert!(
        masc.store_metrics.bytes_written < raw.store_metrics.bytes_written,
        "compressed payload {} vs raw payload {}",
        masc.store_metrics.bytes_written,
        raw.store_metrics.bytes_written
    );
}

#[test]
fn controlled_source_sensitivities_match_fd() {
    // A VCCS-loaded divider into a VCVS buffer: gm and gain sensitivities
    // have clean analytic structure and exercise the G/E stamps end to end.
    let parsed = parse_netlist(
        "V1 in 0 SIN(1 0.2 500k)\n\
         R1 in mid 1k\n\
         R2 mid 0 1k\n\
         G1 mid 0 in 0 0.4m\n\
         E1 out 0 mid 0 4\n\
         RL out 0 10k\n\
         C1 mid 0 100p\n\
         .tran 100n 10u\n\
         .end",
    )
    .expect("valid netlist");
    let mut circuit = parsed.circuit;
    let tran = parsed.tran.unwrap();
    let out = circuit.find_node("out").unwrap().unknown().unwrap();
    let objectives = [Objective::Integral { unknown: out }];
    let params = vec![
        circuit.find_param("G1.gm").unwrap(),
        circuit.find_param("E1.gain").unwrap(),
        circuit.find_param("R2.r").unwrap(),
    ];
    let run = run_adjoint(
        &mut circuit,
        &tran,
        &StoreConfig::Compressed(MascConfig::default()),
        &objectives,
        &params,
    )
    .unwrap();
    for (j, param) in params.iter().enumerate() {
        let a = run.sensitivities.values[0][j];
        let fd = finite_difference(&circuit, &tran, &objectives[0], param, 1e-5).unwrap();
        let scale = a.abs().max(fd.abs()).max(1e-15);
        assert!(
            (a - fd).abs() / scale < 5e-3,
            "{}: adjoint {a:e} vs fd {fd:e}",
            param.path
        );
    }
    // out = gain·v(mid), so dO/dgain = ∫v(mid)dt > 0 at this bias
    // (v(mid) ≈ 0.5 − gm·500·v(in) ≈ 0.3 V).
    assert!(
        run.sensitivities.values[0][1] > 1e-7,
        "d∫v(out)/dgain = {}",
        run.sensitivities.values[0][1]
    );
}

#[test]
fn multiple_objectives_one_pass() {
    let parsed = parse_netlist(rc_netlist()).unwrap();
    let mut circuit = parsed.circuit;
    let tran = parsed.tran.unwrap();
    let out = circuit.find_node("out").unwrap().unknown().unwrap();
    let vin = circuit.find_node("in").unwrap().unknown().unwrap();
    let objectives = vec![
        Objective::FinalValue { unknown: out },
        Objective::Integral { unknown: out },
        Objective::IntegralSquared { unknown: out },
        Objective::AtStep {
            unknown: vin,
            step: 10,
        },
    ];
    let params = vec![circuit.find_param("R1.r").unwrap()];
    let run = run_adjoint(
        &mut circuit,
        &tran,
        &StoreConfig::RawMemory,
        &objectives,
        &params,
    )
    .unwrap();
    assert_eq!(run.sensitivities.values.len(), 4);
    // The input node does not depend on R1 (ideal source): row 3 ≈ 0.
    assert!(run.sensitivities.values[3][0].abs() < 1e-12);
    // But the output objectives do.
    assert!(run.sensitivities.values[1][0].abs() > 1e-12);
}

#[test]
fn recompute_reports_recompute_time() {
    let (mut circuit, tran, objectives, params) = setup(&cases()[0]);
    let run = run_adjoint(
        &mut circuit,
        &tran,
        &StoreConfig::Recompute,
        &objectives,
        &params,
    )
    .unwrap();
    assert!(run.sensitivities.stats.recompute_time.as_nanos() > 0);
    assert_eq!(run.store_metrics.peak_resident_bytes, 0);
    assert_eq!(run.store_metrics.bytes_written, 0);
}
