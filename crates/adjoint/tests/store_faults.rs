//! Fault injection and error-path tests for the Jacobian store layer:
//! a full transient must surface store I/O failures as structured
//! [`TranError::Sink`] values (never a panic), spill files must not leak
//! on any path, and truncated tensors must decode to
//! [`StoreError::TensorTruncated`].

// Tests may assert with unwrap/expect; the crate's clippy.toml bans them
// in shipping code only (masc-lint rule R1).
#![allow(clippy::disallowed_methods)]

use masc_adjoint::store::{
    BackwardReader, CompressedStore, DiskStore, EncodePlan, EncodedBlock, FailingWriter,
    ForwardRecord, HybridStore, JacobianStore, PipelinedStore, StepMatrices, StoreConfig,
    StoreError, StoreMetrics, TensorLayout,
};
use masc_circuit::parser::parse_netlist;
use masc_circuit::transient::{transient, JacobianSink, TranError};
use masc_compress::MascConfig;
use masc_sparse::{CsrMatrix, Pattern, TripletMatrix};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("masc-fault-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dir_entries(dir: &PathBuf) -> usize {
    std::fs::read_dir(dir).map(|d| d.count()).unwrap_or(0)
}

fn pattern() -> Arc<Pattern> {
    let mut t = TripletMatrix::new(3, 3);
    for i in 0..3 {
        t.add(i, i, 1.0);
        if i > 0 {
            t.add(i, i - 1, 1.0);
            t.add(i - 1, i, 1.0);
        }
    }
    t.to_csr().pattern().clone()
}

fn layout(p: &Arc<Pattern>) -> TensorLayout {
    let identity = Arc::new((0..p.nnz()).collect::<Vec<_>>());
    TensorLayout {
        union: p.clone(),
        g_pattern: p.clone(),
        c_pattern: p.clone(),
        g_slots: identity.clone(),
        c_slots: identity,
    }
}

fn feed(record: &mut ForwardRecord, p: &Arc<Pattern>, steps: usize) {
    for s in 0..steps {
        let vals: Vec<f64> = (0..p.nnz()).map(|k| s as f64 + k as f64 * 0.1).collect();
        let g = CsrMatrix::from_parts(p.clone(), vals.clone()).unwrap();
        let c = CsrMatrix::from_parts(p.clone(), vals).unwrap();
        record
            .on_step(s, s as f64 * 1e-6, 1e-6, &[0.0; 3], &g, &c)
            .unwrap();
    }
}

/// A transient whose disk store runs out of space mid-run must abort with
/// a structured `TranError::Sink` (not a panic), and the spill file must
/// be removed once the record is dropped.
#[test]
fn transient_surfaces_disk_full_as_sink_error() {
    let parsed = parse_netlist(
        "V1 in 0 SIN(0 1 1e6)\n\
         R1 in out 1k\n\
         C1 out 0 1n\n\
         .tran 20n 2u\n\
         .end",
    )
    .expect("valid netlist");
    let mut circuit = parsed.circuit;
    let mut system = circuit.elaborate().expect("elaborates");
    let tran = parsed.tran.expect(".tran present");
    let layout = TensorLayout::of(&system);
    let step_bytes = (layout.g_pattern.nnz() + layout.c_pattern.nnz()) * 8;

    let dir = scratch_dir("disk-full");
    let mut store = DiskStore::create(&dir, None, layout.g_pattern.nnz(), layout.c_pattern.nnz())
        .expect("spill file creates");
    // Allow ~5 steps' worth of bytes, then fail like a full disk.
    store.wrap_writer(|w| Box::new(FailingWriter::new(w, 5 * step_bytes)));
    let mut record = ForwardRecord::with_store(layout, Box::new(store));

    let err = transient(&circuit, &mut system, &tran, &mut record)
        .expect_err("the injected fault must abort the transient");
    match &err {
        TranError::Sink { step, source, .. } => {
            assert!(*step >= 1, "DC and a few steps fit in the byte budget");
            assert!(
                source.to_string().contains("injected disk-full fault"),
                "error chain must carry the I/O cause, got: {source}"
            );
        }
        other => panic!("expected TranError::Sink, got {other:?}"),
    }
    // The record still owns the spill file; dropping it must clean up.
    assert_eq!(dir_entries(&dir), 1);
    drop(record);
    assert_eq!(dir_entries(&dir), 0);
}

/// Two records alive at once in the same directory must get distinct
/// spill files (regression: the filename was `masc-jacobians-{pid}.bin`,
/// so a second record silently clobbered the first).
#[test]
fn concurrent_records_use_distinct_spill_files() {
    let p = pattern();
    let dir = scratch_dir("concurrent");
    let config = StoreConfig::Disk {
        dir: dir.clone(),
        bandwidth: None,
    };
    let mut first = ForwardRecord::new(layout(&p), &config).unwrap();
    let mut second = ForwardRecord::new(layout(&p), &config).unwrap();
    assert_eq!(dir_entries(&dir), 2, "each record needs its own file");
    feed(&mut first, &p, 4);
    feed(&mut second, &p, 7);
    // Both round-trip independently: interleaved writes to a shared file
    // would corrupt at least one of them.
    for (record, steps) in [(first, 4usize), (second, 7usize)] {
        let mut reader = record.into_reader().unwrap();
        let mut expect = steps;
        while let Some((step, StepMatrices::Stored { g, .. })) = reader.next_back().unwrap() {
            expect -= 1;
            assert_eq!(step, expect);
            assert_eq!(g[0], step as f64);
        }
        assert_eq!(expect, 0);
    }
    assert_eq!(dir_entries(&dir), 0);
}

/// Records are `Send`: two threads can each run a disk-backed record in
/// the same directory simultaneously.
#[test]
fn records_are_send_across_threads() {
    let p = pattern();
    let dir = scratch_dir("threads");
    let config = StoreConfig::Disk {
        dir: dir.clone(),
        bandwidth: None,
    };
    let barrier = std::sync::Barrier::new(2);
    std::thread::scope(|scope| {
        for steps in [5usize, 9] {
            let p = p.clone();
            let config = config.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
                barrier.wait(); // both spill files exist before either writes
                feed(&mut record, &p, steps);
                let mut reader = record.into_reader().unwrap();
                let mut seen = 0;
                while reader.next_back().unwrap().is_some() {
                    seen += 1;
                }
                assert_eq!(seen, steps);
            });
        }
    });
    assert_eq!(dir_entries(&dir), 0);
}

/// A store that silently drops steps: the reader must report
/// `StoreError::TensorTruncated` for the missing step instead of
/// panicking with "G tensor shorter than step count".
#[derive(Debug)]
struct LossyStore {
    inner: CompressedStore,
    keep: usize,
}

impl JacobianStore for LossyStore {
    fn put(&mut self, step: usize, g: &[f64], c: &[f64]) -> Result<(), StoreError> {
        if step < self.keep {
            self.inner.put(step, g, c)
        } else {
            Ok(())
        }
    }

    fn resident_bytes(&self) -> usize {
        self.inner.resident_bytes()
    }

    fn metrics(&self) -> &StoreMetrics {
        self.inner.metrics()
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        self.inner.metrics_mut()
    }

    fn finish(self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError> {
        Box::new(self.inner).finish()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[test]
fn truncated_tensor_yields_structured_error() {
    let p = pattern();
    let store = LossyStore {
        inner: CompressedStore::new(p.clone(), p.clone(), MascConfig::default()),
        keep: 3,
    };
    let mut record = ForwardRecord::with_store(layout(&p), Box::new(store));
    feed(&mut record, &p, 6);
    let mut reader = record.into_reader().unwrap();
    // The newest recorded step (5) has no stored matrices.
    let err = reader.next_back().expect_err("missing step must error");
    assert!(
        matches!(err, StoreError::TensorTruncated { step: 5 }),
        "got {err:?}"
    );
}

#[test]
fn fully_empty_tensor_with_recorded_steps_errors() {
    let p = pattern();
    let store = LossyStore {
        inner: CompressedStore::new(p.clone(), p.clone(), MascConfig::default()),
        keep: 0,
    };
    let mut record = ForwardRecord::with_store(layout(&p), Box::new(store));
    feed(&mut record, &p, 4);
    let mut reader = record.into_reader().unwrap();
    let err = reader.next_back().expect_err("empty tensor must error");
    assert!(
        matches!(err, StoreError::TensorTruncated { step: 3 }),
        "got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Faults through the asynchronous pipeline
// ---------------------------------------------------------------------------

/// A disk-full fault inside the *pipeline worker* must surface exactly
/// like the synchronous case — as `TranError::Sink`, never a panic or a
/// silent drop — and the error chain must carry a
/// `StoreError::Worker { step }` naming the step whose persist actually
/// failed (the forward loop may already be a few steps ahead when the
/// failure is noticed).
#[test]
fn pipelined_transient_surfaces_disk_full_as_sink_error() {
    let parsed = parse_netlist(
        "V1 in 0 SIN(0 1 1e6)\n\
         R1 in out 1k\n\
         C1 out 0 1n\n\
         .tran 20n 2u\n\
         .end",
    )
    .expect("valid netlist");
    let mut circuit = parsed.circuit;
    let mut system = circuit.elaborate().expect("elaborates");
    let tran = parsed.tran.expect(".tran present");
    let layout = TensorLayout::of(&system);
    let step_bytes = (layout.g_pattern.nnz() + layout.c_pattern.nnz()) * 8;

    let dir = scratch_dir("piped-disk-full");
    let mut store = DiskStore::create(&dir, None, layout.g_pattern.nnz(), layout.c_pattern.nnz())
        .expect("spill file creates");
    // Steps 0..=4 fit exactly; the worker's write for step 5 fails.
    store.wrap_writer(|w| Box::new(FailingWriter::new(w, 5 * step_bytes)));
    let piped = PipelinedStore::spawn(Box::new(store), 2, 2);
    let mut record = ForwardRecord::with_store(layout, Box::new(piped));

    let err = transient(&circuit, &mut system, &tran, &mut record)
        .expect_err("the injected fault must abort the transient");
    match &err {
        TranError::Sink { step, source, .. } => {
            assert!(
                *step >= 5,
                "the forward loop cannot notice before the failing step, got {step}"
            );
            assert!(
                source.to_string().contains("injected disk-full fault"),
                "error chain must carry the I/O cause, got: {source}"
            );
            let store_err = source
                .inner()
                .downcast_ref::<StoreError>()
                .expect("sink error wraps a StoreError");
            match store_err {
                StoreError::Worker { step, .. } => {
                    assert_eq!(*step, 5, "the worker names the step whose persist failed")
                }
                other => panic!("expected StoreError::Worker, got {other:?}"),
            }
        }
        other => panic!("expected TranError::Sink, got {other:?}"),
    }
    // Abort path: dropping the record joins the worker and removes the
    // spill file.
    assert_eq!(dir_entries(&dir), 1);
    drop(record);
    assert_eq!(dir_entries(&dir), 0);
}

/// A worker failure *after the last accepted step's `on_step` returned*
/// must still abort the transient: `on_finish` drains the queue.
#[test]
fn pipelined_fault_on_final_queued_step_still_aborts() {
    let p = pattern();
    let lay = layout(&p);
    let step_bytes = 2 * p.nnz() * 8;
    let dir = scratch_dir("piped-late-fault");
    let mut store = DiskStore::create(&dir, None, p.nnz(), p.nnz()).expect("spill file creates");
    // Allow every step except the very last one.
    store.wrap_writer(|w| Box::new(FailingWriter::new(w, 3 * step_bytes)));
    let piped = PipelinedStore::spawn(Box::new(store), 8, 2);
    let mut record = ForwardRecord::with_store(lay, Box::new(piped));
    // With a deep queue, all four puts are accepted before the worker
    // reaches the failing write.
    feed(&mut record, &p, 4);
    let err = JacobianSink::on_finish(&mut record).expect_err("drain must surface the fault");
    assert!(
        err.to_string().contains("injected disk-full fault"),
        "got: {err}"
    );
    drop(record);
    assert_eq!(dir_entries(&dir), 0);
}

/// Join-on-drop: abandoning a pipelined record mid-run must terminate the
/// worker thread and release the wrapped store (proven by the spill file
/// disappearing — only the store's drop removes it).
#[test]
fn dropped_pipelined_record_joins_worker_and_cleans_up() {
    let p = pattern();
    let dir = scratch_dir("piped-abandoned");
    let config = StoreConfig::Pipelined {
        inner: Box::new(StoreConfig::Disk {
            dir: dir.clone(),
            bandwidth: None,
        }),
        queue_depth: 2,
        lookahead: 2,
        workers: 1,
    };
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    feed(&mut record, &p, 5);
    assert_eq!(dir_entries(&dir), 1);
    drop(record); // mid-record: never finished into a reader
    assert_eq!(
        dir_entries(&dir),
        0,
        "the worker must be joined and the store dropped"
    );
}

/// Same for the reverse side: dropping a reader mid-sweep joins the
/// prefetch thread and cleans the spill file up.
#[test]
fn dropped_prefetching_reader_joins_worker_and_cleans_up() {
    let p = pattern();
    let dir = scratch_dir("piped-reader-drop");
    let config = StoreConfig::Pipelined {
        inner: Box::new(StoreConfig::Disk {
            dir: dir.clone(),
            bandwidth: None,
        }),
        queue_depth: 2,
        lookahead: 1,
        workers: 1,
    };
    let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
    feed(&mut record, &p, 20);
    let mut reader = record.into_reader().unwrap();
    reader.next_back().unwrap(); // consume one step, then abandon
    drop(reader);
    assert_eq!(dir_entries(&dir), 0);
}

/// A hybrid store whose encoded-block commit fails at one exact step —
/// the scripted stand-in for the spill tier filling up while a
/// multi-worker pipeline is encoding ahead of it.
#[derive(Debug)]
struct FailingEncodedStore {
    inner: HybridStore,
    fail_at: usize,
}

impl JacobianStore for FailingEncodedStore {
    fn put(&mut self, step: usize, g: &[f64], c: &[f64]) -> Result<(), StoreError> {
        self.inner.put(step, g, c)
    }

    fn encode_plan(&self) -> Option<EncodePlan> {
        self.inner.encode_plan()
    }

    fn put_encoded(
        &mut self,
        step: usize,
        g: EncodedBlock,
        c: EncodedBlock,
    ) -> Result<(), StoreError> {
        if step == self.fail_at {
            return Err(StoreError::Io(std::io::Error::other(
                "injected encoded-commit fault",
            )));
        }
        self.inner.put_encoded(step, g, c)
    }

    fn resident_bytes(&self) -> usize {
        self.inner.resident_bytes()
    }

    fn metrics(&self) -> &StoreMetrics {
        self.inner.metrics()
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        self.inner.metrics_mut()
    }

    fn finish(self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError> {
        Box::new(self.inner).finish()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// ISSUE 6 satellite: with a pool of W > 1 encode workers, a commit
/// failure at step k must surface as `StoreError::Worker { step: k }`
/// (wrapped in `TranError::Sink` at the first step the forward loop can
/// notice), and the hybrid spill file must be cleaned up on drop.
#[test]
fn pooled_pipeline_fault_names_exact_step_and_cleans_spill() {
    const FAIL_AT: usize = 5;

    let parsed = parse_netlist(
        "V1 in 0 SIN(0 1 1e6)\n\
         R1 in out 1k\n\
         C1 out 0 1n\n\
         .tran 20n 2u\n\
         .end",
    )
    .expect("valid netlist");
    let mut circuit = parsed.circuit;
    let mut system = circuit.elaborate().expect("elaborates");
    let tran = parsed.tran.expect(".tran present");
    let layout = TensorLayout::of(&system);

    let dir = scratch_dir("pool-fault");
    // resident_blocks = 0: every committed block spills immediately, so
    // the spill file demonstrably exists before the fault hits.
    let hybrid = HybridStore::create(
        layout.g_pattern.clone(),
        layout.c_pattern.clone(),
        MascConfig::default(),
        &dir,
        None,
        0,
    )
    .expect("spill file creates");
    let store = FailingEncodedStore {
        inner: hybrid,
        fail_at: FAIL_AT,
    };
    let piped = PipelinedStore::spawn_pool(Box::new(store), 4, 2, 3);
    let mut record = ForwardRecord::with_store(layout, Box::new(piped));

    let err = transient(&circuit, &mut system, &tran, &mut record)
        .expect_err("the injected fault must abort the transient");
    match &err {
        TranError::Sink { step, source, .. } => {
            // The pool encodes step k only once step k + 1 arrives, so the
            // forward loop cannot notice before then — but the parked
            // error must name the failing step exactly.
            assert!(
                *step >= FAIL_AT,
                "fault visible no earlier than the failing step, got {step}"
            );
            assert!(
                source.to_string().contains("injected encoded-commit fault"),
                "error chain must carry the commit cause, got: {source}"
            );
            let store_err = source
                .inner()
                .downcast_ref::<StoreError>()
                .expect("sink error wraps a StoreError");
            match store_err {
                StoreError::Worker { step, .. } => {
                    assert_eq!(
                        *step, FAIL_AT,
                        "the pool names the step whose commit failed"
                    )
                }
                other => panic!("expected StoreError::Worker, got {other:?}"),
            }
        }
        other => panic!("expected TranError::Sink, got {other:?}"),
    }
    // Abort path: dropping the record joins the pool (workers + committer)
    // and the wrapped hybrid store removes its spill file.
    assert_eq!(dir_entries(&dir), 1);
    drop(record);
    assert_eq!(dir_entries(&dir), 0);
}
