//! Switchable injected defects for validating the conformance harness.
//!
//! Mirrors `masc_compress::mutation` for the store layer: the
//! `masc-conform` mutation check activates a defect and asserts the
//! store-equivalence oracle catches it within a bounded fuzz budget. Only
//! compiled with the `mutation-hooks` feature, and inert until
//! [`set_defect`] selects a defect at run time.

use std::sync::atomic::{AtomicU8, Ordering};

/// Selectable injected defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Defect {
    /// No defect (the default state).
    None = 0,
    /// The hybrid store's disk tier serves each spilled block read after
    /// the first from a one-block stale cache, returning the previously
    /// read block's bytes instead of the requested ones.
    StaleSpillBlock = 1,
}

static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Activates `defect` process-wide. Tests must serialize around this.
pub fn set_defect(defect: Defect) {
    ACTIVE.store(defect as u8, Ordering::SeqCst);
}

/// Whether `defect` is currently active.
pub fn active(defect: Defect) -> bool {
    ACTIVE.load(Ordering::SeqCst) == defect as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_by_default() {
        set_defect(Defect::None);
        assert!(active(Defect::None));
        assert!(!active(Defect::StaleSpillBlock));
    }
}
