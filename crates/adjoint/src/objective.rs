//! Objective functions over the transient solution (paper eq. 2).
//!
//! `O = ζ(x₀, x₁, …, x_N)` — the sensitivity engines need two things from
//! an objective: its value on a computed waveform and its gradient
//! `(dO/dx)_n` at each time point (paper eq. 3's left factor).

/// An objective function of the transient solution.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// The value of unknown `unknown` at the final time point.
    FinalValue {
        /// Unknown index (node voltage or branch current).
        unknown: usize,
    },
    /// The value of unknown `unknown` at a specific step.
    AtStep {
        /// Unknown index.
        unknown: usize,
        /// Step index (0 = DC point).
        step: usize,
    },
    /// `∫ x_u dt` over the whole run (rectangle rule over accepted steps).
    Integral {
        /// Unknown index.
        unknown: usize,
    },
    /// `∫ x_u² dt` — a smooth nonlinear functional (power-like).
    IntegralSquared {
        /// Unknown index.
        unknown: usize,
    },
}

impl Objective {
    /// The unknown this objective observes.
    pub fn unknown(&self) -> usize {
        match self {
            Objective::FinalValue { unknown }
            | Objective::AtStep { unknown, .. }
            | Objective::Integral { unknown }
            | Objective::IntegralSquared { unknown } => *unknown,
        }
    }

    /// Evaluates the objective on a waveform.
    ///
    /// `states[n]` is the solution at step `n`; `hs[n]` the step size used
    /// to reach step `n` (`hs[0]` is unused).
    ///
    /// # Panics
    ///
    /// Panics if the referenced step or unknown is out of range.
    // Documented panicking contract on caller-held (not decoded) data.
    #[allow(clippy::disallowed_methods)]
    pub fn value(&self, states: &[Vec<f64>], hs: &[f64]) -> f64 {
        match *self {
            Objective::FinalValue { unknown } => {
                states.last().expect("non-empty waveform")[unknown]
            }
            Objective::AtStep { unknown, step } => states[step][unknown],
            Objective::Integral { unknown } => {
                (1..states.len()).map(|n| hs[n] * states[n][unknown]).sum()
            }
            Objective::IntegralSquared { unknown } => (1..states.len())
                .map(|n| {
                    let v = states[n][unknown];
                    hs[n] * v * v
                })
                .sum(),
        }
    }

    /// Accumulates `(dO/dx)_n` into `out` (cleared first).
    ///
    /// `n_steps` is the final step index `N`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` does not cover the observed unknown.
    pub fn gradient_into(&self, step: usize, n_steps: usize, h: f64, x: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        match *self {
            Objective::FinalValue { unknown } => {
                if step == n_steps {
                    out[unknown] = 1.0;
                }
            }
            Objective::AtStep { unknown, step: s } => {
                if step == s {
                    out[unknown] = 1.0;
                }
            }
            Objective::Integral { unknown } => {
                if step > 0 {
                    out[unknown] = h;
                }
            }
            Objective::IntegralSquared { unknown } => {
                if step > 0 {
                    out[unknown] = 2.0 * h * x[unknown];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_waveform() -> (Vec<Vec<f64>>, Vec<f64>) {
        // x(t) at steps 0..4 with x = [t, 2t]; h = 0.5.
        let states: Vec<Vec<f64>> = (0..5)
            .map(|n| {
                let t = n as f64 * 0.5;
                vec![t, 2.0 * t]
            })
            .collect();
        let hs = vec![0.5; 5];
        (states, hs)
    }

    #[test]
    fn final_value() {
        let (states, hs) = ramp_waveform();
        let o = Objective::FinalValue { unknown: 1 };
        assert_eq!(o.value(&states, &hs), 4.0);
        let mut g = vec![0.0; 2];
        o.gradient_into(4, 4, 0.5, &states[4], &mut g);
        assert_eq!(g, vec![0.0, 1.0]);
        o.gradient_into(3, 4, 0.5, &states[3], &mut g);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    fn at_step() {
        let (states, hs) = ramp_waveform();
        let o = Objective::AtStep {
            unknown: 0,
            step: 2,
        };
        assert_eq!(o.value(&states, &hs), 1.0);
        let mut g = vec![0.0; 2];
        o.gradient_into(2, 4, 0.5, &states[2], &mut g);
        assert_eq!(g, vec![1.0, 0.0]);
    }

    #[test]
    fn integral_matches_rectangle_rule() {
        let (states, hs) = ramp_waveform();
        let o = Objective::Integral { unknown: 0 };
        // Σ h·t_n for n = 1..4: 0.5·(0.5 + 1.0 + 1.5 + 2.0) = 2.5.
        assert!((o.value(&states, &hs) - 2.5).abs() < 1e-12);
        let mut g = vec![0.0; 2];
        o.gradient_into(3, 4, 0.5, &states[3], &mut g);
        assert_eq!(g, vec![0.5, 0.0]);
        o.gradient_into(0, 4, 0.5, &states[0], &mut g);
        assert_eq!(g, vec![0.0, 0.0]); // DC point excluded
    }

    #[test]
    fn integral_squared_gradient_is_2hx() {
        let (states, hs) = ramp_waveform();
        let o = Objective::IntegralSquared { unknown: 1 };
        let expected: f64 = (1..5).map(|n| 0.5 * (n as f64).powi(2)).sum();
        assert!((o.value(&states, &hs) - expected).abs() < 1e-12);
        let mut g = vec![0.0; 2];
        o.gradient_into(2, 4, 0.5, &states[2], &mut g);
        assert!((g[1] - 2.0 * 0.5 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_accessor() {
        assert_eq!(Objective::FinalValue { unknown: 7 }.unknown(), 7);
        assert_eq!(Objective::Integral { unknown: 3 }.unknown(), 3);
    }
}
