//! Transient sensitivity analysis: adjoint (with pluggable Jacobian
//! stores), direct, and finite-difference engines.
//!
//! This crate assembles the MASC pipeline end to end (paper Algorithm 2):
//!
//! 1. run the forward transient with a [`store::ForwardRecord`] sink that
//!    captures states and — per [`store::StoreConfig`] — Jacobians
//!    (recompute / raw / disk / MASC-compressed);
//! 2. run the [`adjoint`] reverse pass, which consumes the matrices in
//!    reverse order with one transpose solve per step per objective;
//! 3. validate against the [`direct`] forward method and [`fd`] finite
//!    differences.
//!
//! # Examples
//!
//! ```
//! use masc_adjoint::{run_adjoint, Objective, StoreConfig};
//! use masc_circuit::parser::parse_netlist;
//! use masc_compress::MascConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut parsed = parse_netlist(
//!     "V1 in 0 DC 5\n\
//!      R1 in out 1k\n\
//!      C1 out 0 1u\n\
//!      .tran 50u 1m\n\
//!      .end",
//! )?;
//! let tran = parsed.tran.clone().expect(".tran present");
//! let out = parsed.circuit.find_node("out").expect("node").unknown().expect("not ground");
//! let objectives = [Objective::FinalValue { unknown: out }];
//! let params = [parsed.circuit.find_param("R1.r").expect("param")];
//! let run = run_adjoint(
//!     &mut parsed.circuit,
//!     &tran,
//!     &StoreConfig::Compressed(MascConfig::default()),
//!     &objectives,
//!     &params,
//! )?;
//! // The capacitor has fully charged to 5 V: dVout/dR ≈ 0.
//! assert!(run.sensitivities.values[0][0].abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

// Unit tests may assert with unwrap/expect; shipping code may not (see
// clippy.toml and masc-lint rule R1).
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjoint;
pub mod direct;
pub mod fd;
pub mod objective;
pub mod store;

#[cfg(feature = "mutation-hooks")]
pub mod mutation;

pub use adjoint::{
    adjoint_sensitivities, adjoint_sensitivities_per_objective, AdjointCursor, AdjointError,
    AdjointStats, SensitivityResult, WindowTerminal,
};
pub use direct::{direct_sensitivities, DirectError};
pub use fd::{finite_difference, objective_value, FdError};
pub use objective::Objective;
pub use store::{
    BackwardJacobians, BackwardReader, CaptureStore, CompressedStore, DiskStore, DurationHistogram,
    FailingWriter, ForwardRecord, HybridStore, JacobianStore, PipelinedStore, PrefetchReader,
    RawStore, RecomputeStore, RunMeta, StepMatrices, StoreConfig, StoreError, StoreMetrics,
    TensorLayout, TensorSlot,
};

use masc_circuit::transient::{transient, TranError, TranOptions, TranStats};
use masc_circuit::{Circuit, ParamRef};

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum RunError {
    /// Circuit elaboration failed.
    Circuit(masc_circuit::CircuitError),
    /// The forward transient failed.
    Tran(TranError),
    /// The Jacobian store failed.
    Store(StoreError),
    /// The adjoint pass failed.
    Adjoint(AdjointError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Circuit(e) => write!(f, "elaboration failed: {e}"),
            RunError::Tran(e) => write!(f, "forward transient failed: {e}"),
            RunError::Store(e) => write!(f, "jacobian store failed: {e}"),
            RunError::Adjoint(e) => write!(f, "adjoint pass failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<masc_circuit::CircuitError> for RunError {
    fn from(e: masc_circuit::CircuitError) -> Self {
        RunError::Circuit(e)
    }
}

impl From<TranError> for RunError {
    fn from(e: TranError) -> Self {
        RunError::Tran(e)
    }
}

impl From<StoreError> for RunError {
    fn from(e: StoreError) -> Self {
        RunError::Store(e)
    }
}

impl From<AdjointError> for RunError {
    fn from(e: AdjointError) -> Self {
        RunError::Adjoint(e)
    }
}

/// Results and accounting of one forward + adjoint run.
#[derive(Debug, Clone)]
pub struct SensitivityRun {
    /// Objective values on the nominal trajectory.
    pub objective_values: Vec<f64>,
    /// The sensitivity matrix and reverse-pass statistics.
    pub sensitivities: SensitivityResult,
    /// Forward transient statistics.
    pub tran_stats: TranStats,
    /// Unified Jacobian-store telemetry for the whole run (forward
    /// capture + reverse fetch; same object as `sensitivities.stats.store`).
    pub store_metrics: StoreMetrics,
}

/// Runs transient + the *Xyce-like* sensitivity schedule: nothing stored,
/// one reverse sweep per objective, Jacobians re-evaluated on every sweep
/// (see [`adjoint_sensitivities_per_objective`]). This is the conventional
/// baseline of paper Table 1 / Fig. 7.
///
/// # Errors
///
/// Returns [`RunError`] if any stage fails.
pub fn run_xyce_like(
    circuit: &mut Circuit,
    tran: &TranOptions,
    objectives: &[Objective],
    params: &[ParamRef],
) -> Result<SensitivityRun, RunError> {
    let mut system = circuit.elaborate()?;
    let mut record = ForwardRecord::new(store::TensorLayout::of(&system), &StoreConfig::Recompute)?;
    let tran_result = transient(circuit, &mut system, tran, &mut record)?;
    let objective_values = objectives
        .iter()
        .map(|o| o.value(&tran_result.states, &tran_result.steps))
        .collect();
    let (meta, _) = record.into_parts()?;
    let sensitivities =
        adjoint_sensitivities_per_objective(circuit, &mut system, &meta, objectives, params)?;
    let store_metrics = sensitivities.stats.store.clone();
    Ok(SensitivityRun {
        objective_values,
        sensitivities,
        tran_stats: tran_result.stats,
        store_metrics,
    })
}

/// Runs transient + adjoint sensitivity end to end with the chosen
/// Jacobian store — all objectives batched into one reverse sweep (the
/// schedule Jacobian storage makes possible).
///
/// # Errors
///
/// Returns [`RunError`] if any stage fails.
pub fn run_adjoint(
    circuit: &mut Circuit,
    tran: &TranOptions,
    store: &StoreConfig,
    objectives: &[Objective],
    params: &[ParamRef],
) -> Result<SensitivityRun, RunError> {
    let mut system = circuit.elaborate()?;
    let mut record = ForwardRecord::new(store::TensorLayout::of(&system), store)?;
    let tran_result = transient(circuit, &mut system, tran, &mut record)?;
    let objective_values = objectives
        .iter()
        .map(|o| o.value(&tran_result.states, &tran_result.steps))
        .collect();
    let (meta, reader) = record.into_parts()?;
    let sensitivities =
        adjoint_sensitivities(circuit, &mut system, &meta, reader, objectives, params)?;
    let store_metrics = sensitivities.stats.store.clone();
    Ok(SensitivityRun {
        objective_values,
        sensitivities,
        tran_stats: tran_result.stats,
        store_metrics,
    })
}
