//! Finite-difference sensitivity: the gold-standard oracle for tests.
//!
//! Reruns the full transient with `p ± ε` and central-differences the
//! objective. Two complete simulations per parameter — only viable for
//! validation, which is exactly what it is used for here.

use crate::objective::Objective;
use masc_circuit::transient::{transient, NullSink, TranError, TranOptions};
use masc_circuit::{Circuit, ParamRef};

/// Errors from finite-difference evaluation.
#[derive(Debug)]
pub enum FdError {
    /// A perturbed transient failed.
    Tran(TranError),
    /// Elaboration of the perturbed circuit failed.
    Circuit(masc_circuit::CircuitError),
}

impl std::fmt::Display for FdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FdError::Tran(e) => write!(f, "perturbed transient failed: {e}"),
            FdError::Circuit(e) => write!(f, "perturbed circuit invalid: {e}"),
        }
    }
}

impl std::error::Error for FdError {}

impl From<TranError> for FdError {
    fn from(e: TranError) -> Self {
        FdError::Tran(e)
    }
}

impl From<masc_circuit::CircuitError> for FdError {
    fn from(e: masc_circuit::CircuitError) -> Self {
        FdError::Circuit(e)
    }
}

/// Evaluates an objective on a fresh transient of `circuit`.
///
/// # Errors
///
/// Returns [`FdError`] if elaboration or the transient fails.
pub fn objective_value(
    circuit: &Circuit,
    opts: &TranOptions,
    objective: &Objective,
) -> Result<f64, FdError> {
    let mut circuit = circuit.clone();
    let mut system = circuit.elaborate()?;
    let result = transient(&circuit, &mut system, opts, &mut NullSink)?;
    Ok(objective.value(&result.states, &result.steps))
}

/// Central finite difference `dO/dp ≈ (O(p+ε) − O(p−ε)) / 2ε` with
/// `ε = max(|p|·rel_eps, abs_floor)`.
///
/// # Errors
///
/// Returns [`FdError`] if either perturbed run fails.
pub fn finite_difference(
    circuit: &Circuit,
    opts: &TranOptions,
    objective: &Objective,
    param: &ParamRef,
    rel_eps: f64,
) -> Result<f64, FdError> {
    let p0 = circuit.param_value(param);
    let eps = (p0.abs() * rel_eps).max(1e-30);
    let mut hi = circuit.clone();
    hi.set_param_value(param, p0 + eps);
    let mut lo = circuit.clone();
    lo.set_param_value(param, p0 - eps);
    let o_hi = objective_value(&hi, opts, objective)?;
    let o_lo = objective_value(&lo, opts, objective)?;
    Ok((o_hi - o_lo) / (2.0 * eps))
}
