//! Jacobian stores: the four strategies Fig. 7 compares.
//!
//! A [`ForwardRecord`] plugs into the transient analysis as a
//! [`JacobianSink`] and captures, per accepted step, the solution `x_n`,
//! step size `h_n`, and — depending on [`StoreConfig`] — the `G`/`C`
//! matrices:
//!
//! - [`StoreConfig::Recompute`] — store nothing; the reverse pass
//!   re-evaluates every device (Xyce-like; the `T_Jac` cost of Table 1).
//! - [`StoreConfig::RawMemory`] — keep raw value arrays (the memory wall of
//!   Fig. 1).
//! - [`StoreConfig::Disk`] — stream raw values through a file, optionally
//!   throttled to a target bandwidth. The throttle exists because a CI
//!   box's page cache would otherwise "read" at memory speed and hide the
//!   I/O wall the paper measures against a ~0.5 GB/s SSD.
//! - [`StoreConfig::Compressed`] — MASC in-memory compression
//!   (paper Algorithm 2).

use masc_circuit::transient::JacobianSink;
use masc_circuit::System;
use masc_compress::{CompressedTensor, MascConfig, TensorCompressor};
use masc_sparse::{CsrMatrix, Pattern};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which Jacobian storage strategy to use.
#[derive(Debug, Clone)]
pub enum StoreConfig {
    /// Recompute matrices during the reverse pass (store only states).
    Recompute,
    /// Keep raw matrices in memory.
    RawMemory,
    /// Stream raw matrices through a file.
    Disk {
        /// Directory for the spill file.
        dir: PathBuf,
        /// Simulated bandwidth in bytes/second (`None` = unthrottled).
        bandwidth: Option<f64>,
    },
    /// MASC in-memory compression.
    Compressed(MascConfig),
}

/// Errors from the disk-backed store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure in the spill file.
    Io(std::io::Error),
    /// A compressed block failed to decode.
    Compress(masc_compress::CompressError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "jacobian spill file: {e}"),
            StoreError::Compress(e) => write!(f, "jacobian decompression: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<masc_compress::CompressError> for StoreError {
    fn from(e: masc_compress::CompressError) -> Self {
        StoreError::Compress(e)
    }
}

/// How the per-step matrices are split into the two stored tensors.
///
/// `G` and `C` are gathered onto their own sub-patterns before storage so
/// the stored bytes are exactly the paper's `S_NZ` — no structural zeros
/// from the union pattern are stored or compressed.
#[derive(Debug, Clone)]
pub struct TensorLayout {
    /// The solver's union pattern.
    pub union: Arc<Pattern>,
    /// `G`'s own sub-pattern.
    pub g_pattern: Arc<Pattern>,
    /// `C`'s own sub-pattern.
    pub c_pattern: Arc<Pattern>,
    /// Union value index of each `G` sub-pattern non-zero.
    pub g_slots: Arc<Vec<usize>>,
    /// Union value index of each `C` sub-pattern non-zero.
    pub c_slots: Arc<Vec<usize>>,
}

impl TensorLayout {
    /// Extracts the layout from an elaborated system.
    pub fn of(system: &System) -> Self {
        Self {
            union: system.pattern.clone(),
            g_pattern: system.g_pattern.clone(),
            c_pattern: system.c_pattern.clone(),
            g_slots: system.g_slots.clone(),
            c_slots: system.c_slots.clone(),
        }
    }

    fn gather(slots: &[usize], union_values: &[f64]) -> Vec<f64> {
        slots.iter().map(|&s| union_values[s]).collect()
    }
}

/// Throttles a transfer to `bandwidth` bytes/second by sleeping off the
/// surplus.
fn throttle(bytes: usize, bandwidth: Option<f64>, elapsed: Duration) -> Duration {
    let Some(bw) = bandwidth else {
        return Duration::ZERO;
    };
    let target = Duration::from_secs_f64(bytes as f64 / bw);
    if target > elapsed {
        let sleep = target - elapsed;
        std::thread::sleep(sleep);
        sleep
    } else {
        Duration::ZERO
    }
}

enum Storage {
    Recompute,
    Raw {
        g: Vec<Vec<f64>>,
        c: Vec<Vec<f64>>,
    },
    Disk {
        file: File,
        path: PathBuf,
        offsets: Vec<u64>,
        bandwidth: Option<f64>,
    },
    Compressed {
        g: TensorCompressor,
        c: TensorCompressor,
    },
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Storage::Recompute => "Recompute",
            Storage::Raw { .. } => "Raw",
            Storage::Disk { .. } => "Disk",
            Storage::Compressed { .. } => "Compressed",
        };
        write!(f, "Storage::{name}")
    }
}

/// Captures everything the reverse pass needs from the forward sweep.
#[derive(Debug)]
pub struct ForwardRecord {
    layout: TensorLayout,
    /// Per step: time.
    pub times: Vec<f64>,
    /// Per step: step size `h_n` (index 0 unused).
    pub hs: Vec<f64>,
    /// Per step: solution vector.
    pub states: Vec<Vec<f64>>,
    storage: Storage,
    /// Time spent capturing/compressing/writing during the forward pass.
    pub store_time: Duration,
    /// Peak storage footprint observed (bytes).
    pub peak_bytes: usize,
}

impl ForwardRecord {
    /// Creates a record for the given tensor layout and store strategy.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the disk spill file cannot be created.
    pub fn new(layout: TensorLayout, config: &StoreConfig) -> Result<Self, StoreError> {
        let storage = match config {
            StoreConfig::Recompute => Storage::Recompute,
            StoreConfig::RawMemory => Storage::Raw {
                g: Vec::new(),
                c: Vec::new(),
            },
            StoreConfig::Disk { dir, bandwidth } => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("masc-jacobians-{}.bin", std::process::id()));
                let file = File::options()
                    .create(true)
                    .truncate(true)
                    .read(true)
                    .write(true)
                    .open(&path)?;
                Storage::Disk {
                    file,
                    path,
                    offsets: Vec::new(),
                    bandwidth: *bandwidth,
                }
            }
            StoreConfig::Compressed(masc) => Storage::Compressed {
                g: TensorCompressor::new(layout.g_pattern.clone(), masc.clone()),
                c: TensorCompressor::new(layout.c_pattern.clone(), masc.clone()),
            },
        };
        Ok(Self {
            layout,
            times: Vec::new(),
            hs: Vec::new(),
            states: Vec::new(),
            storage,
            store_time: Duration::ZERO,
            peak_bytes: 0,
        })
    }

    /// Number of recorded steps (including the DC point).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Current storage footprint in bytes (matrix data only).
    pub fn storage_bytes(&self) -> usize {
        match &self.storage {
            Storage::Recompute => 0,
            Storage::Raw { g, c } => {
                g.len() * self.layout.g_pattern.nnz() * 8
                    + c.len() * self.layout.c_pattern.nnz() * 8
            }
            Storage::Disk { offsets, .. } => offsets.last().copied().unwrap_or(0) as usize,
            Storage::Compressed { g, c } => g.memory_bytes() + c.memory_bytes(),
        }
    }

    /// Finalizes into a backward reader, discarding the run metadata
    /// (see [`ForwardRecord::into_parts`] to keep it).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the spill file cannot be rewound.
    pub fn into_reader(self) -> Result<BackwardJacobians, StoreError> {
        let (_, reader) = self.into_parts()?;
        Ok(reader)
    }

    /// Compressed-tensor view (only for [`StoreConfig::Compressed`] records;
    /// used by benchmarks to report ratios).
    pub fn compressed_tensors(self) -> Option<(CompressedTensor, CompressedTensor)> {
        match self.storage {
            Storage::Compressed { g, c } => Some((g.finish(), c.finish())),
            _ => None,
        }
    }

    /// Raw matrix histories, available only for [`StoreConfig::RawMemory`]
    /// records (the direct method consumes them in forward order).
    pub fn raw_matrices(&self) -> Option<(&[Vec<f64>], &[Vec<f64>])> {
        match &self.storage {
            Storage::Raw { g, c } => Some((g.as_slice(), c.as_slice())),
            _ => None,
        }
    }

    /// Splits the record into the run metadata (times, steps, states) and
    /// the backward matrix reader.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the spill file cannot be rewound.
    pub fn into_parts(mut self) -> Result<(RunMeta, BackwardJacobians), StoreError> {
        let meta = RunMeta {
            times: std::mem::take(&mut self.times),
            hs: std::mem::take(&mut self.hs),
            states: std::mem::take(&mut self.states),
        };
        let reader = {
            let g_nnz = self.layout.g_pattern.nnz();
            let c_nnz = self.layout.c_pattern.nnz();
            let reader = match self.storage {
                Storage::Recompute => ReaderImpl::Recompute,
                Storage::Raw { g, c } => ReaderImpl::Raw { g, c },
                Storage::Disk {
                    file,
                    path,
                    offsets,
                    bandwidth,
                } => ReaderImpl::Disk {
                    file,
                    path,
                    offsets,
                    bandwidth,
                },
                Storage::Compressed { g, c } => ReaderImpl::Compressed {
                    g: g.finish().into_backward(),
                    c: c.finish().into_backward(),
                },
            };
            BackwardJacobians {
                g_nnz,
                c_nnz,
                next_step: meta.times.len(),
                reader,
                fetch_time: Duration::ZERO,
                io_wait: Duration::ZERO,
            }
        };
        Ok((meta, reader))
    }
}

/// The per-step scalars and states of a forward run.
#[derive(Debug, Clone, Default)]
pub struct RunMeta {
    /// Time points.
    pub times: Vec<f64>,
    /// Step sizes (`hs[0]` unused).
    pub hs: Vec<f64>,
    /// Solution vectors.
    pub states: Vec<Vec<f64>>,
}

impl JacobianSink for ForwardRecord {
    fn on_step(&mut self, step: usize, t: f64, h: f64, x: &[f64], g: &CsrMatrix, c: &CsrMatrix) {
        debug_assert_eq!(step, self.times.len(), "steps must arrive in order");
        self.times.push(t);
        self.hs.push(h);
        self.states.push(x.to_vec());
        let start = Instant::now();
        if matches!(self.storage, Storage::Recompute) {
            self.store_time += start.elapsed();
            return;
        }
        // Gather each tensor's real non-zeros off the union pattern.
        let g_compact = TensorLayout::gather(&self.layout.g_slots, g.values());
        let c_compact = TensorLayout::gather(&self.layout.c_slots, c.values());
        match &mut self.storage {
            Storage::Recompute => unreachable!("handled above"),
            Storage::Raw { g: gs, c: cs } => {
                gs.push(g_compact);
                cs.push(c_compact);
            }
            Storage::Disk {
                file,
                offsets,
                bandwidth,
                ..
            } => {
                let mut write_all = |vals: &[f64]| -> std::io::Result<()> {
                    let mut buf = Vec::with_capacity(vals.len() * 8);
                    for v in vals {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                    let t0 = Instant::now();
                    file.write_all(&buf)?;
                    throttle(buf.len(), *bandwidth, t0.elapsed());
                    Ok(())
                };
                write_all(&g_compact).expect("jacobian spill write failed");
                write_all(&c_compact).expect("jacobian spill write failed");
                let prev = offsets.last().copied().unwrap_or(0);
                offsets.push(prev + (g_compact.len() + c_compact.len()) as u64 * 8);
            }
            Storage::Compressed { g: gt, c: ct } => {
                gt.push(&g_compact);
                ct.push(&c_compact);
            }
        }
        self.store_time += start.elapsed();
        self.peak_bytes = self.peak_bytes.max(self.storage_bytes());
    }
}

enum ReaderImpl {
    Recompute,
    Raw {
        g: Vec<Vec<f64>>,
        c: Vec<Vec<f64>>,
    },
    Disk {
        file: File,
        path: PathBuf,
        offsets: Vec<u64>,
        bandwidth: Option<f64>,
    },
    Compressed {
        g: masc_compress::BackwardDecompressor,
        c: masc_compress::BackwardDecompressor,
    },
}

/// One reverse-order step's matrices, or a request to recompute them.
#[derive(Debug, Clone, PartialEq)]
pub enum StepMatrices {
    /// The stored `G` and `C` value arrays in their *compact* sub-pattern
    /// form (scatter back with [`System::scatter_g`]/[`scatter_c`]).
    ///
    /// [`System::scatter_g`]: masc_circuit::System::scatter_g
    /// [`scatter_c`]: masc_circuit::System::scatter_c
    Stored {
        /// `G = ∂f/∂x` values over the `G` sub-pattern.
        g: Vec<f64>,
        /// `C = ∂q/∂x` values over the `C` sub-pattern.
        c: Vec<f64>,
    },
    /// Nothing stored — the caller must re-evaluate the devices at the
    /// recorded state (the Xyce-like baseline).
    Recompute,
}

/// Reverse-order reader over a [`ForwardRecord`]'s matrices.
#[derive(Debug)]
pub struct BackwardJacobians {
    g_nnz: usize,
    c_nnz: usize,
    next_step: usize,
    reader: ReaderImpl,
    /// Total time spent fetching (reading / decompressing).
    pub fetch_time: Duration,
    /// Portion of `fetch_time` spent in simulated I/O throttling.
    pub io_wait: Duration,
}

impl std::fmt::Debug for ReaderImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ReaderImpl::Recompute => "Recompute",
            ReaderImpl::Raw { .. } => "Raw",
            ReaderImpl::Disk { .. } => "Disk",
            ReaderImpl::Compressed { .. } => "Compressed",
        };
        write!(f, "ReaderImpl::{name}")
    }
}

impl BackwardJacobians {
    /// Creates a standalone recompute-mode reader (no stored matrices; the
    /// adjoint engine re-evaluates devices at every step). Used to run
    /// repeated reverse sweeps over one forward record, as a per-objective
    /// Xyce-like baseline does.
    pub fn recompute(steps: usize) -> Self {
        Self {
            g_nnz: 0,
            c_nnz: 0,
            next_step: steps,
            reader: ReaderImpl::Recompute,
            fetch_time: Duration::ZERO,
            io_wait: Duration::ZERO,
        }
    }

    /// Steps not yet fetched.
    pub fn remaining(&self) -> usize {
        self.next_step
    }

    /// Fetches the matrices of the next step in reverse order
    /// (`N, N−1, …, 0`). Returns `None` when exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O or decompression failure.
    pub fn next_back(&mut self) -> Result<Option<(usize, StepMatrices)>, StoreError> {
        if self.next_step == 0 {
            return Ok(None);
        }
        self.next_step -= 1;
        let step = self.next_step;
        let start = Instant::now();
        let matrices = match &mut self.reader {
            ReaderImpl::Recompute => StepMatrices::Recompute,
            ReaderImpl::Raw { g, c } => StepMatrices::Stored {
                g: g[step].clone(),
                c: c[step].clone(),
            },
            ReaderImpl::Disk {
                file,
                offsets,
                bandwidth,
                ..
            } => {
                let begin = if step == 0 { 0 } else { offsets[step - 1] };
                file.seek(SeekFrom::Start(begin))?;
                let len = (self.g_nnz + self.c_nnz) * 8;
                let mut buf = vec![0u8; len];
                let t0 = Instant::now();
                file.read_exact(&mut buf)?;
                self.io_wait += throttle(len, *bandwidth, t0.elapsed());
                let decode = |half: &[u8]| -> Vec<f64> {
                    half.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                        .collect()
                };
                let g = decode(&buf[..self.g_nnz * 8]);
                let c = decode(&buf[self.g_nnz * 8..]);
                StepMatrices::Stored { g, c }
            }
            ReaderImpl::Compressed { g, c } => {
                let (gs, gv) = g.next_matrix()?.expect("G tensor shorter than step count");
                let (cs, cv) = c.next_matrix()?.expect("C tensor shorter than step count");
                debug_assert_eq!(gs, step);
                debug_assert_eq!(cs, step);
                StepMatrices::Stored { g: gv, c: cv }
            }
        };
        self.fetch_time += start.elapsed();
        Ok(Some((step, matrices)))
    }

    /// Removes the disk spill file, if any. Called on drop as well.
    pub fn cleanup(&mut self) {
        if let ReaderImpl::Disk { path, .. } = &self.reader {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for BackwardJacobians {
    fn drop(&mut self) {
        self.cleanup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::TripletMatrix;

    fn pattern() -> Arc<Pattern> {
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            t.add(i, i, 1.0);
            if i > 0 {
                t.add(i, i - 1, 1.0);
                t.add(i - 1, i, 1.0);
            }
        }
        t.to_csr().pattern().clone()
    }

    /// A trivial layout where both tensors cover the whole union pattern.
    fn layout(p: &Arc<Pattern>) -> TensorLayout {
        let identity = Arc::new((0..p.nnz()).collect::<Vec<_>>());
        TensorLayout {
            union: p.clone(),
            g_pattern: p.clone(),
            c_pattern: p.clone(),
            g_slots: identity.clone(),
            c_slots: identity,
        }
    }

    fn feed(record: &mut ForwardRecord, pattern: &Arc<Pattern>, steps: usize) -> Vec<Vec<f64>> {
        let mut g_history = Vec::new();
        for s in 0..steps {
            let g_vals: Vec<f64> = (0..pattern.nnz())
                .map(|k| (s as f64) + (k as f64) * 0.1)
                .collect();
            let c_vals: Vec<f64> = (0..pattern.nnz()).map(|k| -(k as f64) - 1.0).collect();
            let g = CsrMatrix::from_parts(pattern.clone(), g_vals.clone()).unwrap();
            let c = CsrMatrix::from_parts(pattern.clone(), c_vals).unwrap();
            let x = vec![s as f64; 3];
            record.on_step(s, s as f64 * 1e-6, 1e-6, &x, &g, &c);
            g_history.push(g_vals);
        }
        g_history
    }

    fn check_backward(config: StoreConfig) {
        let p = pattern();
        let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
        let g_history = feed(&mut record, &p, 5);
        assert_eq!(record.len(), 5);
        let mut reader = record.into_reader().unwrap();
        let mut expect = 5usize;
        while let Some((step, matrices)) = reader.next_back().unwrap() {
            expect -= 1;
            assert_eq!(step, expect);
            match matrices {
                StepMatrices::Stored { g, .. } => assert_eq!(g, g_history[step]),
                StepMatrices::Recompute => {
                    assert!(matches!(config, StoreConfig::Recompute))
                }
            }
        }
        assert_eq!(expect, 0);
    }

    #[test]
    fn raw_memory_round_trip() {
        check_backward(StoreConfig::RawMemory);
    }

    #[test]
    fn recompute_yields_markers() {
        check_backward(StoreConfig::Recompute);
    }

    #[test]
    fn disk_round_trip() {
        check_backward(StoreConfig::Disk {
            dir: std::env::temp_dir().join("masc-test-disk"),
            bandwidth: None,
        });
    }

    #[test]
    fn compressed_round_trip() {
        check_backward(StoreConfig::Compressed(MascConfig::default()));
    }

    #[test]
    fn storage_bytes_ordering() {
        // Raw > Compressed > Recompute for a smooth series.
        let p = pattern();
        let mut sizes = Vec::new();
        for config in [
            StoreConfig::RawMemory,
            StoreConfig::Compressed(MascConfig::default()),
            StoreConfig::Recompute,
        ] {
            let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
            feed(&mut record, &p, 20);
            sizes.push(record.storage_bytes());
        }
        assert!(
            sizes[0] > sizes[1],
            "raw {} vs compressed {}",
            sizes[0],
            sizes[1]
        );
        assert_eq!(sizes[2], 0);
    }

    #[test]
    fn disk_throttle_slows_reads() {
        let p = pattern();
        let dir = std::env::temp_dir().join("masc-test-throttle");
        // ~50 kB/s: 5 steps × 2 × 7 nz × 8 B = 560 B → ≥ 10 ms total.
        let config = StoreConfig::Disk {
            dir,
            bandwidth: Some(50_000.0),
        };
        let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
        feed(&mut record, &p, 5);
        let mut reader = record.into_reader().unwrap();
        while reader.next_back().unwrap().is_some() {}
        assert!(
            reader.io_wait > Duration::from_millis(5),
            "expected throttling, waited {:?}",
            reader.io_wait
        );
    }

    #[test]
    fn spill_file_is_cleaned_up() {
        let p = pattern();
        let dir = std::env::temp_dir().join("masc-test-cleanup");
        let config = StoreConfig::Disk {
            dir: dir.clone(),
            bandwidth: None,
        };
        let mut record = ForwardRecord::new(layout(&p), &config).unwrap();
        feed(&mut record, &p, 2);
        let file = dir.join(format!("masc-jacobians-{}.bin", std::process::id()));
        assert!(file.exists());
        {
            let mut reader = record.into_reader().unwrap();
            reader.next_back().unwrap();
        } // drop
        assert!(!file.exists());
    }

    #[test]
    fn empty_record_reader() {
        let p = pattern();
        let record = ForwardRecord::new(layout(&p), &StoreConfig::RawMemory).unwrap();
        assert!(record.is_empty());
        let mut reader = record.into_reader().unwrap();
        assert!(reader.next_back().unwrap().is_none());
        assert_eq!(reader.remaining(), 0);
    }
}
