//! Direct (forward) sensitivity analysis — the classical baseline the
//! paper's introduction contrasts with the adjoint method.
//!
//! Differentiating the backward-Euler residual with respect to a parameter
//! `p` gives, for `s_n = dx_n/dp`:
//!
//! ```text
//! G₀ s₀ = −φ₀              (DC)
//! J_n s_n = C_{n−1} s_{n−1}/h_n − φ_n
//! dO/dp = Σ_n (∂O/∂x)_n · s_n
//! ```
//!
//! One linear solve per parameter per step (against the adjoint's one per
//! objective per step) — fine for few parameters, hopeless for many, which
//! is precisely why adjoint + MASC matters.

use crate::objective::Objective;
use crate::store::RunMeta;
use masc_circuit::{Circuit, ParamRef, System};
use masc_sparse::{CsrMatrix, LuError, LuWorkspace};

/// Errors from the direct method.
#[derive(Debug)]
pub enum DirectError {
    /// Factorization failed at a step.
    Lu {
        /// The failing step.
        step: usize,
        /// Underlying failure.
        source: LuError,
    },
    /// The record is empty.
    EmptyRecord,
}

impl std::fmt::Display for DirectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectError::Lu { step, source } => {
                write!(f, "direct sensitivity at step {step} failed: {source}")
            }
            DirectError::EmptyRecord => write!(f, "forward record is empty"),
        }
    }
}

impl std::error::Error for DirectError {}

/// Computes `dO_i/dp_j` by forward sensitivity propagation.
///
/// Matrices are re-evaluated from the recorded states (the direct method
/// needs them in *forward* order, so the backward stores don't apply).
///
/// # Errors
///
/// Returns [`DirectError`] if any step's matrix cannot be factored.
pub fn direct_sensitivities(
    circuit: &Circuit,
    system: &mut System,
    meta: &RunMeta,
    objectives: &[Objective],
    params: &[ParamRef],
) -> Result<Vec<Vec<f64>>, DirectError> {
    if meta.times.is_empty() {
        return Err(DirectError::EmptyRecord);
    }
    let n = system.n;
    let n_steps = meta.times.len() - 1;
    let n_par = params.len();
    let n_obj = objectives.len();

    let mut ev = system.new_evaluation();
    let mut j_mat = CsrMatrix::zeros(system.pattern.clone());
    let mut grad = vec![0.0f64; n];
    let mut dodp = vec![vec![0.0f64; n_par]; n_obj];

    // Parameter derivative scratch.
    let mut df = vec![0.0f64; n];
    let mut dq = vec![0.0f64; n];
    let mut db = vec![0.0f64; n];
    // dq/dp at the previous step, per parameter.
    let mut dq_prev: Vec<Vec<f64>> = vec![vec![0.0; n]; n_par];

    // --- DC step: G₀ s₀ = −(df + db).
    system.eval_into(circuit, &meta.states[0], meta.times[0], &mut ev);
    let mut g0 = CsrMatrix::zeros(system.pattern.clone());
    g0.values_mut().copy_from_slice(ev.g.values());
    let c_prev_values: Vec<f64> = ev.c.values().to_vec();
    // One symbolic analysis shared by the DC factor and every step's
    // J = G + C/h refactorization (same MNA pattern throughout).
    let mut lu_ws = LuWorkspace::new();
    let lu0 = lu_ws
        .factor(&g0)
        .map_err(|source| DirectError::Lu { step: 0, source })?;
    let mut s: Vec<Vec<f64>> = Vec::with_capacity(n_par);
    for (j, p) in params.iter().enumerate() {
        system.param_deriv_into(
            circuit,
            p,
            &meta.states[0],
            meta.times[0],
            &mut df,
            &mut dq,
            &mut db,
        );
        let rhs: Vec<f64> = (0..n).map(|r| -(df[r] + db[r])).collect();
        let s0 = lu0.solve(&rhs);
        dq_prev[j].copy_from_slice(&dq);
        s.push(s0);
    }
    for (i, objective) in objectives.iter().enumerate() {
        objective.gradient_into(0, n_steps, meta.hs[0], &meta.states[0], &mut grad);
        for (j, sj) in s.iter().enumerate() {
            dodp[i][j] += grad.iter().zip(sj).map(|(a, b)| a * b).sum::<f64>();
        }
    }

    // --- Transient steps.
    let mut c_prev = CsrMatrix::zeros(system.pattern.clone());
    c_prev.values_mut().copy_from_slice(&c_prev_values);
    for step in 1..=n_steps {
        let x = &meta.states[step];
        let t = meta.times[step];
        let h = meta.hs[step];
        system.eval_into(circuit, x, t, &mut ev);
        {
            let jv = j_mat.values_mut();
            jv.copy_from_slice(ev.g.values());
            for (jv, cv) in jv.iter_mut().zip(ev.c.values()) {
                *jv += cv / h;
            }
        }
        let lu = lu_ws
            .factor(&j_mat)
            .map_err(|source| DirectError::Lu { step, source })?;
        for (j, p) in params.iter().enumerate() {
            system.param_deriv_into(circuit, p, x, t, &mut df, &mut dq, &mut db);
            // rhs = C_{n−1} s_{n−1} / h − φ_n,
            // φ_n = (dq − dq_prev)/h + df + db.
            let c_s = c_prev.mul_vec(&s[j]);
            let rhs: Vec<f64> = (0..n)
                .map(|r| c_s[r] / h - ((dq[r] - dq_prev[j][r]) / h + df[r] + db[r]))
                .collect();
            s[j] = lu.solve(&rhs);
            dq_prev[j].copy_from_slice(&dq);
        }
        for (i, objective) in objectives.iter().enumerate() {
            objective.gradient_into(step, n_steps, h, x, &mut grad);
            for (j, sj) in s.iter().enumerate() {
                dodp[i][j] += grad.iter().zip(sj).map(|(a, b)| a * b).sum::<f64>();
            }
        }
        c_prev.values_mut().copy_from_slice(ev.c.values());
    }
    Ok(dodp)
}
