//! The adjoint sensitivity engine (paper eq. 4, Algorithm 2's reverse
//! half).
//!
//! With backward Euler, `G = ∂f/∂x`, `C = ∂q/∂x`, `J_n = C_n/h_n + G_n`,
//! and an objective `O = Σ_n ζ_n(x_n)` with per-step gradients
//! `g_n = (∂O/∂x)_n`, the reverse recursion is
//!
//! ```text
//! v_N = g_N
//! for n = N … 1:
//!     solve J_nᵀ w_n = v_n
//!     dO/dp −= w_nᵀ φ_n(p)        for every parameter p
//!     v_{n−1} = g_{n−1} + C_{n−1}ᵀ w_n / h_n
//! solve G_0ᵀ w_0 = v_0;  dO/dp −= w_0ᵀ φ_0(p)
//! ```
//!
//! with `φ_n(p) = (∂q/∂p(x_n) − ∂q/∂p(x_{n−1}))/h_n + ∂f/∂p(x_n) +
//! ∂b/∂p(t_n)` (paper eq. 5). One transpose solve per step per objective,
//! regardless of the parameter count — the reason adjoint beats the direct
//! method at scale.
//!
//! The matrices arrive through a [`BackwardJacobians`] reader in reverse
//! order, so the `C_{n−1}ᵀ w_n / h_n` term is *deferred*: each iteration
//! completes the previous iteration's pending update once the older step's
//! `C` becomes available.

use crate::objective::Objective;
use crate::store::{BackwardJacobians, RunMeta, StepMatrices, StoreError, StoreMetrics};
use masc_circuit::{Circuit, Evaluation, ParamRef, System};
use masc_sparse::{CsrMatrix, LuError, LuWorkspace};
use std::time::{Duration, Instant};

/// Errors from the adjoint pass.
#[derive(Debug)]
pub enum AdjointError {
    /// A Jacobian could not be factored.
    Lu {
        /// The step whose matrix failed.
        step: usize,
        /// Underlying factorization failure.
        source: LuError,
    },
    /// The Jacobian store failed.
    Store(StoreError),
    /// The record is empty (no forward run captured).
    EmptyRecord,
}

impl std::fmt::Display for AdjointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdjointError::Lu { step, source } => {
                write!(f, "adjoint solve at step {step} failed: {source}")
            }
            AdjointError::Store(e) => write!(f, "jacobian store failed: {e}"),
            AdjointError::EmptyRecord => write!(f, "forward record is empty"),
        }
    }
}

impl std::error::Error for AdjointError {}

impl From<StoreError> for AdjointError {
    fn from(e: StoreError) -> Self {
        AdjointError::Store(e)
    }
}

/// Timing breakdown of an adjoint pass (Fig. 7's bar segments).
#[derive(Debug, Clone, Default)]
pub struct AdjointStats {
    /// Steps traversed (including DC).
    pub steps: usize,
    /// Wall time of the whole reverse pass.
    pub total_time: Duration,
    /// Time factoring and solving transposed systems.
    pub lu_time: Duration,
    /// Time re-evaluating devices (non-zero only for the recompute store).
    pub recompute_time: Duration,
    /// Time evaluating parameter derivatives (`φ`).
    pub param_time: Duration,
    /// Unified store telemetry, forward pass included (bytes per tier,
    /// peak residency, compress/decompress/I/O/throttle time, per-step
    /// latency histograms).
    pub store: StoreMetrics,
}

/// The sensitivity matrix `dO_i/dp_j` plus run statistics.
#[derive(Debug, Clone)]
pub struct SensitivityResult {
    /// `values[i][j] = dO_i / dp_j`.
    pub values: Vec<Vec<f64>>,
    /// Statistics of the reverse pass.
    pub stats: AdjointStats,
}

/// The adjoint state flowing across a time-window boundary.
///
/// After a cursor has processed steps `hi .. lo` of a windowed reverse
/// pass, its deferred update — the solution vectors `w_lo` (one per
/// objective) and the step size `h_lo` they are scaled by — is exactly
/// what the *preceding* window needs as its terminal condition: injecting
/// `(ws, h)` into a fresh cursor via
/// [`AdjointCursor::inject_terminal`] makes that cursor's first offered
/// step compute `v = g + Cᵀ·w_lo/h_lo`, bit-identical to a monolithic
/// pass arriving at the same step. `masc-window` ships these across
/// window boundaries during its parallel-in-time reverse stitch.
#[derive(Debug, Clone)]
pub struct WindowTerminal {
    /// One transpose-solve solution per objective, at the lowest step the
    /// exporting cursor processed.
    pub ws: Vec<Vec<f64>>,
    /// The step size `h` of that lowest step (divides the `Cᵀw` term).
    pub h: f64,
}

/// Runs the adjoint reverse pass.
///
/// `meta`/`reader` come from [`crate::store::ForwardRecord::into_parts`];
/// `system` must be the elaborated system of `circuit` (mutable for the
/// recompute store's device re-evaluation).
///
/// # Errors
///
/// Returns [`AdjointError`] on factorization or store failure.
pub fn adjoint_sensitivities(
    circuit: &Circuit,
    system: &mut System,
    meta: &RunMeta,
    mut reader: BackwardJacobians,
    objectives: &[Objective],
    params: &[ParamRef],
) -> Result<SensitivityResult, AdjointError> {
    if meta.times.is_empty() {
        return Err(AdjointError::EmptyRecord);
    }
    let mut cursor = AdjointCursor::new(circuit, system, meta, objectives, params);
    while let Some((step, matrices)) = reader.next_back().map_err(AdjointError::from)? {
        cursor.offer(system, step, matrices)?;
    }
    let mut result = cursor.finish();
    result.stats.store = reader.metrics().clone();
    Ok(result)
}

/// The per-step reverse-recursion engine behind [`adjoint_sensitivities`].
///
/// A cursor owns everything one adjoint pass accumulates — the deferred
/// `C_{n-1}^T w_n / h_n` update, per-parameter derivative pools, the LU
/// workspace whose symbolic analysis is shared across all reverse steps,
/// and the running `dO/dp` matrix — while the *source* of each step's
/// matrices stays with the caller. [`adjoint_sensitivities`] feeds it from
/// a [`BackwardJacobians`] reader; `masc-sweep` feeds N cursors from the
/// per-timestep super-tensor blocks it decodes. Both drive the identical
/// arithmetic, which is what makes sweep results bit-comparable to
/// independent single runs.
///
/// Feed steps in strictly descending order (`n_steps` down to `0`) via
/// [`offer`], then call [`finish`].
///
/// [`offer`]: AdjointCursor::offer
/// [`finish`]: AdjointCursor::finish
pub struct AdjointCursor<'a> {
    circuit: &'a Circuit,
    meta: &'a RunMeta,
    objectives: &'a [Objective],
    params: &'a [ParamRef],
    n_steps: usize,
    start: Instant,
    stats: AdjointStats,
    dodp: Vec<Vec<f64>>,
    g_mat: CsrMatrix,
    c_mat: CsrMatrix,
    j_mat: CsrMatrix,
    ev: Evaluation,
    lu: LuWorkspace,
    pending_w: Option<Vec<Vec<f64>>>,
    pending_h: f64,
    /// Recycled solution buffers (and the container for them), so steady
    /// state allocates nothing per step.
    w_free: Vec<Vec<f64>>,
    w_spare: Vec<Vec<f64>>,
    pool_here: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)>,
    pool_prev: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)>,
    here_valid: bool,
    grad: Vec<f64>,
    v: Vec<f64>,
    solve_work: Vec<f64>,
    supports: Vec<Vec<usize>>,
}

impl<'a> AdjointCursor<'a> {
    /// Creates a cursor with a fresh LU workspace.
    pub fn new(
        circuit: &'a Circuit,
        system: &System,
        meta: &'a RunMeta,
        objectives: &'a [Objective],
        params: &'a [ParamRef],
    ) -> Self {
        Self::with_workspace(
            circuit,
            system,
            meta,
            objectives,
            params,
            LuWorkspace::new(),
        )
    }

    /// Creates a cursor around a caller-provided LU workspace — typically
    /// one seeded via [`masc_sparse::LuWorkspace::with_symbolic`] so N
    /// sweep instances share a single symbolic analysis.
    pub fn with_workspace(
        circuit: &'a Circuit,
        system: &System,
        meta: &'a RunMeta,
        objectives: &'a [Objective],
        params: &'a [ParamRef],
        lu: LuWorkspace,
    ) -> Self {
        let n = system.n;
        let n_par = params.len();
        // Parameter derivatives are device-local: precompute each
        // parameter's support (the unknowns its device touches) so the phi
        // dot products and scratch clearing cost O(device size), not O(n) —
        // with hundreds of parameters the dense path would dominate the
        // whole reverse pass.
        let supports: Vec<Vec<usize>> = params
            .iter()
            .map(|p| {
                circuit.devices()[p.device]
                    .unknowns()
                    .into_iter()
                    .flatten()
                    .collect()
            })
            .collect();
        let pool_here: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = (0..n_par)
            .map(|_| (vec![0.0; n], vec![0.0; n], vec![0.0; n]))
            .collect();
        Self {
            circuit,
            meta,
            objectives,
            params,
            n_steps: meta.times.len().saturating_sub(1),
            start: Instant::now(),
            stats: AdjointStats::default(),
            dodp: vec![vec![0.0f64; n_par]; objectives.len()],
            g_mat: CsrMatrix::zeros(system.pattern.clone()),
            c_mat: CsrMatrix::zeros(system.pattern.clone()),
            j_mat: CsrMatrix::zeros(system.pattern.clone()),
            ev: system.new_evaluation(),
            lu,
            pending_w: None,
            pending_h: 0.0,
            w_free: Vec::new(),
            w_spare: Vec::new(),
            pool_prev: pool_here.clone(),
            pool_here,
            here_valid: false,
            grad: vec![0.0f64; n],
            v: vec![0.0f64; n],
            solve_work: Vec::new(),
            supports,
        }
    }

    /// Processes one reverse step given its matrices.
    ///
    /// # Errors
    ///
    /// Returns [`AdjointError::Lu`] if the step's system matrix cannot be
    /// factored.
    pub fn offer(
        &mut self,
        system: &mut System,
        step: usize,
        matrices: StepMatrices,
    ) -> Result<(), AdjointError> {
        let meta = self.meta;
        let t = meta.times[step];
        let x = &meta.states[step];
        // Obtain G_step, C_step.
        match matrices {
            StepMatrices::Stored { g, c } => {
                system.scatter_g(&g, self.g_mat.values_mut());
                system.scatter_c(&c, self.c_mat.values_mut());
            }
            StepMatrices::Recompute => {
                let t0 = Instant::now();
                system.eval_into(self.circuit, x, t, &mut self.ev);
                self.g_mat.values_mut().copy_from_slice(self.ev.g.values());
                self.c_mat.values_mut().copy_from_slice(self.ev.c.values());
                self.stats.recompute_time += t0.elapsed();
            }
        }

        // Parameter derivatives at this step's state: left in `pool_here`
        // by the newer step's iteration, or computed fresh on the first.
        let t0 = Instant::now();
        if !self.here_valid {
            for (j, p) in self.params.iter().enumerate() {
                let (df, dq, db) = &mut self.pool_here[j];
                for &r in &self.supports[j] {
                    df[r] = 0.0;
                    dq[r] = 0.0;
                    db[r] = 0.0;
                }
                system.param_deriv_sparse_into(self.circuit, p, x, t, df, dq, db);
            }
            self.here_valid = true;
        }
        // Derivatives at the predecessor state (consumed as dq_{n-1} now,
        // becoming this-step derivatives after the pool swap below).
        if step > 0 {
            let xp = &meta.states[step - 1];
            let tp = meta.times[step - 1];
            for (j, p) in self.params.iter().enumerate() {
                let (df, dq, db) = &mut self.pool_prev[j];
                for &r in &self.supports[j] {
                    df[r] = 0.0;
                    dq[r] = 0.0;
                    db[r] = 0.0;
                }
                system.param_deriv_sparse_into(self.circuit, p, xp, tp, df, dq, db);
            }
        }
        self.stats.param_time += t0.elapsed();

        // Factor the step's system matrix. The workspace replays the
        // recorded pivot sequence values-only; every reverse step shares
        // the one symbolic analysis.
        let t0 = Instant::now();
        let factors = if step > 0 {
            let h = meta.hs[step];
            let jv = self.j_mat.values_mut();
            jv.copy_from_slice(self.g_mat.values());
            for (jv, cv) in jv.iter_mut().zip(self.c_mat.values()) {
                *jv += cv / h;
            }
            self.lu.factor(&self.j_mat)
        } else {
            self.lu.factor(&self.g_mat)
        }
        .map_err(|source| AdjointError::Lu { step, source })?;

        let mut w_now = std::mem::take(&mut self.w_spare);
        for (i, objective) in self.objectives.iter().enumerate() {
            // v_step = grad + C_step^T w_{step+1} / h_{step+1}.
            objective.gradient_into(step, self.n_steps, meta.hs[step], x, &mut self.grad);
            self.v.copy_from_slice(&self.grad);
            if let Some(ws) = &self.pending_w {
                let ct_w = self.c_mat.mul_vec_transpose(&ws[i]);
                for (vi, ci) in self.v.iter_mut().zip(&ct_w) {
                    *vi += ci / self.pending_h;
                }
            }
            let mut w = self.w_free.pop().unwrap_or_default();
            factors.solve_transpose_into(&self.v, &mut self.solve_work, &mut w);
            // Accumulate -w^T phi(p), summing only over each parameter's
            // support.
            let h = meta.hs[step];
            for (j, (df, dq, db)) in self.pool_here.iter().enumerate() {
                let mut acc = 0.0;
                if step > 0 {
                    let dq_prev = &self.pool_prev[j].1;
                    for &r in &self.supports[j] {
                        let phi = (dq[r] - dq_prev[r]) / h + df[r] + db[r];
                        acc += w[r] * phi;
                    }
                } else {
                    for &r in &self.supports[j] {
                        acc += w[r] * (df[r] + db[r]);
                    }
                }
                self.dodp[i][j] -= acc;
            }
            w_now.push(w);
        }
        self.stats.lu_time += t0.elapsed();

        if let Some(mut old) = self.pending_w.replace(w_now) {
            self.w_free.append(&mut old);
            self.w_spare = old;
        }
        self.pending_h = meta.hs[step];
        // The predecessor's derivatives become the next iteration's
        // "here" derivatives.
        std::mem::swap(&mut self.pool_here, &mut self.pool_prev);
        self.stats.steps += 1;
        Ok(())
    }

    /// Seeds the cursor with a terminal condition from a *newer* time
    /// window before its first [`offer`](AdjointCursor::offer).
    ///
    /// A monolithic pass starts from `v_N = g_N` (no pending update); a
    /// window-scoped pass over steps `hi .. lo` with `hi < N` must instead
    /// start from the deferred `Cᵀ·w/h` update the window to its right
    /// exported via [`finish_window`](AdjointCursor::finish_window). Call
    /// before the first offer; `ws` must hold one vector per objective.
    pub fn inject_terminal(&mut self, ws: Vec<Vec<f64>>, h: f64) {
        debug_assert_eq!(
            ws.len(),
            self.objectives.len(),
            "one terminal vector per objective"
        );
        debug_assert!(self.stats.steps == 0, "inject before the first offer");
        self.pending_w = Some(ws);
        self.pending_h = h;
    }

    /// Completes the pass, yielding the sensitivity matrix and statistics.
    pub fn finish(self) -> SensitivityResult {
        self.finish_window().0
    }

    /// Completes a window-scoped pass, yielding the sensitivities of the
    /// steps this cursor processed plus the outgoing terminal condition —
    /// the pending `(w, h)` pair at the lowest offered step, ready to be
    /// [injected](AdjointCursor::inject_terminal) into the cursor of the
    /// next-older window. `None` if no step was ever offered.
    pub fn finish_window(mut self) -> (SensitivityResult, Option<WindowTerminal>) {
        self.stats.total_time = self.start.elapsed();
        let terminal = self.pending_w.take().map(|ws| WindowTerminal {
            ws,
            h: self.pending_h,
        });
        (
            SensitivityResult {
                values: self.dodp,
                stats: self.stats,
            },
            terminal,
        )
    }
}

/// Runs the adjoint with one *separate reverse sweep per objective*,
/// re-evaluating the Jacobians on every sweep — the Xyce-like baseline of
/// paper Table 1 and Fig. 7.
///
/// This is how a conventional simulator without Jacobian storage behaves:
/// each objective's adjoint system is solved independently, and every
/// sweep pays the full device-evaluation and factorization cost again.
/// The paper's `T_Sens/T_Tran` ratios (which grow with the objective
/// count) and `T_Jac/T_Sens` fractions (~46–65 %) are properties of this
/// schedule; MASC amortizes one stored/decompressed matrix stream across
/// all objectives in a single sweep ([`adjoint_sensitivities`]).
///
/// # Errors
///
/// Returns [`AdjointError`] on factorization failure.
pub fn adjoint_sensitivities_per_objective(
    circuit: &Circuit,
    system: &mut System,
    meta: &RunMeta,
    objectives: &[Objective],
    params: &[ParamRef],
) -> Result<SensitivityResult, AdjointError> {
    let run_start = Instant::now();
    let mut values = Vec::with_capacity(objectives.len());
    let mut stats = AdjointStats::default();
    for objective in objectives {
        let reader = BackwardJacobians::recompute(meta.times.len());
        let result = adjoint_sensitivities(
            circuit,
            system,
            meta,
            reader,
            std::slice::from_ref(objective),
            params,
        )?;
        values.extend(result.values);
        stats.steps += result.stats.steps;
        stats.lu_time += result.stats.lu_time;
        stats.recompute_time += result.stats.recompute_time;
        stats.param_time += result.stats.param_time;
        stats.store.merge(&result.stats.store);
    }
    stats.total_time = run_start.elapsed();
    Ok(SensitivityResult { values, stats })
}
