//! Jacobian stores: an open, trait-based storage layer for the per-step
//! `G`/`C` tensors the adjoint reverse pass consumes (paper Fig. 7).
//!
//! A [`ForwardRecord`] plugs into the transient analysis as a
//! [`JacobianSink`] and captures, per accepted step, the solution `x_n`,
//! step size `h_n`, and — through a pluggable [`JacobianStore`] backend —
//! the `G`/`C` matrices. Five backends ship here, plus an asynchronous
//! wrapper:
//!
//! - [`RecomputeStore`] — store nothing; the reverse pass re-evaluates
//!   every device (Xyce-like; the `T_Jac` cost of Table 1).
//! - [`RawStore`] — keep raw value arrays (the memory wall of Fig. 1).
//! - [`DiskStore`] — stream raw values through a file, optionally
//!   throttled to a target bandwidth. The throttle exists because a CI
//!   box's page cache would otherwise "read" at memory speed and hide the
//!   I/O wall the paper measures against a ~0.5 GB/s SSD.
//! - [`CompressedStore`] — MASC in-memory compression (paper Algorithm 2).
//! - [`HybridStore`] — the most recent K *compressed* blocks stay in
//!   memory; older blocks spill to disk as compressed bytes, so the
//!   paper's compression ratio multiplies the effective disk bandwidth.
//! - [`PipelinedStore`] — wraps any backend, moving compression + spill
//!   I/O onto a worker thread behind a bounded queue and prefetching the
//!   reverse pass through a [`PrefetchReader`] (DESIGN.md §3.8).
//! - [`CaptureStore`] — compresses like [`CompressedStore`] but also
//!   clones the sealed tensor pair into a [`TensorSlot`] at `finish`, so
//!   callers (`masc-serve`'s cache, `masc-window`'s per-window records)
//!   keep the compressed artifact after the reverse pass consumed it.
//!
//! Custom backends implement [`JacobianStore`] + [`BackwardReader`] and
//! plug in through [`ForwardRecord::with_store`]. Every backend carries a
//! [`StoreMetrics`] with unified telemetry (bytes per tier, peak
//! residency, compress/decompress/I/O/throttle durations, per-step
//! latency histograms).

mod backends;
mod capture;
mod hybrid;
mod metrics;
mod pipelined;

pub use backends::{CompressedStore, DiskStore, FailingWriter, RawStore, RecomputeStore};
pub use capture::{CaptureStore, TensorSlot};
pub use hybrid::HybridStore;
pub use metrics::{DurationHistogram, StoreMetrics};
pub use pipelined::{PipelinedStore, PrefetchReader};

use masc_circuit::transient::{JacobianSink, SinkError};
use masc_circuit::System;
use masc_compress::MascConfig;
use masc_sparse::{CsrMatrix, Pattern};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which Jacobian storage strategy to use.
#[derive(Debug, Clone)]
pub enum StoreConfig {
    /// Recompute matrices during the reverse pass (store only states).
    Recompute,
    /// Keep raw matrices in memory.
    RawMemory,
    /// Stream raw matrices through a file.
    Disk {
        /// Directory for the spill file.
        dir: PathBuf,
        /// Simulated bandwidth in bytes/second (`None` = unthrottled).
        bandwidth: Option<f64>,
    },
    /// MASC in-memory compression.
    Compressed(MascConfig),
    /// Compressed in memory for the most recent `resident_blocks` steps,
    /// older compressed blocks spilled to disk.
    Hybrid {
        /// Directory for the spill file.
        dir: PathBuf,
        /// Simulated bandwidth in bytes/second (`None` = unthrottled).
        bandwidth: Option<f64>,
        /// Compressed blocks (per tensor) kept resident in memory.
        resident_blocks: usize,
        /// Compressor configuration.
        masc: MascConfig,
    },
    /// Any other backend behind an asynchronous pipeline: compression and
    /// spill I/O run on a worker thread fed by a bounded channel, and the
    /// reverse pass prefetches/decodes block `t − 1` while the adjoint
    /// solve consumes block `t`.
    Pipelined {
        /// The wrapped synchronous backend.
        inner: Box<StoreConfig>,
        /// Bounded channel capacity, in steps (`put` blocks when full —
        /// the backpressure that keeps memory bounded).
        queue_depth: usize,
        /// Reverse-pass prefetch window, in decoded steps.
        lookahead: usize,
        /// Encode worker threads. `1` is the classic single-worker
        /// pipeline; `> 1` runs a worker pool over the wrapped store's
        /// [`JacobianStore::encode_plan`] (blocks are encoded concurrently
        /// and committed in step order, so the stored bytes stay identical
        /// to the synchronous path). Stores without an encode plan fall
        /// back to the single worker.
        workers: usize,
    },
}

impl StoreConfig {
    /// A hybrid store with the default residency window.
    pub fn hybrid(dir: PathBuf, bandwidth: Option<f64>) -> Self {
        StoreConfig::Hybrid {
            dir,
            bandwidth,
            resident_blocks: 8,
            masc: MascConfig::default(),
        }
    }

    /// Wraps `inner` in the asynchronous pipeline with default bounds
    /// (double-buffered: a 2-step queue and a 2-step prefetch window).
    pub fn pipelined(inner: StoreConfig) -> Self {
        StoreConfig::Pipelined {
            inner: Box::new(inner),
            queue_depth: 2,
            lookahead: 2,
            workers: 1,
        }
    }

    /// Wraps `inner` in the asynchronous pipeline with a pool of `workers`
    /// encode threads (the queue grows with the pool so every worker can
    /// hold a job).
    pub fn pipelined_pool(inner: StoreConfig, workers: usize) -> Self {
        StoreConfig::Pipelined {
            inner: Box::new(inner),
            queue_depth: workers.max(1) + 1,
            lookahead: 2,
            workers,
        }
    }

    /// Builds the backend this configuration describes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if a spill file cannot be created.
    pub fn build(&self, layout: &TensorLayout) -> Result<Box<dyn JacobianStore>, StoreError> {
        Ok(match self {
            StoreConfig::Recompute => Box::new(RecomputeStore::new()),
            StoreConfig::RawMemory => Box::new(RawStore::new(
                layout.g_pattern.nnz(),
                layout.c_pattern.nnz(),
            )),
            StoreConfig::Disk { dir, bandwidth } => Box::new(DiskStore::create(
                dir,
                *bandwidth,
                layout.g_pattern.nnz(),
                layout.c_pattern.nnz(),
            )?),
            StoreConfig::Compressed(masc) => Box::new(CompressedStore::new(
                layout.g_pattern.clone(),
                layout.c_pattern.clone(),
                masc.clone(),
            )),
            StoreConfig::Hybrid {
                dir,
                bandwidth,
                resident_blocks,
                masc,
            } => Box::new(HybridStore::create(
                layout.g_pattern.clone(),
                layout.c_pattern.clone(),
                masc.clone(),
                dir,
                *bandwidth,
                *resident_blocks,
            )?),
            StoreConfig::Pipelined {
                inner,
                queue_depth,
                lookahead,
                workers,
            } => Box::new(PipelinedStore::spawn_pool(
                inner.build(layout)?,
                *queue_depth,
                *lookahead,
                *workers,
            )),
        })
    }
}

/// Errors from the Jacobian store layer.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure in the spill file.
    Io(std::io::Error),
    /// A compressed block failed to decode.
    Compress(masc_compress::CompressError),
    /// The stored tensor ended before the recorded step count.
    TensorTruncated {
        /// The step whose matrices were missing.
        step: usize,
    },
    /// The asynchronous pipeline worker failed while persisting a step
    /// that `put` had already accepted. `step` is the step the *worker*
    /// was persisting when it failed, which may be earlier than the step
    /// the forward loop had reached when the error surfaced.
    Worker {
        /// The step whose persist failed inside the worker.
        step: usize,
        /// The underlying store failure.
        source: Box<StoreError>,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "jacobian spill file: {e}"),
            StoreError::Compress(e) => write!(f, "jacobian decompression: {e}"),
            StoreError::TensorTruncated { step } => {
                write!(f, "jacobian tensor has no matrices for step {step}")
            }
            StoreError::Worker { step, source } => {
                write!(f, "pipeline worker failed at step {step}: {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Compress(e) => Some(e),
            StoreError::TensorTruncated { .. } => None,
            StoreError::Worker { source, .. } => Some(source.as_ref()),
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<masc_compress::CompressError> for StoreError {
    fn from(e: masc_compress::CompressError) -> Self {
        StoreError::Compress(e)
    }
}

/// How the per-step matrices are split into the two stored tensors.
///
/// `G` and `C` are gathered onto their own sub-patterns before storage so
/// the stored bytes are exactly the paper's `S_NZ` — no structural zeros
/// from the union pattern are stored or compressed.
#[derive(Debug, Clone)]
pub struct TensorLayout {
    /// The solver's union pattern.
    pub union: Arc<Pattern>,
    /// `G`'s own sub-pattern.
    pub g_pattern: Arc<Pattern>,
    /// `C`'s own sub-pattern.
    pub c_pattern: Arc<Pattern>,
    /// Union value index of each `G` sub-pattern non-zero.
    pub g_slots: Arc<Vec<usize>>,
    /// Union value index of each `C` sub-pattern non-zero.
    pub c_slots: Arc<Vec<usize>>,
}

impl TensorLayout {
    /// Extracts the layout from an elaborated system.
    pub fn of(system: &System) -> Self {
        Self {
            union: system.pattern.clone(),
            g_pattern: system.g_pattern.clone(),
            c_pattern: system.c_pattern.clone(),
            g_slots: system.g_slots.clone(),
            c_slots: system.c_slots.clone(),
        }
    }

    fn gather(slots: &[usize], union_values: &[f64]) -> Vec<f64> {
        // Slot maps are union indices computed at elaboration time and are
        // always in range for the union value vector.
        debug_assert!(slots.iter().all(|&s| s < union_values.len()));
        slots.iter().map(|&s| union_values[s]).collect()
    }
}

/// Throttles a transfer to `bandwidth` bytes/second by sleeping off the
/// surplus. Returns the simulated wait.
pub(crate) fn throttle(bytes: usize, bandwidth: Option<f64>, elapsed: Duration) -> Duration {
    let Some(bw) = bandwidth else {
        return Duration::ZERO;
    };
    let target = Duration::from_secs_f64(bytes as f64 / bw);
    if target > elapsed {
        let sleep = target - elapsed;
        std::thread::sleep(sleep);
        sleep
    } else {
        Duration::ZERO
    }
}

/// Everything a pipeline worker needs to encode one tensor's blocks
/// outside the store: the shared stamp maps and the codec configuration
/// (including its `seed_interval` schedule).
#[derive(Debug, Clone)]
pub struct TensorEncodePlan {
    /// Shared stamp maps over the tensor's pattern.
    pub maps: Arc<masc_compress::StampMaps>,
    /// Codec configuration the store would use internally.
    pub config: MascConfig,
}

impl TensorEncodePlan {
    /// Encodes block `step` (`values` against `reference`, or as a seed
    /// block when the config's seed schedule says so).
    pub fn encode(&self, step: usize, values: &[f64], reference: &[f64]) -> EncodedBlock {
        let (bytes, stats) = if self.config.is_seed_step(step) {
            masc_compress::encode_seed_block(values, &self.maps, &self.config)
        } else {
            masc_compress::encode_block(values, reference, &self.maps, &self.config)
        };
        EncodedBlock { bytes, stats }
    }

    /// Encodes block `step` as the tensor's final seed block (what the
    /// store's internal `seal` would produce).
    pub fn encode_seed(&self, values: &[f64]) -> EncodedBlock {
        let (bytes, stats) = masc_compress::encode_seed_block(values, &self.maps, &self.config);
        EncodedBlock { bytes, stats }
    }
}

/// A store's offer to have block encoding done by an external worker pool
/// (see [`JacobianStore::encode_plan`]).
#[derive(Debug, Clone)]
pub struct EncodePlan {
    /// Plan for the `G` tensor.
    pub g: TensorEncodePlan,
    /// Plan for the `C` tensor.
    pub c: TensorEncodePlan,
}

/// One tensor block encoded out-of-band, with its encoder statistics.
#[derive(Debug, Clone)]
pub struct EncodedBlock {
    /// The compressed stream.
    pub bytes: Vec<u8>,
    /// Statistics from encoding this block.
    pub stats: masc_compress::CompressStats,
}

/// One reverse-order step's matrices, or a request to recompute them.
#[derive(Debug, Clone, PartialEq)]
pub enum StepMatrices {
    /// The stored `G` and `C` value arrays in their *compact* sub-pattern
    /// form (scatter back with [`System::scatter_g`]/[`scatter_c`]).
    ///
    /// [`System::scatter_g`]: masc_circuit::System::scatter_g
    /// [`scatter_c`]: masc_circuit::System::scatter_c
    Stored {
        /// `G = ∂f/∂x` values over the `G` sub-pattern.
        g: Vec<f64>,
        /// `C = ∂q/∂x` values over the `C` sub-pattern.
        c: Vec<f64>,
    },
    /// Nothing stored — the caller must re-evaluate the devices at the
    /// recorded state (the Xyce-like baseline).
    Recompute,
}

/// A forward-pass Jacobian storage backend.
///
/// The transient sink feeds each accepted step's compact `G`/`C` value
/// arrays through [`put`](Self::put); [`finish`](Self::finish) seals the
/// store into a [`BackwardReader`] that replays the matrices newest-first.
/// Implementations own a [`StoreMetrics`] and account their tier traffic
/// (bytes, compress/I/O/throttle time) into it; the generic wrapper
/// ([`ForwardRecord`]) adds the per-step timing histograms and the
/// residency watermark.
pub trait JacobianStore: std::fmt::Debug + Send {
    /// Whether the store wants the matrix values at all (the recompute
    /// backend skips the gather entirely).
    fn wants_matrices(&self) -> bool {
        true
    }

    /// Accepts step `step`'s compact `G`/`C` value arrays.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the step cannot be persisted.
    fn put(&mut self, step: usize, g: &[f64], c: &[f64]) -> Result<(), StoreError>;

    /// A plan for encoding blocks *outside* the store, or `None` (the
    /// default) when the store only encodes internally in [`put`](Self::put).
    /// A store that returns a plan promises that feeding it blocks through
    /// [`put_encoded`](Self::put_encoded) — encoded per the plan, committed
    /// in step order, with the final step as a seed block — produces the
    /// same stored bytes as the equivalent `put` sequence.
    fn encode_plan(&self) -> Option<EncodePlan> {
        None
    }

    /// Accepts block `step` pre-encoded by an external worker following
    /// [`encode_plan`](Self::encode_plan). Blocks must arrive in step
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the block cannot be persisted; the
    /// default (for stores without an encode plan) always errors.
    fn put_encoded(
        &mut self,
        step: usize,
        g: EncodedBlock,
        c: EncodedBlock,
    ) -> Result<(), StoreError> {
        let _ = (step, g, c);
        Err(StoreError::Io(std::io::Error::other(
            "store does not accept externally encoded blocks",
        )))
    }

    /// Blocks until every step accepted so far is durably persisted.
    /// Synchronous backends are always caught up; the pipelined adapter
    /// drains its queue here so a deferred persist failure surfaces
    /// before the forward pass completes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] (typically [`StoreError::Worker`]) if a
    /// previously accepted step failed to persist.
    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    /// Current storage footprint in bytes (matrix data only, all tiers).
    fn resident_bytes(&self) -> usize;

    /// Telemetry accumulated so far.
    fn metrics(&self) -> &StoreMetrics;

    /// Mutable telemetry (the sink wrapper records put latencies here).
    fn metrics_mut(&mut self) -> &mut StoreMetrics;

    /// Seals the store into a newest-first reader. The reader inherits
    /// this store's metrics and keeps accumulating into them.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if finalization I/O fails.
    fn finish(self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError>;

    /// Runtime-typed view, for backend-specific accessors
    /// (e.g. [`ForwardRecord::raw_matrices`]).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Reverse-order matrix supplier for one finished [`JacobianStore`].
///
/// [`fetch`](Self::fetch) is called with strictly decreasing step indices
/// (`N, N−1, …, 0`), matching the adjoint recursion's access order.
pub trait BackwardReader: std::fmt::Debug + Send {
    /// Produces step `step`'s matrices (or a recompute marker).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O or decode failure, and
    /// [`StoreError::TensorTruncated`] when the store holds fewer
    /// matrices than the recorded step count.
    fn fetch(&mut self, step: usize) -> Result<StepMatrices, StoreError>;

    /// Telemetry, forward pass included.
    fn metrics(&self) -> &StoreMetrics;

    /// Mutable telemetry (the reader wrapper records fetch latencies).
    fn metrics_mut(&mut self) -> &mut StoreMetrics;

    /// Releases external resources early (spill files are also removed on
    /// drop).
    fn cleanup(&mut self) {}
}

/// Captures everything the reverse pass needs from the forward sweep.
#[derive(Debug)]
pub struct ForwardRecord {
    layout: TensorLayout,
    /// Per step: time.
    pub times: Vec<f64>,
    /// Per step: step size `h_n` (index 0 unused).
    pub hs: Vec<f64>,
    /// Per step: solution vector.
    pub states: Vec<Vec<f64>>,
    store: Box<dyn JacobianStore>,
}

impl ForwardRecord {
    /// Creates a record for the given tensor layout and store strategy.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if a disk spill file cannot be created.
    pub fn new(layout: TensorLayout, config: &StoreConfig) -> Result<Self, StoreError> {
        let store = config.build(&layout)?;
        Ok(Self::with_store(layout, store))
    }

    /// Creates a record over a custom [`JacobianStore`] backend — the
    /// extension point for stores this crate does not ship.
    pub fn with_store(layout: TensorLayout, store: Box<dyn JacobianStore>) -> Self {
        Self {
            layout,
            times: Vec::new(),
            hs: Vec::new(),
            states: Vec::new(),
            store,
        }
    }

    /// Number of recorded steps (including the DC point).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Current storage footprint in bytes (matrix data only).
    pub fn storage_bytes(&self) -> usize {
        self.store.resident_bytes()
    }

    /// Telemetry accumulated during the forward pass.
    pub fn metrics(&self) -> &StoreMetrics {
        self.store.metrics()
    }

    /// Raw matrix histories, available only for [`StoreConfig::RawMemory`]
    /// records (the direct method consumes them in forward order).
    pub fn raw_matrices(&self) -> Option<RawSeries<'_>> {
        self.store
            .as_any()
            .downcast_ref::<RawStore>()
            .map(RawStore::series)
    }

    /// Finalizes into a backward reader, discarding the run metadata
    /// (see [`ForwardRecord::into_parts`] to keep it).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the store cannot be sealed.
    pub fn into_reader(self) -> Result<BackwardJacobians, StoreError> {
        let (_, reader) = self.into_parts()?;
        Ok(reader)
    }

    /// Splits the record into the run metadata (times, steps, states) and
    /// the backward matrix reader.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the store cannot be sealed.
    pub fn into_parts(mut self) -> Result<(RunMeta, BackwardJacobians), StoreError> {
        let meta = RunMeta {
            times: std::mem::take(&mut self.times),
            hs: std::mem::take(&mut self.hs),
            states: std::mem::take(&mut self.states),
        };
        let steps = meta.times.len();
        let reader = self.store.finish()?;
        Ok((
            meta,
            BackwardJacobians {
                next_step: steps,
                reader,
            },
        ))
    }
}

/// Borrowed forward-order `G` and `C` value histories of a raw store.
pub type RawSeries<'a> = (&'a [Vec<f64>], &'a [Vec<f64>]);

/// The per-step scalars and states of a forward run.
#[derive(Debug, Clone, Default)]
pub struct RunMeta {
    /// Time points.
    pub times: Vec<f64>,
    /// Step sizes (`hs[0]` unused).
    pub hs: Vec<f64>,
    /// Solution vectors.
    pub states: Vec<Vec<f64>>,
}

impl JacobianSink for ForwardRecord {
    fn on_step(
        &mut self,
        step: usize,
        t: f64,
        h: f64,
        x: &[f64],
        g: &CsrMatrix,
        c: &CsrMatrix,
    ) -> Result<(), SinkError> {
        debug_assert_eq!(step, self.times.len(), "steps must arrive in order");
        self.times.push(t);
        self.hs.push(h);
        self.states.push(x.to_vec());
        let start = Instant::now();
        let result = if self.store.wants_matrices() {
            // Gather each tensor's real non-zeros off the union pattern.
            let g_compact = TensorLayout::gather(&self.layout.g_slots, g.values());
            let c_compact = TensorLayout::gather(&self.layout.c_slots, c.values());
            self.store.put(step, &g_compact, &c_compact)
        } else {
            self.store.put(step, &[], &[])
        };
        let elapsed = start.elapsed();
        result.map_err(SinkError::new)?;
        let resident = self.store.resident_bytes();
        let m = self.store.metrics_mut();
        m.record_put(elapsed);
        m.note_resident(resident);
        Ok(())
    }

    fn on_finish(&mut self) -> Result<(), SinkError> {
        self.store.sync().map_err(SinkError::new)
    }
}

/// Reverse-order reader over a [`ForwardRecord`]'s matrices.
#[derive(Debug)]
pub struct BackwardJacobians {
    next_step: usize,
    reader: Box<dyn BackwardReader>,
}

impl BackwardJacobians {
    /// Creates a standalone recompute-mode reader (no stored matrices; the
    /// adjoint engine re-evaluates devices at every step). Used to run
    /// repeated reverse sweeps over one forward record, as a per-objective
    /// Xyce-like baseline does.
    pub fn recompute(steps: usize) -> Self {
        Self {
            next_step: steps,
            reader: backends::recompute_reader(),
        }
    }

    /// Steps not yet fetched.
    pub fn remaining(&self) -> usize {
        self.next_step
    }

    /// Telemetry, forward pass included.
    pub fn metrics(&self) -> &StoreMetrics {
        self.reader.metrics()
    }

    /// Fetches the matrices of the next step in reverse order
    /// (`N, N−1, …, 0`). Returns `None` when exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O or decompression failure.
    pub fn next_back(&mut self) -> Result<Option<(usize, StepMatrices)>, StoreError> {
        if self.next_step == 0 {
            return Ok(None);
        }
        self.next_step -= 1;
        let step = self.next_step;
        let start = Instant::now();
        let matrices = self.reader.fetch(step)?;
        self.reader.metrics_mut().record_fetch(start.elapsed());
        Ok(Some((step, matrices)))
    }

    /// Removes the disk spill file, if any. Called on drop as well.
    pub fn cleanup(&mut self) {
        self.reader.cleanup();
    }
}

impl Drop for BackwardJacobians {
    fn drop(&mut self) {
        self.cleanup();
    }
}
