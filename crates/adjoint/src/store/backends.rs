//! The four standard [`JacobianStore`] backends (the fifth, hybrid, lives
//! in [`super::hybrid`]): recompute, raw in-memory, raw on-disk, and MASC
//! in-memory compression — the bars of the paper's Fig. 7.

use super::{
    throttle, BackwardReader, EncodePlan, EncodedBlock, JacobianStore, RawSeries, StepMatrices,
    StoreError, StoreMetrics, TensorEncodePlan,
};
use masc_compress::{BackwardDecompressor, MascConfig, TensorCompressor};
use masc_sparse::Pattern;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Process-wide counter so concurrent records in one directory never
/// collide on a spill filename.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// An owned spill file that removes itself from disk when dropped —
/// whichever side holds it last (a store abandoned on the error path, or
/// the backward reader after the reverse sweep) cleans up.
#[derive(Debug)]
pub(super) struct SpillFile {
    file: File,
    path: PathBuf,
}

/// Extracts the owning pid from a spill filename of the form
/// `masc-jacobians-{pid}-{seq}.bin`; any other name yields `None`.
fn spill_owner(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("masc-jacobians-")?;
    let rest = rest.strip_suffix(".bin")?;
    let (pid, seq) = rest.split_once('-')?;
    if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    pid.parse::<u64>().ok()
}

/// Removes spill files stranded in `dir` by processes that died before
/// their [`SpillFile`] drop could run (a SIGKILL mid-run leaks the file —
/// nothing else ever reclaims it, so spill directories grow without
/// bound). A file is reclaimed only when its owning pid is provably dead
/// (its `/proc/<pid>` entry is gone); files of this process, of any live
/// pid, or on systems without procfs are never touched, so a concurrent
/// run's spill is never at risk. Best-effort: I/O failures are ignored.
pub(super) fn scavenge_stale_spills(dir: &Path) {
    let procfs = Path::new("/proc");
    if !procfs.is_dir() {
        return;
    }
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let own = u64::from(std::process::id());
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pid) = spill_owner(name) else {
            continue;
        };
        if pid == own || procfs.join(pid.to_string()).exists() {
            continue;
        }
        let _ = std::fs::remove_file(entry.path());
    }
}

impl SpillFile {
    /// Creates a uniquely named spill file in `dir`
    /// (`masc-jacobians-{pid}-{seq}.bin`), scavenging any spill files
    /// stranded there by dead processes first.
    pub(super) fn create_in(dir: &Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        scavenge_stale_spills(dir);
        let seq = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("masc-jacobians-{}-{seq}.bin", std::process::id()));
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        Ok(Self { file, path })
    }

    pub(super) fn file(&mut self) -> &mut File {
        &mut self.file
    }

    /// A second writable handle onto the same file (shares the cursor; the
    /// reader always seeks absolutely, so this is safe).
    pub(super) fn clone_handle(&self) -> Result<File, StoreError> {
        Ok(self.file.try_clone()?)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Encodes `values` as little-endian f64 bytes.
fn to_le_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes little-endian f64 bytes (whole 8-byte words only).
fn from_le_bytes(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|b| {
            let mut word = [0u8; 8];
            word.copy_from_slice(b);
            f64::from_le_bytes(word)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Recompute
// ---------------------------------------------------------------------------

/// Stores nothing; every reverse-pass step re-evaluates the devices
/// (the Xyce-like baseline — `T_Jac` of paper Table 1).
#[derive(Debug, Default)]
pub struct RecomputeStore {
    metrics: StoreMetrics,
}

impl RecomputeStore {
    /// Creates the (stateless) recompute store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl JacobianStore for RecomputeStore {
    fn wants_matrices(&self) -> bool {
        false
    }

    fn put(&mut self, _step: usize, _g: &[f64], _c: &[f64]) -> Result<(), StoreError> {
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        0
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn finish(self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError> {
        Ok(Box::new(RecomputeReader {
            metrics: self.metrics,
        }))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[derive(Debug, Default)]
struct RecomputeReader {
    metrics: StoreMetrics,
}

/// A standalone recompute-mode reader (no stored matrices).
pub(super) fn recompute_reader() -> Box<dyn BackwardReader> {
    Box::new(RecomputeReader::default())
}

impl BackwardReader for RecomputeReader {
    fn fetch(&mut self, _step: usize) -> Result<StepMatrices, StoreError> {
        Ok(StepMatrices::Recompute)
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }
}

// ---------------------------------------------------------------------------
// Raw in-memory
// ---------------------------------------------------------------------------

/// Keeps every step's raw value arrays in memory (the memory wall of
/// paper Fig. 1).
#[derive(Debug)]
pub struct RawStore {
    g: Vec<Vec<f64>>,
    c: Vec<Vec<f64>>,
    bytes: usize,
    metrics: StoreMetrics,
}

impl RawStore {
    /// Creates a raw store; nnz hints pre-size nothing but document shape.
    pub fn new(_g_nnz: usize, _c_nnz: usize) -> Self {
        Self {
            g: Vec::new(),
            c: Vec::new(),
            bytes: 0,
            metrics: StoreMetrics::default(),
        }
    }

    /// The stored `G` and `C` histories in forward order (the direct
    /// method consumes these).
    pub fn series(&self) -> RawSeries<'_> {
        (&self.g, &self.c)
    }
}

impl JacobianStore for RawStore {
    fn put(&mut self, _step: usize, g: &[f64], c: &[f64]) -> Result<(), StoreError> {
        let bytes = (g.len() + c.len()) * 8;
        self.g.push(g.to_vec());
        self.c.push(c.to_vec());
        self.bytes += bytes;
        self.metrics.bytes_written += bytes as u64;
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        self.bytes
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn finish(self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError> {
        Ok(Box::new(RawReader {
            g: self.g,
            c: self.c,
            metrics: self.metrics,
        }))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[derive(Debug)]
struct RawReader {
    g: Vec<Vec<f64>>,
    c: Vec<Vec<f64>>,
    metrics: StoreMetrics,
}

impl BackwardReader for RawReader {
    fn fetch(&mut self, step: usize) -> Result<StepMatrices, StoreError> {
        // Steps arrive strictly decreasing, so popping frees each step's
        // memory as soon as it is consumed.
        match (self.g.pop(), self.c.pop()) {
            (Some(g), Some(c)) if self.g.len() == step => Ok(StepMatrices::Stored { g, c }),
            _ => Err(StoreError::TensorTruncated { step }),
        }
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }
}

// ---------------------------------------------------------------------------
// Raw on-disk
// ---------------------------------------------------------------------------

/// Number of steps the backward reader pulls off disk per read: one seek +
/// one `read` per 16 steps instead of per step.
const CHUNK_STEPS: usize = 16;

/// Streams raw value arrays through a spill file, optionally throttled to
/// a simulated bandwidth (the page cache on a CI box would otherwise hide
/// the I/O wall the paper measures against a ~0.5 GB/s SSD).
pub struct DiskStore {
    spill: SpillFile,
    writer: Box<dyn Write + Send>,
    g_nnz: usize,
    c_nnz: usize,
    steps: usize,
    bandwidth: Option<f64>,
    metrics: StoreMetrics,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("spill", &self.spill)
            .field("steps", &self.steps)
            .field("bandwidth", &self.bandwidth)
            .finish_non_exhaustive()
    }
}

impl DiskStore {
    /// Creates the spill file in `dir` and an empty store over it.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the spill file cannot be created.
    pub fn create(
        dir: &Path,
        bandwidth: Option<f64>,
        g_nnz: usize,
        c_nnz: usize,
    ) -> Result<Self, StoreError> {
        let spill = SpillFile::create_in(dir)?;
        let writer: Box<dyn Write + Send> = Box::new(spill.clone_handle()?);
        Ok(Self {
            spill,
            writer,
            g_nnz,
            c_nnz,
            steps: 0,
            bandwidth,
            metrics: StoreMetrics::default(),
        })
    }

    /// Replaces the store's writer with a wrapped version of itself —
    /// the fault-injection hook (see [`FailingWriter`]).
    pub fn wrap_writer(
        &mut self,
        wrap: impl FnOnce(Box<dyn Write + Send>) -> Box<dyn Write + Send>,
    ) {
        let inner = std::mem::replace(&mut self.writer, Box::new(std::io::sink()));
        self.writer = wrap(inner);
    }
}

impl JacobianStore for DiskStore {
    fn put(&mut self, _step: usize, g: &[f64], c: &[f64]) -> Result<(), StoreError> {
        let payload = {
            let mut bytes = to_le_bytes(g);
            bytes.extend_from_slice(&to_le_bytes(c));
            bytes
        };
        let start = Instant::now();
        self.writer.write_all(&payload)?;
        let io = start.elapsed();
        self.metrics.io_time += io;
        self.metrics.throttle_wait += throttle(payload.len(), self.bandwidth, io);
        self.metrics.bytes_written += payload.len() as u64;
        self.steps += 1;
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        // All bytes live on disk; nothing raw is resident in memory.
        self.metrics.bytes_written as usize
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn finish(mut self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError> {
        self.writer.flush()?;
        Ok(Box::new(DiskReader {
            spill: Some(self.spill),
            g_nnz: self.g_nnz,
            c_nnz: self.c_nnz,
            steps: self.steps,
            bandwidth: self.bandwidth,
            chunk: Vec::new(),
            chunk_lo: 0,
            chunk_hi: 0,
            metrics: self.metrics,
        }))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[derive(Debug)]
struct DiskReader {
    spill: Option<SpillFile>,
    g_nnz: usize,
    c_nnz: usize,
    steps: usize,
    bandwidth: Option<f64>,
    /// Raw bytes of steps `chunk_lo..chunk_hi`, read with one seek+read.
    chunk: Vec<u8>,
    chunk_lo: usize,
    chunk_hi: usize,
    metrics: StoreMetrics,
}

impl DiskReader {
    fn step_len(&self) -> usize {
        (self.g_nnz + self.c_nnz) * 8
    }

    /// Loads the chunk of up to [`CHUNK_STEPS`] steps ending at `step`
    /// (inclusive) — the steps the reverse sweep will ask for next.
    fn load_chunk(&mut self, step: usize) -> Result<(), StoreError> {
        let step_len = self.step_len();
        let lo = (step + 1).saturating_sub(CHUNK_STEPS);
        let hi = step + 1;
        let len = (hi - lo).min(CHUNK_STEPS) * step_len;
        let spill = self
            .spill
            .as_mut()
            .ok_or_else(|| StoreError::Io(std::io::Error::other("spill file already removed")))?;
        let mut buf = vec![0u8; len];
        let start = Instant::now();
        let file = spill.file();
        file.seek(SeekFrom::Start((lo * step_len) as u64))?;
        file.read_exact(&mut buf)?;
        let io = start.elapsed();
        self.metrics.io_time += io;
        // The throttle target is linear in bytes, so chunked reads keep the
        // simulated-bandwidth accounting identical to per-step reads.
        self.metrics.throttle_wait += throttle(len, self.bandwidth, io);
        self.metrics.bytes_read += len as u64;
        self.chunk = buf;
        self.chunk_lo = lo;
        self.chunk_hi = hi;
        Ok(())
    }
}

impl BackwardReader for DiskReader {
    fn fetch(&mut self, step: usize) -> Result<StepMatrices, StoreError> {
        if step >= self.steps {
            return Err(StoreError::TensorTruncated { step });
        }
        if step < self.chunk_lo || step >= self.chunk_hi {
            self.load_chunk(step)?;
        }
        let step_len = self.step_len();
        let offset = (step - self.chunk_lo) * step_len;
        let record = self
            .chunk
            .get(offset..offset + step_len)
            .ok_or(StoreError::TensorTruncated { step })?;
        let (g_bytes, c_bytes) = record.split_at(self.g_nnz * 8);
        Ok(StepMatrices::Stored {
            g: from_le_bytes(g_bytes),
            c: from_le_bytes(c_bytes),
        })
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn cleanup(&mut self) {
        self.spill = None;
        self.chunk = Vec::new();
    }
}

/// A [`Write`] wrapper that fails with an I/O error once `allow_bytes`
/// bytes have passed through — fault injection for the disk store's error
/// path (install with [`DiskStore::wrap_writer`]).
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    remaining: usize,
}

impl<W> FailingWriter<W> {
    /// Wraps `inner`, allowing `allow_bytes` bytes before failing.
    pub fn new(inner: W, allow_bytes: usize) -> Self {
        Self {
            inner,
            remaining: allow_bytes,
        }
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.len() > self.remaining {
            return Err(std::io::Error::other("injected disk-full fault"));
        }
        self.remaining -= buf.len();
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// MASC compressed, in memory
// ---------------------------------------------------------------------------

/// MASC in-memory compression: two streaming [`TensorCompressor`]s (one
/// per tensor) sharing the paper's one-step-late compression schedule.
#[derive(Debug)]
pub struct CompressedStore {
    g: TensorCompressor,
    c: TensorCompressor,
    /// Sealed blocks already counted into `metrics.bytes_written`.
    g_accounted: usize,
    c_accounted: usize,
    metrics: StoreMetrics,
}

impl CompressedStore {
    /// Creates a compressed store over the two tensor sub-patterns.
    pub fn new(g_pattern: Arc<Pattern>, c_pattern: Arc<Pattern>, config: MascConfig) -> Self {
        Self {
            g: TensorCompressor::new(g_pattern, config.clone()),
            c: TensorCompressor::new(c_pattern, config),
            g_accounted: 0,
            c_accounted: 0,
            metrics: StoreMetrics::default(),
        }
    }

    /// Counts freshly sealed compressed blocks into `bytes_written`.
    fn account_sealed(&mut self) {
        while self.g_accounted < self.g.sealed_len() {
            let len = self
                .g
                .compressed_block(self.g_accounted)
                .map_or(0, <[u8]>::len);
            self.metrics.bytes_written += len as u64;
            self.g_accounted += 1;
        }
        while self.c_accounted < self.c.sealed_len() {
            let len = self
                .c
                .compressed_block(self.c_accounted)
                .map_or(0, <[u8]>::len);
            self.metrics.bytes_written += len as u64;
            self.c_accounted += 1;
        }
        self.metrics.compress_time = self.g.compress_time() + self.c.compress_time();
    }
}

impl JacobianStore for CompressedStore {
    fn put(&mut self, _step: usize, g: &[f64], c: &[f64]) -> Result<(), StoreError> {
        self.g.push(g);
        self.c.push(c);
        self.account_sealed();
        Ok(())
    }

    fn encode_plan(&self) -> Option<EncodePlan> {
        Some(EncodePlan {
            g: TensorEncodePlan {
                maps: self.g.maps().clone(),
                config: self.g.config(),
            },
            c: TensorEncodePlan {
                maps: self.c.maps().clone(),
                config: self.c.config(),
            },
        })
    }

    fn put_encoded(
        &mut self,
        _step: usize,
        g: EncodedBlock,
        c: EncodedBlock,
    ) -> Result<(), StoreError> {
        self.g.push_encoded(g.bytes, &g.stats);
        self.c.push_encoded(c.bytes, &c.stats);
        self.account_sealed();
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        self.g.memory_bytes() + self.c.memory_bytes()
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn finish(mut self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError> {
        self.g.seal();
        self.c.seal();
        self.account_sealed();
        let this = *self;
        Ok(Box::new(CompressedReader {
            g: this.g.finish().into_backward(),
            c: this.c.finish().into_backward(),
            metrics: this.metrics,
        }))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[derive(Debug)]
struct CompressedReader {
    g: BackwardDecompressor,
    c: BackwardDecompressor,
    metrics: StoreMetrics,
}

impl BackwardReader for CompressedReader {
    fn fetch(&mut self, step: usize) -> Result<StepMatrices, StoreError> {
        let (gs, g) = self
            .g
            .next_matrix()?
            .ok_or(StoreError::TensorTruncated { step })?;
        let (cs, c) = self
            .c
            .next_matrix()?
            .ok_or(StoreError::TensorTruncated { step })?;
        if gs != step || cs != step {
            return Err(StoreError::TensorTruncated { step });
        }
        self.metrics.decompress_time = self.g.decompress_time() + self.c.decompress_time();
        Ok(StepMatrices::Stored { g, c })
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }
}
