//! The hybrid compressed+spill backend: MASC-compressed blocks for the
//! most recent `resident_blocks` steps stay in memory; older blocks spill
//! to disk *as compressed bytes*, so the paper's compression ratio
//! multiplies the effective disk bandwidth (a ~20× ratio turns a
//! 0.5 GB/s SSD into an effective ~10 GB/s tensor store).
//!
//! Spilling is oldest-first, which matches both sides of the access
//! pattern: the forward pass only ever appends, and the reverse pass
//! consumes newest-first, so the resident window holds exactly the blocks
//! the reverse sweep needs *first* and the disk holds the blocks it needs
//! *last* — reads overlap the early reverse-pass compute.

use super::backends::SpillFile;
use super::{
    throttle, BackwardReader, EncodePlan, EncodedBlock, JacobianStore, StepMatrices, StoreError,
    StoreMetrics, TensorEncodePlan,
};
use masc_compress::{BackwardDecompressor, MascConfig, TensorCompressor};
use masc_sparse::Pattern;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Compressed in memory for the most recent `resident_blocks` steps per
/// tensor; older compressed blocks spill to a uniquely named disk file.
#[derive(Debug)]
pub struct HybridStore {
    g: TensorCompressor,
    c: TensorCompressor,
    resident_blocks: usize,
    spill: SpillFile,
    bandwidth: Option<f64>,
    /// Per spilled block, oldest first: (file offset, compressed length).
    g_spilled: Vec<(u64, u32)>,
    c_spilled: Vec<(u64, u32)>,
    write_pos: u64,
    /// Compressed bytes currently on disk.
    disk_bytes: usize,
    /// Sealed blocks already counted into `metrics.bytes_written`.
    g_accounted: usize,
    c_accounted: usize,
    metrics: StoreMetrics,
}

impl HybridStore {
    /// Creates the spill file in `dir` and an empty hybrid store over it.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the spill file cannot be created.
    pub fn create(
        g_pattern: Arc<Pattern>,
        c_pattern: Arc<Pattern>,
        config: MascConfig,
        dir: &Path,
        bandwidth: Option<f64>,
        resident_blocks: usize,
    ) -> Result<Self, StoreError> {
        Ok(Self {
            g: TensorCompressor::new(g_pattern, config.clone()),
            c: TensorCompressor::new(c_pattern, config),
            resident_blocks,
            spill: SpillFile::create_in(dir)?,
            bandwidth,
            g_spilled: Vec::new(),
            c_spilled: Vec::new(),
            write_pos: 0,
            disk_bytes: 0,
            g_accounted: 0,
            c_accounted: 0,
            metrics: StoreMetrics::default(),
        })
    }

    /// Counts freshly sealed compressed blocks into `bytes_written`
    /// (before any of them spill: spilled blocks leave an empty
    /// placeholder behind).
    fn account_sealed(&mut self) {
        while self.g_accounted < self.g.sealed_len() {
            let len = self
                .g
                .compressed_block(self.g_accounted)
                .map_or(0, <[u8]>::len);
            self.metrics.bytes_written += len as u64;
            self.g_accounted += 1;
        }
        while self.c_accounted < self.c.sealed_len() {
            let len = self
                .c
                .compressed_block(self.c_accounted)
                .map_or(0, <[u8]>::len);
            self.metrics.bytes_written += len as u64;
            self.c_accounted += 1;
        }
        self.metrics.compress_time = self.g.compress_time() + self.c.compress_time();
    }

    /// Spills sealed blocks beyond the residency window, oldest first.
    fn spill_excess(&mut self) -> Result<(), StoreError> {
        loop {
            let g_excess = self.g.sealed_len() - self.g_spilled.len() > self.resident_blocks;
            let c_excess = self.c.sealed_len() - self.c_spilled.len() > self.resident_blocks;
            if !g_excess && !c_excess {
                return Ok(());
            }
            if g_excess {
                let t = self.g_spilled.len();
                let block = self
                    .g
                    .take_block(t)
                    .ok_or(StoreError::TensorTruncated { step: t })?;
                let entry = self.spill_block(&block)?;
                self.g_spilled.push(entry);
            }
            if c_excess {
                let t = self.c_spilled.len();
                let block = self
                    .c
                    .take_block(t)
                    .ok_or(StoreError::TensorTruncated { step: t })?;
                let entry = self.spill_block(&block)?;
                self.c_spilled.push(entry);
            }
        }
    }

    /// Appends one compressed block to the spill file, with throttled-I/O
    /// accounting, returning its (offset, length) table entry.
    fn spill_block(&mut self, block: &[u8]) -> Result<(u64, u32), StoreError> {
        let offset = self.write_pos;
        let start = Instant::now();
        let file = self.spill.file();
        file.seek(SeekFrom::Start(offset))?;
        std::io::Write::write_all(file, block)?;
        let io = start.elapsed();
        self.metrics.io_time += io;
        self.metrics.throttle_wait += throttle(block.len(), self.bandwidth, io);
        self.write_pos += block.len() as u64;
        self.disk_bytes += block.len();
        Ok((offset, block.len() as u32))
    }
}

impl JacobianStore for HybridStore {
    fn put(&mut self, _step: usize, g: &[f64], c: &[f64]) -> Result<(), StoreError> {
        self.g.push(g);
        self.c.push(c);
        self.account_sealed();
        self.spill_excess()
    }

    fn encode_plan(&self) -> Option<EncodePlan> {
        Some(EncodePlan {
            g: TensorEncodePlan {
                maps: self.g.maps().clone(),
                config: self.g.config(),
            },
            c: TensorEncodePlan {
                maps: self.c.maps().clone(),
                config: self.c.config(),
            },
        })
    }

    fn put_encoded(
        &mut self,
        _step: usize,
        g: EncodedBlock,
        c: EncodedBlock,
    ) -> Result<(), StoreError> {
        self.g.push_encoded(g.bytes, &g.stats);
        self.c.push_encoded(c.bytes, &c.stats);
        self.account_sealed();
        self.spill_excess()
    }

    fn resident_bytes(&self) -> usize {
        // All tiers: resident compressed blocks + raw pending matrices in
        // memory, plus compressed bytes on disk.
        self.g.memory_bytes() + self.c.memory_bytes() + self.disk_bytes
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn finish(mut self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError> {
        self.g.seal();
        self.c.seal();
        self.account_sealed();
        self.spill_excess()?;
        let mut this = *self;
        let g = TierTensor::assemble(&mut this.g, this.g_spilled);
        let c = TierTensor::assemble(&mut this.c, this.c_spilled);
        Ok(Box::new(HybridReader {
            spill: Some(this.spill),
            bandwidth: this.bandwidth,
            g,
            c,
            metrics: this.metrics,
        }))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// One tensor's two-tier block set plus its chained decoder.
#[derive(Debug)]
struct TierTensor {
    /// Steps `0..spilled.len()` live on disk, oldest first.
    spilled: Vec<(u64, u32)>,
    /// Step `spilled.len() + i` lives in memory at `mem[i]`.
    mem: Vec<Option<Vec<u8>>>,
    steps: usize,
    decoder: BackwardDecompressor,
    /// Injected-defect state: the previously read disk block, replayed in
    /// place of the next one while `Defect::StaleSpillBlock` is active.
    #[cfg(feature = "mutation-hooks")]
    last_disk_block: Option<Vec<u8>>,
}

impl TierTensor {
    /// Moves the still-resident sealed blocks out of the compressor and
    /// pairs them with the spill table and a chained decoder.
    fn assemble(tc: &mut TensorCompressor, spilled: Vec<(u64, u32)>) -> Self {
        let steps = tc.sealed_len();
        let mem: Vec<Option<Vec<u8>>> = (spilled.len()..steps).map(|t| tc.take_block(t)).collect();
        let decoder = BackwardDecompressor::chained(tc.pattern(), tc.maps().clone(), tc.config());
        Self {
            spilled,
            mem,
            steps,
            decoder,
            #[cfg(feature = "mutation-hooks")]
            last_disk_block: None,
        }
    }

    /// Produces step `step`'s compressed bytes from whichever tier holds
    /// them. Memory blocks are surrendered (each is needed exactly once).
    fn block_bytes(
        &mut self,
        step: usize,
        spill: &mut Option<SpillFile>,
        bandwidth: Option<f64>,
        metrics: &mut StoreMetrics,
    ) -> Result<Vec<u8>, StoreError> {
        if step >= self.steps {
            return Err(StoreError::TensorTruncated { step });
        }
        if step >= self.spilled.len() {
            let i = step - self.spilled.len();
            return self
                .mem
                .get_mut(i)
                .and_then(Option::take)
                .ok_or(StoreError::TensorTruncated { step });
        }
        let (offset, len) = self.spilled[step];
        let spill = spill
            .as_mut()
            .ok_or_else(|| StoreError::Io(std::io::Error::other("spill file already removed")))?;
        let mut buf = vec![0u8; len as usize];
        let start = Instant::now();
        let file = spill.file();
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut buf)?;
        let io = start.elapsed();
        metrics.io_time += io;
        metrics.throttle_wait += throttle(buf.len(), bandwidth, io);
        metrics.bytes_read += buf.len() as u64;
        #[cfg(feature = "mutation-hooks")]
        if crate::mutation::active(crate::mutation::Defect::StaleSpillBlock) {
            if let Some(stale) = self.last_disk_block.replace(buf.clone()) {
                return Ok(stale);
            }
        }
        Ok(buf)
    }
}

#[derive(Debug)]
struct HybridReader {
    spill: Option<SpillFile>,
    bandwidth: Option<f64>,
    g: TierTensor,
    c: TierTensor,
    metrics: StoreMetrics,
}

impl BackwardReader for HybridReader {
    fn fetch(&mut self, step: usize) -> Result<StepMatrices, StoreError> {
        let g_bytes =
            self.g
                .block_bytes(step, &mut self.spill, self.bandwidth, &mut self.metrics)?;
        let c_bytes =
            self.c
                .block_bytes(step, &mut self.spill, self.bandwidth, &mut self.metrics)?;
        let g = self.g.decoder.decode_block(&g_bytes)?;
        let c = self.c.decoder.decode_block(&c_bytes)?;
        self.metrics.decompress_time =
            self.g.decoder.decompress_time() + self.c.decoder.decompress_time();
        Ok(StepMatrices::Stored { g, c })
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn cleanup(&mut self) {
        self.spill = None;
    }
}
