//! A compressing store that hands its sealed tensors back to the caller.
//!
//! [`CaptureStore`] mirrors [`CompressedStore`](super::CompressedStore) —
//! same two temporal-chain compressors, same encode plan for out-of-band
//! pipelined compression — but on `finish` it clones the two sealed
//! [`CompressedTensor`]s into a shared [`TensorSlot`] before handing the
//! reverse pass its decoder. That turns the compressed tensor from a
//! transient byproduct into a first-class artifact: `masc-serve` caches
//! the pair under a content-addressed key and replays hits reverse-only;
//! `masc-window` seals one pair per time window and replays them across
//! Parareal adjoint iterations.

use super::{
    BackwardReader, EncodePlan, EncodedBlock, JacobianStore, StepMatrices, StoreError,
    StoreMetrics, TensorEncodePlan, TensorLayout,
};
use masc_compress::{BackwardDecompressor, CompressedTensor, MascConfig, TensorCompressor};
use std::sync::{Arc, Mutex, PoisonError};

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The sealed-tensor hand-off slot a [`CaptureStore`] fills at `finish`.
pub type TensorSlot = Arc<Mutex<Option<(CompressedTensor, CompressedTensor)>>>;

/// A compressing Jacobian store that, on `finish`, clones its two sealed
/// [`CompressedTensor`]s into a shared slot before handing the reverse
/// pass its decoder — the bridge between "run this forward pass" and
/// "keep this run's tensors". Mirrors
/// [`CompressedStore`](super::CompressedStore), including the encode plan
/// that lets a [`PipelinedStore`](super::PipelinedStore) pool compress
/// blocks out of band.
#[derive(Debug)]
pub struct CaptureStore {
    g: TensorCompressor,
    c: TensorCompressor,
    g_accounted: usize,
    c_accounted: usize,
    metrics: StoreMetrics,
    slot: TensorSlot,
}

impl CaptureStore {
    /// Creates a capture store over the layout's two sub-patterns.
    pub fn new(layout: &TensorLayout, config: MascConfig) -> Self {
        Self {
            g: TensorCompressor::new(layout.g_pattern.clone(), config.clone()),
            c: TensorCompressor::new(layout.c_pattern.clone(), config),
            g_accounted: 0,
            c_accounted: 0,
            metrics: StoreMetrics::default(),
            slot: Arc::new(Mutex::new(None)),
        }
    }

    /// The slot `finish` will deposit the sealed tensors into.
    pub fn slot(&self) -> TensorSlot {
        Arc::clone(&self.slot)
    }

    fn account_sealed(&mut self) {
        while self.g_accounted < self.g.sealed_len() {
            let len = self
                .g
                .compressed_block(self.g_accounted)
                .map_or(0, <[u8]>::len);
            self.metrics.bytes_written += len as u64;
            self.g_accounted += 1;
        }
        while self.c_accounted < self.c.sealed_len() {
            let len = self
                .c
                .compressed_block(self.c_accounted)
                .map_or(0, <[u8]>::len);
            self.metrics.bytes_written += len as u64;
            self.c_accounted += 1;
        }
        self.metrics.compress_time = self.g.compress_time() + self.c.compress_time();
    }
}

impl JacobianStore for CaptureStore {
    fn put(&mut self, _step: usize, g: &[f64], c: &[f64]) -> Result<(), StoreError> {
        self.g.push(g);
        self.c.push(c);
        self.account_sealed();
        Ok(())
    }

    fn encode_plan(&self) -> Option<EncodePlan> {
        Some(EncodePlan {
            g: TensorEncodePlan {
                maps: self.g.maps().clone(),
                config: self.g.config(),
            },
            c: TensorEncodePlan {
                maps: self.c.maps().clone(),
                config: self.c.config(),
            },
        })
    }

    fn put_encoded(
        &mut self,
        _step: usize,
        g: EncodedBlock,
        c: EncodedBlock,
    ) -> Result<(), StoreError> {
        self.g.push_encoded(g.bytes, &g.stats);
        self.c.push_encoded(c.bytes, &c.stats);
        self.account_sealed();
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        self.g.memory_bytes() + self.c.memory_bytes()
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn finish(mut self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError> {
        self.g.seal();
        self.c.seal();
        self.account_sealed();
        let this = *self;
        let g = this.g.finish();
        let c = this.c.finish();
        *lock_ignoring_poison(&this.slot) = Some((g.clone(), c.clone()));
        Ok(Box::new(CaptureReader {
            g: g.into_backward(),
            c: c.into_backward(),
            metrics: this.metrics,
        }))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[derive(Debug)]
struct CaptureReader {
    g: BackwardDecompressor,
    c: BackwardDecompressor,
    metrics: StoreMetrics,
}

impl BackwardReader for CaptureReader {
    fn fetch(&mut self, step: usize) -> Result<StepMatrices, StoreError> {
        let (gs, g) = self
            .g
            .next_matrix()?
            .ok_or(StoreError::TensorTruncated { step })?;
        let (cs, c) = self
            .c
            .next_matrix()?
            .ok_or(StoreError::TensorTruncated { step })?;
        if gs != step || cs != step {
            return Err(StoreError::TensorTruncated { step });
        }
        Ok(StepMatrices::Stored { g, c })
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }
}
