//! Unified store telemetry.
//!
//! Every [`JacobianStore`](super::JacobianStore) backend carries one
//! [`StoreMetrics`] through the forward pass and hands it to its backward
//! reader, so a finished reader holds the complete forward+reverse picture:
//! bytes moved per tier, peak residency, compression/decompression/I/O/
//! throttle time, and per-step latency histograms. This replaces the four
//! ad-hoc fields (`store_time`/`peak_bytes`/`fetch_time`/`io_wait`) the
//! enum-based store scattered across `ForwardRecord` and
//! `BackwardJacobians`.

use std::time::Duration;

/// Number of power-of-two latency buckets (bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds; the last bucket is open-ended, ~4.3 s+).
const BUCKETS: usize = 32;

/// A fixed-size power-of-two latency histogram (nanosecond buckets).
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` ns. Zero-allocation,
/// mergeable, and cheap enough to update once per transient step.
#[derive(Clone)]
pub struct DurationHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl DurationHistogram {
    fn bucket(d: Duration) -> usize {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        (63 - ns.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        self.counts[Self::bucket(d)] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 ..= 1.0`); zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(1u64 << (i + 1).min(63));
            }
        }
        Duration::from_nanos(u64::MAX)
    }

    /// Accumulates another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl std::fmt::Debug for DurationHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DurationHistogram {{ n: {}, p50: {:?}, p99: {:?} }}",
            self.total,
            self.quantile(0.5),
            self.quantile(0.99)
        )
    }
}

/// Unified telemetry for one Jacobian store, forward and reverse.
///
/// Byte counters follow the *payload* view: `bytes_written` is what the
/// backend committed to its store after any encoding (raw f64 bytes for
/// the raw/disk backends, compressed bytes for the compressed/hybrid
/// backends), and `bytes_read` is what the reverse pass pulled back off
/// the slow tier (disk). Durations are component times: `store_time` /
/// `fetch_time` are the end-to-end per-step capture/fetch costs (they
/// *include* compression, I/O, and throttle wait), the rest break those
/// down.
#[derive(Debug, Clone, Default)]
pub struct StoreMetrics {
    /// Payload bytes committed to the store during the forward pass.
    pub bytes_written: u64,
    /// Payload bytes read back from the slow tier during the reverse pass.
    pub bytes_read: u64,
    /// Peak resident (in-memory + on-disk) footprint observed, in bytes.
    pub peak_resident_bytes: usize,
    /// Total time capturing steps during the forward pass.
    pub store_time: Duration,
    /// Total time fetching steps during the reverse pass.
    pub fetch_time: Duration,
    /// Portion of `store_time` spent compressing.
    pub compress_time: Duration,
    /// Portion of `fetch_time` spent decompressing.
    pub decompress_time: Duration,
    /// Real I/O time (write/read syscalls), both directions.
    pub io_time: Duration,
    /// Simulated-bandwidth sleep time, both directions.
    pub throttle_wait: Duration,
    /// Time the forward pass spent blocked on a full pipeline queue
    /// (zero for synchronous backends).
    pub backpressure_wait: Duration,
    /// Deepest pipeline queue observed, in steps (zero for synchronous
    /// backends).
    pub max_queue_depth: usize,
    /// Reverse-pass fetches served from the prefetch buffer without
    /// waiting.
    pub prefetch_hits: u64,
    /// Reverse-pass fetches that had to wait for the prefetch worker.
    pub prefetch_misses: u64,
    /// Time the reverse pass spent waiting for the prefetch worker.
    pub prefetch_wait: Duration,
    /// Per-step capture latencies.
    pub put_hist: DurationHistogram,
    /// Per-step fetch latencies.
    pub fetch_hist: DurationHistogram,
}

impl StoreMetrics {
    /// Records one forward-pass capture of duration `d`.
    pub fn record_put(&mut self, d: Duration) {
        self.store_time += d;
        self.put_hist.record(d);
    }

    /// Records one reverse-pass fetch of duration `d`.
    pub fn record_fetch(&mut self, d: Duration) {
        self.fetch_time += d;
        self.fetch_hist.record(d);
    }

    /// Raises the peak-residency watermark to `bytes` if larger.
    pub fn note_resident(&mut self, bytes: usize) {
        self.peak_resident_bytes = self.peak_resident_bytes.max(bytes);
    }

    /// Accumulates another store's metrics into this one (peaks take the
    /// max; everything else sums).
    pub fn merge(&mut self, other: &Self) {
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.peak_resident_bytes = self.peak_resident_bytes.max(other.peak_resident_bytes);
        self.store_time += other.store_time;
        self.fetch_time += other.fetch_time;
        self.compress_time += other.compress_time;
        self.decompress_time += other.decompress_time;
        self.io_time += other.io_time;
        self.throttle_wait += other.throttle_wait;
        self.backpressure_wait += other.backpressure_wait;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_misses += other.prefetch_misses;
        self.prefetch_wait += other.prefetch_wait;
        self.put_hist.merge(&other.put_hist);
        self.fetch_hist.merge(&other.fetch_hist);
    }
}
