//! The asynchronous pipelined store adapter (and its prefetching
//! reverse-pass counterpart).
//!
//! [`PipelinedStore`] wraps any synchronous [`JacobianStore`] and moves
//! compression + spill I/O onto a dedicated worker thread, fed through a
//! *bounded* channel: while the Newton solver works on step `n + 1`, the
//! worker compresses and writes step `n`. The channel bound is the
//! backpressure policy — when the worker falls behind, `put` blocks
//! instead of buffering unboundedly, so the raw-matrix footprint stays at
//! `queue_depth` steps no matter how slow the disk is.
//!
//! The worker is intentionally a *single* thread: MASC's block chain
//! compresses `M_{t−1}` against `M_t` (paper Algorithm 2), so blocks must
//! be encoded in step order to keep the stream byte-identical to the
//! synchronous path. Parallelism inside one matrix still applies — the
//! wrapped backend uses `compress_matrix_parallel`'s chunk layout when
//! `MascConfig::threads > 1` — the pipeline only adds *overlap* between
//! the solver and the store, never a reordering.
//!
//! On the reverse pass, [`PrefetchReader`] runs the wrapped
//! [`BackwardReader`] on its own thread and decodes block `t − 1` while
//! the adjoint solve consumes block `t`, again through a bounded channel
//! (`lookahead` decoded steps). Fetches served without waiting count as
//! `prefetch_hits` in [`StoreMetrics`]; fetches that had to wait record
//! `prefetch_misses` and `prefetch_wait`.
//!
//! Worker failures never panic and are never dropped: the first error is
//! parked in a shared slot, the worker exits (disconnecting the channel),
//! and the next `put`/`sync`/`finish` surfaces it as
//! [`StoreError::Worker`] carrying the step whose persist actually
//! failed. `ForwardRecord`'s `on_finish` hook drains the queue at the end
//! of the transient, so even an error on the very last queued step aborts
//! the run as `TranError::Sink`.

use super::{BackwardReader, JacobianStore, StepMatrices, StoreError, StoreMetrics};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One unit of forward-pass work for the pipeline worker.
enum Job {
    /// Persist one step's compact value arrays.
    Put {
        step: usize,
        g: Vec<f64>,
        c: Vec<f64>,
    },
    /// Barrier: acknowledge once every earlier job is persisted.
    Sync(mpsc::Sender<()>),
}

/// State shared between the forward loop and the pipeline worker.
#[derive(Debug, Default)]
struct Shared {
    /// The wrapped store's `resident_bytes`, republished after each job.
    inner_resident: AtomicUsize,
    /// Raw payload bytes currently queued (accepted but not yet persisted).
    queued_bytes: AtomicUsize,
    /// Jobs currently in flight (queued or being persisted).
    queued_jobs: AtomicUsize,
    /// First worker failure: the failing step and its error.
    error: Mutex<Option<(usize, StoreError)>>,
}

/// Locks the error slot, surviving a poisoned mutex (the slot itself is
/// always in a valid state: the worker writes it in one assignment).
fn lock_error(shared: &Shared) -> std::sync::MutexGuard<'_, Option<(usize, StoreError)>> {
    match shared.error.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn worker_gone() -> StoreError {
    StoreError::Io(std::io::Error::other("pipeline worker exited unexpectedly"))
}

/// Persists jobs in arrival (= step) order until the channel closes or a
/// job fails; returns the wrapped store to the joining thread either way.
fn run_worker(
    mut store: Box<dyn JacobianStore>,
    rx: &Receiver<Job>,
    shared: &Shared,
) -> Box<dyn JacobianStore> {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Put { step, g, c } => {
                let bytes = (g.len() + c.len()) * 8;
                let result = store.put(step, &g, &c);
                shared
                    .inner_resident
                    .store(store.resident_bytes(), Ordering::SeqCst);
                shared.queued_bytes.fetch_sub(bytes, Ordering::SeqCst);
                shared.queued_jobs.fetch_sub(1, Ordering::SeqCst);
                if let Err(e) = result {
                    let mut slot = lock_error(shared);
                    if slot.is_none() {
                        *slot = Some((step, e));
                    }
                    // Exiting drops `rx`, so the producer's next send
                    // fails fast instead of filling a dead queue.
                    break;
                }
            }
            Job::Sync(ack) => {
                let _ = ack.send(());
            }
        }
    }
    store
}

/// Runs any [`JacobianStore`] behind a bounded asynchronous pipeline.
///
/// Build one through [`StoreConfig::Pipelined`](super::StoreConfig) or
/// directly with [`PipelinedStore::spawn`]. The compressed output is
/// byte-identical to the wrapped backend run synchronously — the pipeline
/// changes *when* compression happens, never its input order.
#[derive(Debug)]
pub struct PipelinedStore {
    tx: Option<SyncSender<Job>>,
    worker: Option<JoinHandle<Box<dyn JacobianStore>>>,
    shared: Arc<Shared>,
    wants: bool,
    lookahead: usize,
    /// Steps accepted so far (drives the reverse-pass prefetch schedule).
    steps: usize,
    /// Producer-side telemetry, merged into the reader at `finish`.
    metrics: StoreMetrics,
}

impl PipelinedStore {
    /// Spawns the worker thread around `inner`.
    ///
    /// `queue_depth` bounds the put channel in steps (0 is a rendezvous
    /// channel: every `put` waits for the worker to pick the step up);
    /// `lookahead` bounds the reverse-pass prefetch window in decoded
    /// steps.
    pub fn spawn(inner: Box<dyn JacobianStore>, queue_depth: usize, lookahead: usize) -> Self {
        let wants = inner.wants_matrices();
        let shared = Arc::new(Shared::default());
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth);
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_worker(inner, &rx, &shared))
        };
        Self {
            tx: Some(tx),
            worker: Some(worker),
            shared,
            wants,
            lookahead: lookahead.max(1),
            steps: 0,
            metrics: StoreMetrics::default(),
        }
    }

    /// Takes the parked worker failure, wrapped as [`StoreError::Worker`].
    fn take_error(&self) -> Option<StoreError> {
        lock_error(&self.shared)
            .take()
            .map(|(step, e)| StoreError::Worker {
                step,
                source: Box::new(e),
            })
    }
}

impl JacobianStore for PipelinedStore {
    fn wants_matrices(&self) -> bool {
        self.wants
    }

    fn put(&mut self, step: usize, g: &[f64], c: &[f64]) -> Result<(), StoreError> {
        if let Some(e) = self.take_error() {
            return Err(e);
        }
        self.steps = self.steps.max(step + 1);
        let bytes = (g.len() + c.len()) * 8;
        let job = Job::Put {
            step,
            g: g.to_vec(),
            c: c.to_vec(),
        };
        self.shared.queued_bytes.fetch_add(bytes, Ordering::SeqCst);
        let depth = self.shared.queued_jobs.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.max_queue_depth = self.metrics.max_queue_depth.max(depth);
        let tx = self.tx.as_ref().ok_or_else(worker_gone)?;
        let sent = match tx.try_send(job) {
            Ok(()) => true,
            Err(TrySendError::Full(job)) => {
                // Backpressure: the worker is behind; block (bounded
                // memory) and account the stall.
                let start = Instant::now();
                let sent = tx.send(job).is_ok();
                self.metrics.backpressure_wait += start.elapsed();
                sent
            }
            Err(TrySendError::Disconnected(_)) => false,
        };
        if !sent {
            self.shared.queued_bytes.fetch_sub(bytes, Ordering::SeqCst);
            self.shared.queued_jobs.fetch_sub(1, Ordering::SeqCst);
            return Err(self.take_error().unwrap_or_else(worker_gone));
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(e) = self.take_error() {
            return Err(e);
        }
        let Some(tx) = self.tx.as_ref() else {
            return Ok(());
        };
        let (ack_tx, ack_rx) = mpsc::channel();
        if tx.send(Job::Sync(ack_tx)).is_ok() && ack_rx.recv().is_ok() {
            return Ok(());
        }
        // The worker exited before acknowledging: its parked error says
        // which step failed.
        Err(self.take_error().unwrap_or_else(worker_gone))
    }

    fn resident_bytes(&self) -> usize {
        // Queued raw payloads are part of the footprint the backpressure
        // bound exists to cap — count them alongside the wrapped store.
        self.shared.inner_resident.load(Ordering::SeqCst)
            + self.shared.queued_bytes.load(Ordering::SeqCst)
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn finish(mut self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError> {
        drop(self.tx.take());
        let worker = self.worker.take().ok_or_else(worker_gone)?;
        let inner = worker
            .join()
            .map_err(|_| StoreError::Io(std::io::Error::other("pipeline worker panicked")))?;
        if let Some(e) = self.take_error() {
            return Err(e);
        }
        let mut reader = inner.finish()?;
        reader.metrics_mut().merge(&self.metrics);
        Ok(Box::new(PrefetchReader::spawn(
            reader,
            self.steps,
            self.lookahead,
        )))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Drop for PipelinedStore {
    fn drop(&mut self) {
        // Join-on-drop: an abandoned record (e.g. a transient abort) must
        // not leak the worker thread or the wrapped store's spill file.
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// One prefetched reverse-pass step, in the order the sweep will ask.
type Prefetched = (usize, Result<StepMatrices, StoreError>);

/// Decodes steps `N−1, N−2, …, 0` ahead of the consumer.
fn run_prefetch(
    mut inner: Box<dyn BackwardReader>,
    tx: &SyncSender<Prefetched>,
    steps: usize,
) -> Box<dyn BackwardReader> {
    for step in (0..steps).rev() {
        let result = inner.fetch(step);
        let failed = result.is_err();
        if tx.send((step, result)).is_err() || failed {
            break;
        }
    }
    inner
}

/// Lookahead wrapper over any [`BackwardReader`]: a worker thread decodes
/// block `t − 1` while the adjoint solve consumes block `t`.
///
/// The worker follows the adjoint recursion's access order (strictly
/// decreasing steps), holds at most `lookahead` decoded steps, and hands
/// the wrapped reader back when the sweep completes, errors, or the
/// wrapper is dropped — so spill-file cleanup and the final
/// [`StoreMetrics`] picture work exactly as in the synchronous path.
#[derive(Debug)]
pub struct PrefetchReader {
    rx: Option<Receiver<Prefetched>>,
    worker: Option<JoinHandle<Box<dyn BackwardReader>>>,
    /// The wrapped reader, back in hand once the worker has been joined.
    inner: Option<Box<dyn BackwardReader>>,
    metrics: StoreMetrics,
}

impl PrefetchReader {
    /// Spawns the prefetch worker over `inner` for a record of `steps`
    /// steps, buffering up to `lookahead` decoded steps.
    pub fn spawn(inner: Box<dyn BackwardReader>, steps: usize, lookahead: usize) -> Self {
        let mut this = Self {
            rx: None,
            worker: None,
            inner: None,
            metrics: StoreMetrics::default(),
        };
        if steps == 0 {
            // Nothing to prefetch; keep the reader in hand.
            this.metrics.merge(inner.metrics());
            this.inner = Some(inner);
            return this;
        }
        let (tx, rx) = mpsc::sync_channel::<Prefetched>(lookahead.max(1));
        this.rx = Some(rx);
        this.worker = Some(std::thread::spawn(move || run_prefetch(inner, &tx, steps)));
        this
    }

    /// Stops the worker and takes the wrapped reader (and its metrics)
    /// back. Dropping `rx` first unblocks a worker stuck on a full
    /// channel.
    fn join_worker(&mut self) {
        drop(self.rx.take());
        if let Some(worker) = self.worker.take() {
            if let Ok(inner) = worker.join() {
                self.metrics.merge(inner.metrics());
                self.inner = Some(inner);
            }
        }
    }
}

impl BackwardReader for PrefetchReader {
    fn fetch(&mut self, step: usize) -> Result<StepMatrices, StoreError> {
        if self.worker.is_none() {
            // Prefetch already wound down (step 0 served, or an earlier
            // error): serve stragglers straight from the wrapped reader.
            let inner = self.inner.as_mut().ok_or_else(worker_gone)?;
            return inner.fetch(step);
        }
        let Some(rx) = self.rx.as_ref() else {
            return Err(worker_gone());
        };
        let (got, result) = match rx.try_recv() {
            Ok(item) => {
                self.metrics.prefetch_hits += 1;
                item
            }
            Err(TryRecvError::Empty) => {
                let start = Instant::now();
                let item = rx.recv();
                self.metrics.prefetch_wait += start.elapsed();
                self.metrics.prefetch_misses += 1;
                match item {
                    Ok(item) => item,
                    Err(_) => {
                        self.join_worker();
                        return Err(worker_gone());
                    }
                }
            }
            Err(TryRecvError::Disconnected) => {
                self.join_worker();
                return Err(worker_gone());
            }
        };
        // After the last step (or a failure) the worker is done — join it
        // so the final metrics include the wrapped reader's telemetry.
        if got == 0 || result.is_err() {
            self.join_worker();
        }
        if got != step {
            return Err(StoreError::Io(std::io::Error::other(format!(
                "prefetch order violated: decoded step {got}, caller asked for {step}"
            ))));
        }
        result
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn cleanup(&mut self) {
        self.join_worker();
        if let Some(inner) = self.inner.as_mut() {
            inner.cleanup();
        }
    }
}

impl Drop for PrefetchReader {
    fn drop(&mut self) {
        // Join-on-drop: never leak the prefetch thread (or the spill file
        // owned by the reader it holds).
        self.join_worker();
    }
}
