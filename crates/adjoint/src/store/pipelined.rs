//! The asynchronous pipelined store adapter (and its prefetching
//! reverse-pass counterpart).
//!
//! [`PipelinedStore`] wraps any synchronous [`JacobianStore`] and moves
//! compression + spill I/O off the solver thread, fed through a *bounded*
//! channel: while the Newton solver works on step `n + 1`, the store
//! persists step `n`. The channel bound is the backpressure policy — when
//! the store falls behind, `put` blocks instead of buffering unboundedly,
//! so the raw-matrix footprint stays bounded no matter how slow the disk
//! is.
//!
//! Two engines implement the forward side:
//!
//! - **Single worker** (the default, and the fallback for stores without
//!   an [`encode_plan`](JacobianStore::encode_plan)): one thread calls the
//!   wrapped store's `put` in step order. This is the only correct shape
//!   for stores whose `put` is order-sensitive *and* not splittable
//!   (e.g. the raw disk stream).
//!
//! - **Worker pool** (`workers > 1` over a store with an encode plan):
//!   since MASC encodes block `t` from the *raw* values of steps `t` and
//!   `t + 1` — never from codec state of other blocks — blocks can be
//!   compressed concurrently and committed in step order. N workers pull
//!   encode jobs from a shared queue; a committer thread reorders the
//!   results by step and feeds them to the wrapped store's
//!   [`put_encoded`](JacobianStore::put_encoded). The stored bytes are
//!   identical to the synchronous path for every worker count.
//!
//! On the reverse pass, [`PrefetchReader`] runs the wrapped
//! [`BackwardReader`] on its own thread and decodes block `t − 1` while
//! the adjoint solve consumes block `t`, again through a bounded channel
//! (`lookahead` decoded steps). Fetches served without waiting count as
//! `prefetch_hits` in [`StoreMetrics`]; fetches that had to wait record
//! `prefetch_misses` and `prefetch_wait`.
//!
//! Worker failures never panic and are never dropped: the first error is
//! parked in a shared slot, the failing thread exits (disconnecting its
//! channel), and the next `put`/`sync`/`finish` surfaces it as
//! [`StoreError::Worker`] carrying the step whose persist actually
//! failed. `ForwardRecord`'s `on_finish` hook drains the queue at the end
//! of the transient, so even an error on the very last queued step aborts
//! the run as `TranError::Sink`.

use super::{
    BackwardReader, EncodePlan, EncodedBlock, JacobianStore, StepMatrices, StoreError, StoreMetrics,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of forward-pass work for the single pipeline worker.
enum Job {
    /// Persist one step's compact value arrays.
    Put {
        step: usize,
        g: Vec<f64>,
        c: Vec<f64>,
    },
    /// Barrier: acknowledge once every earlier job is persisted.
    Sync(mpsc::Sender<()>),
}

/// State shared between the forward loop and the pipeline threads.
#[derive(Debug, Default)]
struct Shared {
    /// The wrapped store's `resident_bytes`, republished after each job.
    inner_resident: AtomicUsize,
    /// Raw payload bytes currently queued (accepted but not yet persisted).
    queued_bytes: AtomicUsize,
    /// Jobs currently in flight (queued, encoding, or being committed).
    queued_jobs: AtomicUsize,
    /// Wall nanoseconds the pool's workers spent encoding.
    encode_nanos: AtomicU64,
    /// First worker failure: the failing step and its error.
    error: Mutex<Option<(usize, StoreError)>>,
}

/// Locks the error slot, surviving a poisoned mutex (the slot itself is
/// always in a valid state: the worker writes it in one assignment).
fn lock_error(shared: &Shared) -> std::sync::MutexGuard<'_, Option<(usize, StoreError)>> {
    match shared.error.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Parks the first failure; later failures are dropped (the first is the
/// one the producer surfaces).
fn park_error(shared: &Shared, step: usize, e: StoreError) {
    let mut slot = lock_error(shared);
    if slot.is_none() {
        *slot = Some((step, e));
    }
}

fn worker_gone() -> StoreError {
    StoreError::Io(std::io::Error::other("pipeline worker exited unexpectedly"))
}

/// Persists jobs in arrival (= step) order until the channel closes or a
/// job fails; returns the wrapped store to the joining thread either way.
fn run_worker(
    mut store: Box<dyn JacobianStore>,
    rx: &Receiver<Job>,
    shared: &Shared,
) -> Box<dyn JacobianStore> {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Put { step, g, c } => {
                let bytes = (g.len() + c.len()) * 8;
                let result = store.put(step, &g, &c);
                shared
                    .inner_resident
                    .store(store.resident_bytes(), Ordering::SeqCst);
                shared.queued_bytes.fetch_sub(bytes, Ordering::SeqCst);
                shared.queued_jobs.fetch_sub(1, Ordering::SeqCst);
                if let Err(e) = result {
                    park_error(shared, step, e);
                    // Exiting drops `rx`, so the producer's next send
                    // fails fast instead of filling a dead queue.
                    break;
                }
            }
            Job::Sync(ack) => {
                let _ = ack.send(());
            }
        }
    }
    store
}

// ---------------------------------------------------------------------------
// Worker pool (encode_plan stores)
// ---------------------------------------------------------------------------

/// A step's G/C value arrays, shared between the pinned previous step and
/// in-flight encode jobs.
type StepValues = (Arc<Vec<f64>>, Arc<Vec<f64>>);

/// One block's raw ingredients for a pool worker: the values to encode and
/// the successor step's values as temporal reference (`None` = encode as
/// the tensor-final seed block).
struct EncodeJob {
    step: usize,
    g_values: Arc<Vec<f64>>,
    c_values: Arc<Vec<f64>>,
    reference: Option<StepValues>,
    /// Raw bytes this job pins (for the resident-memory accounting).
    raw_bytes: usize,
}

/// One encoded block pair travelling from a worker to the committer.
struct EncodedStep {
    step: usize,
    g: EncodedBlock,
    c: EncodedBlock,
    raw_bytes: usize,
}

/// Pulls jobs off the shared queue and encodes them; results go to the
/// committer. Exits when the job channel closes or the committer is gone.
fn run_encode_worker(
    plan: &EncodePlan,
    rx: &Mutex<Receiver<EncodeJob>>,
    tx: &SyncSender<EncodedStep>,
    shared: &Shared,
) {
    loop {
        // Hold the lock only for the receive; encoding runs unlocked so
        // the other workers can pick up jobs concurrently.
        let job = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(job) = job else {
            break;
        };
        let start = Instant::now();
        let (g, c) = match &job.reference {
            Some((g_ref, c_ref)) => (
                plan.g.encode(job.step, &job.g_values, g_ref),
                plan.c.encode(job.step, &job.c_values, c_ref),
            ),
            None => (
                plan.g.encode_seed(&job.g_values),
                plan.c.encode_seed(&job.c_values),
            ),
        };
        shared
            .encode_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::SeqCst);
        let msg = EncodedStep {
            step: job.step,
            g,
            c,
            raw_bytes: job.raw_bytes,
        };
        if tx.send(msg).is_err() {
            break;
        }
    }
}

/// Reorders encoded blocks by step and commits them to the wrapped store;
/// returns the store to the joining thread either way.
fn run_committer(
    mut store: Box<dyn JacobianStore>,
    rx: &Receiver<EncodedStep>,
    shared: &Shared,
) -> Box<dyn JacobianStore> {
    let mut parked: BTreeMap<usize, EncodedStep> = BTreeMap::new();
    let mut next = 0usize;
    while let Ok(msg) = rx.recv() {
        parked.insert(msg.step, msg);
        while let Some(msg) = parked.remove(&next) {
            let result = store.put_encoded(msg.step, msg.g, msg.c);
            shared
                .inner_resident
                .store(store.resident_bytes(), Ordering::SeqCst);
            shared
                .queued_bytes
                .fetch_sub(msg.raw_bytes, Ordering::SeqCst);
            shared.queued_jobs.fetch_sub(1, Ordering::SeqCst);
            if let Err(e) = result {
                park_error(shared, msg.step, e);
                // Exiting drops `rx`; blocked workers fail their sends and
                // exit, which closes the job channel back to the producer.
                return store;
            }
            next += 1;
        }
    }
    store
}

/// The raw values of the newest accepted step, pinned until its successor
/// arrives (MASC encodes one step late) or `finish` seals it as the
/// tensor-final seed block.
struct PrevStep {
    step: usize,
    g: Arc<Vec<f64>>,
    c: Arc<Vec<f64>>,
}

impl PrevStep {
    fn raw_bytes(&self) -> usize {
        (self.g.len() + self.c.len()) * 8
    }
}

/// The forward-side machinery of one [`PipelinedStore`].
enum Engine {
    /// One thread calling the wrapped store's `put` in step order.
    Single {
        tx: Option<SyncSender<Job>>,
        worker: Option<JoinHandle<Box<dyn JacobianStore>>>,
    },
    /// N encode workers + an in-order committer over `put_encoded`.
    Pool {
        tx: Option<SyncSender<EncodeJob>>,
        workers: Vec<JoinHandle<()>>,
        committer: Option<JoinHandle<Box<dyn JacobianStore>>>,
        prev: Option<PrevStep>,
    },
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Single { .. } => f.debug_struct("Single").finish_non_exhaustive(),
            Engine::Pool { workers, .. } => f
                .debug_struct("Pool")
                .field("workers", &workers.len())
                .finish_non_exhaustive(),
        }
    }
}

/// Runs any [`JacobianStore`] behind a bounded asynchronous pipeline.
///
/// Build one through [`StoreConfig::Pipelined`](super::StoreConfig) or
/// directly with [`PipelinedStore::spawn`] /
/// [`spawn_pool`](PipelinedStore::spawn_pool). The compressed output is
/// byte-identical to the wrapped backend run synchronously — the pipeline
/// changes *when* and *on how many threads* compression happens, never its
/// input order.
#[derive(Debug)]
pub struct PipelinedStore {
    engine: Engine,
    shared: Arc<Shared>,
    wants: bool,
    lookahead: usize,
    /// Steps accepted so far (drives the reverse-pass prefetch schedule).
    steps: usize,
    /// Producer-side telemetry, merged into the reader at `finish`.
    metrics: StoreMetrics,
}

impl PipelinedStore {
    /// Spawns the classic single worker thread around `inner`.
    ///
    /// `queue_depth` bounds the put channel in steps (0 is a rendezvous
    /// channel: every `put` waits for the worker to pick the step up);
    /// `lookahead` bounds the reverse-pass prefetch window in decoded
    /// steps.
    pub fn spawn(inner: Box<dyn JacobianStore>, queue_depth: usize, lookahead: usize) -> Self {
        let wants = inner.wants_matrices();
        let shared = Arc::new(Shared::default());
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth);
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_worker(inner, &rx, &shared))
        };
        Self {
            engine: Engine::Single {
                tx: Some(tx),
                worker: Some(worker),
            },
            shared,
            wants,
            lookahead: lookahead.max(1),
            steps: 0,
            metrics: StoreMetrics::default(),
        }
    }

    /// Spawns a pool of `workers` encode threads around `inner`, falling
    /// back to the single-worker pipeline when `workers <= 1` or the store
    /// offers no [`encode_plan`](JacobianStore::encode_plan).
    pub fn spawn_pool(
        inner: Box<dyn JacobianStore>,
        queue_depth: usize,
        lookahead: usize,
        workers: usize,
    ) -> Self {
        let plan = if workers > 1 {
            inner.encode_plan()
        } else {
            None
        };
        let Some(plan) = plan else {
            return Self::spawn(inner, queue_depth, lookahead);
        };
        let wants = inner.wants_matrices();
        let shared = Arc::new(Shared::default());
        let (tx, job_rx) = mpsc::sync_channel::<EncodeJob>(queue_depth.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        // The committer channel holds one slot per worker plus the queue
        // bound, so a worker never deadlocks against an out-of-order gap.
        let (enc_tx, enc_rx) = mpsc::sync_channel::<EncodedStep>(queue_depth.max(1) + workers);
        let plan = Arc::new(plan);
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let plan = Arc::clone(&plan);
                let job_rx = Arc::clone(&job_rx);
                let enc_tx = enc_tx.clone();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || run_encode_worker(&plan, &job_rx, &enc_tx, &shared))
            })
            .collect();
        // The committer's channel must close when the last worker exits.
        drop(enc_tx);
        let committer = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_committer(inner, &enc_rx, &shared))
        };
        Self {
            engine: Engine::Pool {
                tx: Some(tx),
                workers: worker_handles,
                committer: Some(committer),
                prev: None,
            },
            shared,
            wants,
            lookahead: lookahead.max(1),
            steps: 0,
            metrics: StoreMetrics::default(),
        }
    }

    /// Takes the parked worker failure, wrapped as [`StoreError::Worker`].
    fn take_error(&self) -> Option<StoreError> {
        lock_error(&self.shared)
            .take()
            .map(|(step, e)| StoreError::Worker {
                step,
                source: Box::new(e),
            })
    }

    /// Sends one encode job with backpressure accounting. Returns `false`
    /// when the pool is gone.
    fn dispatch_job(&mut self, job: EncodeJob) -> bool {
        let bytes = job.raw_bytes;
        self.shared.queued_bytes.fetch_add(bytes, Ordering::SeqCst);
        let depth = self.shared.queued_jobs.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.max_queue_depth = self.metrics.max_queue_depth.max(depth);
        let Engine::Pool { tx: Some(tx), .. } = &self.engine else {
            self.shared.queued_bytes.fetch_sub(bytes, Ordering::SeqCst);
            self.shared.queued_jobs.fetch_sub(1, Ordering::SeqCst);
            return false;
        };
        let sent = match tx.try_send(job) {
            Ok(()) => true,
            Err(TrySendError::Full(job)) => {
                let start = Instant::now();
                let sent = tx.send(job).is_ok();
                self.metrics.backpressure_wait += start.elapsed();
                sent
            }
            Err(TrySendError::Disconnected(_)) => false,
        };
        if !sent {
            self.shared.queued_bytes.fetch_sub(bytes, Ordering::SeqCst);
            self.shared.queued_jobs.fetch_sub(1, Ordering::SeqCst);
        }
        sent
    }

    /// Whether every pool thread has exited (used to avoid spinning forever
    /// in `sync` when a thread died without parking an error).
    fn pool_dead(&self) -> bool {
        match &self.engine {
            Engine::Single { .. } => false,
            Engine::Pool { committer, .. } => {
                committer.as_ref().is_none_or(JoinHandle::is_finished)
            }
        }
    }
}

impl JacobianStore for PipelinedStore {
    fn wants_matrices(&self) -> bool {
        self.wants
    }

    fn put(&mut self, step: usize, g: &[f64], c: &[f64]) -> Result<(), StoreError> {
        if let Some(e) = self.take_error() {
            return Err(e);
        }
        self.steps = self.steps.max(step + 1);
        match &mut self.engine {
            Engine::Single { tx, .. } => {
                let bytes = (g.len() + c.len()) * 8;
                let job = Job::Put {
                    step,
                    g: g.to_vec(),
                    c: c.to_vec(),
                };
                self.shared.queued_bytes.fetch_add(bytes, Ordering::SeqCst);
                let depth = self.shared.queued_jobs.fetch_add(1, Ordering::SeqCst) + 1;
                self.metrics.max_queue_depth = self.metrics.max_queue_depth.max(depth);
                let tx = tx.as_ref().ok_or_else(worker_gone)?;
                let sent = match tx.try_send(job) {
                    Ok(()) => true,
                    Err(TrySendError::Full(job)) => {
                        // Backpressure: the worker is behind; block (bounded
                        // memory) and account the stall.
                        let start = Instant::now();
                        let sent = tx.send(job).is_ok();
                        self.metrics.backpressure_wait += start.elapsed();
                        sent
                    }
                    Err(TrySendError::Disconnected(_)) => false,
                };
                if !sent {
                    self.shared.queued_bytes.fetch_sub(bytes, Ordering::SeqCst);
                    self.shared.queued_jobs.fetch_sub(1, Ordering::SeqCst);
                    return Err(self.take_error().unwrap_or_else(worker_gone));
                }
                Ok(())
            }
            Engine::Pool { prev, .. } => {
                let cur = PrevStep {
                    step,
                    g: Arc::new(g.to_vec()),
                    c: Arc::new(c.to_vec()),
                };
                let reference = (Arc::clone(&cur.g), Arc::clone(&cur.c));
                let Some(sealed) = prev.replace(cur) else {
                    return Ok(()); // first step: nothing encodable yet
                };
                let job = EncodeJob {
                    step: sealed.step,
                    raw_bytes: sealed.raw_bytes(),
                    g_values: sealed.g,
                    c_values: sealed.c,
                    reference: Some(reference),
                };
                if !self.dispatch_job(job) {
                    return Err(self.take_error().unwrap_or_else(worker_gone));
                }
                Ok(())
            }
        }
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(e) = self.take_error() {
            return Err(e);
        }
        match &self.engine {
            Engine::Single { tx, .. } => {
                let Some(tx) = tx.as_ref() else {
                    return Ok(());
                };
                let (ack_tx, ack_rx) = mpsc::channel();
                if tx.send(Job::Sync(ack_tx)).is_ok() && ack_rx.recv().is_ok() {
                    return Ok(());
                }
                // The worker exited before acknowledging: its parked error
                // says which step failed.
                Err(self.take_error().unwrap_or_else(worker_gone))
            }
            Engine::Pool { .. } => {
                // Pool barrier: wait for every dispatched job to commit.
                // (The pinned newest step is not dispatchable yet — it has
                // no successor — exactly like the raw `pending` matrix a
                // synchronous compressed store holds.)
                loop {
                    if let Some(e) = self.take_error() {
                        return Err(e);
                    }
                    if self.shared.queued_jobs.load(Ordering::SeqCst) == 0 {
                        return Ok(());
                    }
                    if self.pool_dead() {
                        return Err(self.take_error().unwrap_or_else(worker_gone));
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    fn resident_bytes(&self) -> usize {
        // Queued raw payloads are part of the footprint the backpressure
        // bound exists to cap — count them alongside the wrapped store
        // (and, for the pool, the pinned newest step).
        let pinned = match &self.engine {
            Engine::Single { .. } => 0,
            Engine::Pool { prev, .. } => prev.as_ref().map_or(0, PrevStep::raw_bytes),
        };
        self.shared.inner_resident.load(Ordering::SeqCst)
            + self.shared.queued_bytes.load(Ordering::SeqCst)
            + pinned
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn finish(mut self: Box<Self>) -> Result<Box<dyn BackwardReader>, StoreError> {
        let inner = match &mut self.engine {
            Engine::Single { tx, worker } => {
                drop(tx.take());
                let worker = worker.take().ok_or_else(worker_gone)?;
                worker.join().map_err(|_| {
                    StoreError::Io(std::io::Error::other("pipeline worker panicked"))
                })?
            }
            Engine::Pool {
                tx,
                workers,
                committer,
                prev,
            } => {
                // Seal: the pinned newest step becomes the tensor-final
                // seed block (what a synchronous store's `seal` does).
                if let Some(last) = prev.take() {
                    let job = EncodeJob {
                        step: last.step,
                        raw_bytes: last.raw_bytes(),
                        g_values: last.g,
                        c_values: last.c,
                        reference: None,
                    };
                    let bytes = job.raw_bytes;
                    self.shared.queued_bytes.fetch_add(bytes, Ordering::SeqCst);
                    self.shared.queued_jobs.fetch_add(1, Ordering::SeqCst);
                    let sent = tx.as_ref().is_some_and(|tx| tx.send(job).is_ok());
                    if !sent {
                        self.shared.queued_bytes.fetch_sub(bytes, Ordering::SeqCst);
                        self.shared.queued_jobs.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                drop(tx.take());
                for handle in workers.drain(..) {
                    let _ = handle.join();
                }
                let committer = committer.take().ok_or_else(worker_gone)?;
                committer.join().map_err(|_| {
                    StoreError::Io(std::io::Error::other("pipeline committer panicked"))
                })?
            }
        };
        if let Some(e) = self.take_error() {
            return Err(e);
        }
        self.metrics.compress_time +=
            Duration::from_nanos(self.shared.encode_nanos.load(Ordering::SeqCst));
        let mut reader = inner.finish()?;
        reader.metrics_mut().merge(&self.metrics);
        Ok(Box::new(PrefetchReader::spawn(
            reader,
            self.steps,
            self.lookahead,
        )))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Drop for PipelinedStore {
    fn drop(&mut self) {
        // Join-on-drop: an abandoned record (e.g. a transient abort) must
        // not leak the threads or the wrapped store's spill file.
        match &mut self.engine {
            Engine::Single { tx, worker } => {
                drop(tx.take());
                if let Some(worker) = worker.take() {
                    let _ = worker.join();
                }
            }
            Engine::Pool {
                tx,
                workers,
                committer,
                ..
            } => {
                drop(tx.take());
                for handle in workers.drain(..) {
                    let _ = handle.join();
                }
                if let Some(committer) = committer.take() {
                    let _ = committer.join();
                }
            }
        }
    }
}

/// One prefetched reverse-pass step, in the order the sweep will ask.
type Prefetched = (usize, Result<StepMatrices, StoreError>);

/// Decodes steps `N−1, N−2, …, 0` ahead of the consumer.
fn run_prefetch(
    mut inner: Box<dyn BackwardReader>,
    tx: &SyncSender<Prefetched>,
    steps: usize,
) -> Box<dyn BackwardReader> {
    for step in (0..steps).rev() {
        let result = inner.fetch(step);
        let failed = result.is_err();
        if tx.send((step, result)).is_err() || failed {
            break;
        }
    }
    inner
}

/// Lookahead wrapper over any [`BackwardReader`]: a worker thread decodes
/// block `t − 1` while the adjoint solve consumes block `t`.
///
/// The worker follows the adjoint recursion's access order (strictly
/// decreasing steps), holds at most `lookahead` decoded steps, and hands
/// the wrapped reader back when the sweep completes, errors, or the
/// wrapper is dropped — so spill-file cleanup and the final
/// [`StoreMetrics`] picture work exactly as in the synchronous path.
#[derive(Debug)]
pub struct PrefetchReader {
    rx: Option<Receiver<Prefetched>>,
    worker: Option<JoinHandle<Box<dyn BackwardReader>>>,
    /// The wrapped reader, back in hand once the worker has been joined.
    inner: Option<Box<dyn BackwardReader>>,
    metrics: StoreMetrics,
}

impl PrefetchReader {
    /// Spawns the prefetch worker over `inner` for a record of `steps`
    /// steps, buffering up to `lookahead` decoded steps.
    pub fn spawn(inner: Box<dyn BackwardReader>, steps: usize, lookahead: usize) -> Self {
        let mut this = Self {
            rx: None,
            worker: None,
            inner: None,
            metrics: StoreMetrics::default(),
        };
        if steps == 0 {
            // Nothing to prefetch; keep the reader in hand.
            this.metrics.merge(inner.metrics());
            this.inner = Some(inner);
            return this;
        }
        let (tx, rx) = mpsc::sync_channel::<Prefetched>(lookahead.max(1));
        this.rx = Some(rx);
        this.worker = Some(std::thread::spawn(move || run_prefetch(inner, &tx, steps)));
        this
    }

    /// Stops the worker and takes the wrapped reader (and its metrics)
    /// back. Dropping `rx` first unblocks a worker stuck on a full
    /// channel.
    fn join_worker(&mut self) {
        drop(self.rx.take());
        if let Some(worker) = self.worker.take() {
            if let Ok(inner) = worker.join() {
                self.metrics.merge(inner.metrics());
                self.inner = Some(inner);
            }
        }
    }
}

impl BackwardReader for PrefetchReader {
    fn fetch(&mut self, step: usize) -> Result<StepMatrices, StoreError> {
        if self.worker.is_none() {
            // Prefetch already wound down (step 0 served, or an earlier
            // error): serve stragglers straight from the wrapped reader.
            let inner = self.inner.as_mut().ok_or_else(worker_gone)?;
            return inner.fetch(step);
        }
        let Some(rx) = self.rx.as_ref() else {
            return Err(worker_gone());
        };
        let (got, result) = match rx.try_recv() {
            Ok(item) => {
                self.metrics.prefetch_hits += 1;
                item
            }
            Err(TryRecvError::Empty) => {
                let start = Instant::now();
                let item = rx.recv();
                self.metrics.prefetch_wait += start.elapsed();
                self.metrics.prefetch_misses += 1;
                match item {
                    Ok(item) => item,
                    Err(_) => {
                        self.join_worker();
                        return Err(worker_gone());
                    }
                }
            }
            Err(TryRecvError::Disconnected) => {
                self.join_worker();
                return Err(worker_gone());
            }
        };
        // After the last step (or a failure) the worker is done — join it
        // so the final metrics include the wrapped reader's telemetry.
        if got == 0 || result.is_err() {
            self.join_worker();
        }
        if got != step {
            return Err(StoreError::Io(std::io::Error::other(format!(
                "prefetch order violated: decoded step {got}, caller asked for {step}"
            ))));
        }
        result
    }

    fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut StoreMetrics {
        &mut self.metrics
    }

    fn cleanup(&mut self) {
        self.join_worker();
        if let Some(inner) = self.inner.as_mut() {
            inner.cleanup();
        }
    }
}

impl Drop for PrefetchReader {
    fn drop(&mut self) {
        // Join-on-drop: never leak the prefetch thread (or the spill file
        // owned by the reader it holds).
        self.join_worker();
    }
}
