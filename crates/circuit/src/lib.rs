//! A SPICE-like analog circuit simulator: the substrate MASC runs on.
//!
//! The paper implements MASC inside Xyce; this crate is the from-scratch
//! equivalent used by this reproduction. It provides:
//!
//! - netlist construction ([`Circuit`]) and a SPICE-subset text
//!   [`parser`];
//! - device models ([`devices`]): R, C, L, V/I sources with DC/PULSE/SIN/
//!   PWL [`waveform`]s, diode, BJT, MOSFET — each with analytic Jacobian
//!   *and* parameter-derivative stamps;
//! - MNA assembly over a single shared sparsity pattern
//!   ([`circuit::System`]) — the structural invariant the paper's
//!   shared-indices compression relies on;
//! - DC operating point with gmin stepping ([`dc`]) and backward-Euler
//!   transient analysis ([`mod@transient`]) with a [`transient::JacobianSink`]
//!   hook that feeds every per-step `G`/`C` matrix pair to the caller
//!   (paper Algorithm 2, forward half).
//!
//! # Examples
//!
//! ```
//! use masc_circuit::parser::parse_netlist;
//! use masc_circuit::transient::{transient, NullSink};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut parsed = parse_netlist(
//!     "V1 in 0 PULSE(0 5 0 1n 1n 1u 2u)\n\
//!      R1 in out 1k\n\
//!      C1 out 0 1n\n\
//!      .tran 20n 2u\n\
//!      .end",
//! )?;
//! let mut system = parsed.circuit.elaborate()?;
//! let opts = parsed.tran.clone().expect("netlist has .tran");
//! let result = transient(&parsed.circuit, &mut system, &opts, &mut NullSink)?;
//! assert_eq!(result.times.len(), opts.step_count() + 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod dc;
pub mod devices;
pub mod netlist;
pub mod newton;
pub mod parser;
pub mod stamp;
pub mod transient;
pub mod waveform;

pub use circuit::{Circuit, CircuitError, Evaluation, Node, ParamRef, System};
pub use dc::{dc_operating_point, DcSolution};
pub use devices::Device;
pub use newton::{NewtonError, NewtonOptions};
pub use transient::{
    transient, JacobianSink, NullSink, SinkError, TranError, TranOptions, TranResult,
};
pub use waveform::Waveform;
