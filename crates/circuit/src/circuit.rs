//! The circuit container: nodes, devices, elaboration, system evaluation.
//!
//! A [`Circuit`] is built by naming nodes and adding devices; `elaborate`
//! freezes it into a [`System`] with a single shared sparsity [`Pattern`]
//! covering the union of all `G` and `C` stamps (one structure for the whole
//! run — the precondition for the paper's shared-indices technique).

use crate::devices::Device;
use crate::stamp::{EvalContext, ParamDerivContext, Reserver, Unknown};
use masc_sparse::{CsrMatrix, Pattern, TripletMatrix};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A node handle returned by [`Circuit::node`]; ground is `Node::GROUND`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node(pub(crate) Unknown);

impl Node {
    /// The ground (reference) node.
    pub const GROUND: Node = Node(None);

    /// The unknown index backing this node (`None` for ground).
    pub fn unknown(self) -> Unknown {
        self.0
    }
}

/// A reference to one named device parameter, the unit of sensitivity
/// analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamRef {
    /// Index of the owning device in the circuit.
    pub device: usize,
    /// Local parameter index within the device.
    pub local: usize,
    /// `"<device>.<param>"`, e.g. `"R1.r"`.
    pub path: String,
}

/// Errors from circuit construction and elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A device name was used twice.
    DuplicateDevice(String),
    /// The circuit has no devices or no non-ground nodes.
    Empty,
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::DuplicateDevice(name) => write!(f, "duplicate device name {name}"),
            CircuitError::Empty => write!(f, "circuit has no devices or nodes"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// A netlist under construction.
#[derive(Debug, Clone)]
pub struct Circuit {
    node_names: Vec<String>,
    node_by_name: HashMap<String, Node>,
    devices: Vec<Device>,
    device_names: HashMap<String, usize>,
    model_effort: u32,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self {
            node_names: Vec::new(),
            node_by_name: HashMap::new(),
            devices: Vec::new(),
            device_names: HashMap::new(),
            model_effort: 1,
        }
    }

    /// Sets the model-evaluation effort multiplier inherited by every
    /// [`System`] this circuit elaborates (see
    /// [`System::set_model_effort`]).
    pub fn set_model_effort(&mut self, effort: u32) {
        self.model_effort = effort.max(1);
    }

    /// Returns (creating if needed) the node with the given name.
    ///
    /// The names `"0"` and `"gnd"` (any case) are ground.
    pub fn node(&mut self, name: &str) -> Node {
        let lower = name.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" {
            return Node::GROUND;
        }
        if let Some(&n) = self.node_by_name.get(&lower) {
            return n;
        }
        let node = Node(Some(self.node_names.len()));
        self.node_names.push(lower.clone());
        self.node_by_name.insert(lower, node);
        node
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Name of non-ground node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= node_count()`.
    pub fn node_name(&self, i: usize) -> &str {
        &self.node_names[i]
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<Node> {
        let lower = name.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" {
            return Some(Node::GROUND);
        }
        self.node_by_name.get(&lower).copied()
    }

    /// Adds a device.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DuplicateDevice`] if the name is taken.
    pub fn add(&mut self, device: Device) -> Result<usize, CircuitError> {
        let name = device.name().to_string();
        if self.device_names.contains_key(&name) {
            return Err(CircuitError::DuplicateDevice(name));
        }
        let idx = self.devices.len();
        self.device_names.insert(name, idx);
        self.devices.push(device);
        Ok(idx)
    }

    /// The device list.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Mutable device access (for parameter perturbation).
    pub fn device_mut(&mut self, idx: usize) -> &mut Device {
        &mut self.devices[idx]
    }

    /// Finds a device index by name.
    pub fn find_device(&self, name: &str) -> Option<usize> {
        self.device_names.get(name).copied()
    }

    /// Enumerates every named parameter in the circuit.
    pub fn params(&self) -> Vec<ParamRef> {
        let mut out = Vec::new();
        for (di, dev) in self.devices.iter().enumerate() {
            for li in 0..dev.param_count() {
                out.push(ParamRef {
                    device: di,
                    local: li,
                    path: format!("{}.{}", dev.name(), dev.param_name(li)),
                });
            }
        }
        out
    }

    /// Looks up a parameter by `"device.param"` path.
    pub fn find_param(&self, path: &str) -> Option<ParamRef> {
        let (dev_name, param_name) = path.split_once('.')?;
        let device = self.find_device(dev_name)?;
        let dev = &self.devices[device];
        (0..dev.param_count())
            .find(|&i| dev.param_name(i) == param_name)
            .map(|local| ParamRef {
                device,
                local,
                path: path.to_string(),
            })
    }

    /// Current value of a parameter.
    pub fn param_value(&self, p: &ParamRef) -> f64 {
        self.devices[p.device].param(p.local)
    }

    /// Sets a parameter (used by finite-difference validation and sweeps).
    pub fn set_param_value(&mut self, p: &ParamRef, value: f64) {
        self.devices[p.device].set_param(p.local, value);
    }

    /// Freezes the circuit into a solvable [`System`].
    ///
    /// Assigns branch unknowns, reserves every stamp slot, and builds the
    /// single shared pattern (union of `G` and `C` structures plus all node
    /// diagonals, which gmin stepping needs).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Empty`] for a circuit with no unknowns.
    pub fn elaborate(&mut self) -> Result<System, CircuitError> {
        let n_nodes = self.node_names.len();
        let mut next_branch = n_nodes;
        for dev in &mut self.devices {
            let count = dev.branch_count();
            if count > 0 {
                dev.assign_branches(next_branch);
                next_branch += count;
            }
        }
        let n = next_branch;
        if n == 0 || self.devices.is_empty() {
            return Err(CircuitError::Empty);
        }
        let mut gt = TripletMatrix::new(n, n);
        let mut ct = TripletMatrix::new(n, n);
        {
            let mut res = Reserver::new(&mut gt, &mut ct);
            for dev in &self.devices {
                dev.reserve(&mut res);
            }
            // Node diagonals for gmin stepping / shunt conductances.
            for i in 0..n_nodes {
                res.reserve_g(Some(i), Some(i));
            }
        }
        // Union pattern: stamp G and C over one structure so that
        // J = G + C/h shares it too.
        let mut union = TripletMatrix::new(n, n);
        for t in [&gt, &ct] {
            for (r, c, _) in t.to_csr().iter() {
                union.add(r, c, 0.0);
            }
        }
        let pattern = union.to_csr().pattern().clone();
        // Per-tensor sub-patterns: G and C each keep only their own
        // structural non-zeros (the paper's S_NZ definition), with gather
        // maps back into the union for assembly.
        let g_pattern = gt.to_csr().pattern().clone();
        let c_pattern = ct.to_csr().pattern().clone();
        let slots_of = |sub: &Pattern| -> Arc<Vec<usize>> {
            let mut slots = Vec::with_capacity(sub.nnz());
            for r in 0..sub.rows() {
                for k in sub.row_ptr()[r]..sub.row_ptr()[r + 1] {
                    let c = sub.col_idx()[k];
                    slots.push(pattern.find(r, c).expect("union covers sub-pattern"));
                }
            }
            Arc::new(slots)
        };
        let g_slots = slots_of(&g_pattern);
        let c_slots = slots_of(&c_pattern);
        Ok(System {
            n,
            n_nodes,
            pattern,
            g_pattern,
            c_pattern,
            g_slots,
            c_slots,
            device_eval_time: Duration::ZERO,
            device_eval_count: 0,
            model_effort: self.model_effort,
        })
    }
}

/// An elaborated system: dimensions, the shared pattern, and evaluation
/// machinery. Cheap to clone (the pattern is shared).
#[derive(Debug, Clone)]
pub struct System {
    /// Total unknowns (nodes + branches).
    pub n: usize,
    /// Node unknowns (the first `n_nodes` entries of `x`).
    pub n_nodes: usize,
    /// The single shared sparsity pattern for `G`, `C`, and `J`.
    pub pattern: Arc<Pattern>,
    /// Sub-pattern of slots `G` actually populates.
    pub g_pattern: Arc<Pattern>,
    /// Sub-pattern of slots `C` actually populates.
    pub c_pattern: Arc<Pattern>,
    /// `g_slots[i]` = union value index of `g_pattern`'s `i`-th non-zero.
    pub g_slots: Arc<Vec<usize>>,
    /// `c_slots[i]` = union value index of `c_pattern`'s `i`-th non-zero.
    pub c_slots: Arc<Vec<usize>>,
    device_eval_time: Duration,
    device_eval_count: u64,
    model_effort: u32,
}

/// One full evaluation of the system at `(x, t)`.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// `G = ∂f/∂x`.
    pub g: CsrMatrix,
    /// `C = ∂q/∂x`.
    pub c: CsrMatrix,
    /// Static residual `f(x)`.
    pub f: Vec<f64>,
    /// Charges `q(x)`.
    pub q: Vec<f64>,
    /// Sources `b(t)`.
    pub b: Vec<f64>,
}

impl System {
    /// Evaluates `f`, `q`, `b`, `G`, `C` at `(x, t)`, reusing the buffers of
    /// `out`.
    ///
    /// Device-evaluation wall time is accumulated into the system's stats —
    /// this is the `T_Jac` the paper's Table 1 reports.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n` or `out` was not created by
    /// [`System::new_evaluation`].
    pub fn eval_into(&mut self, circuit: &Circuit, x: &[f64], t: f64, out: &mut Evaluation) {
        assert_eq!(x.len(), self.n, "state vector length mismatch");
        let start = Instant::now();
        // `model_effort` repeats the evaluation sweep: each round clears
        // and restamps, so results are identical — only the cost scales.
        for _ in 0..self.model_effort.max(1) {
            out.g.clear();
            out.c.clear();
            out.f.iter_mut().for_each(|v| *v = 0.0);
            out.q.iter_mut().for_each(|v| *v = 0.0);
            out.b.iter_mut().for_each(|v| *v = 0.0);
            let mut ctx = EvalContext {
                x,
                t,
                g: &mut out.g,
                c: &mut out.c,
                f: &mut out.f,
                q: &mut out.q,
                b: &mut out.b,
            };
            for dev in circuit.devices() {
                dev.eval(&mut ctx);
            }
        }
        self.device_eval_time += start.elapsed();
        self.device_eval_count += 1;
    }

    /// Allocates an [`Evaluation`] over the shared pattern.
    pub fn new_evaluation(&self) -> Evaluation {
        Evaluation {
            g: CsrMatrix::zeros(self.pattern.clone()),
            c: CsrMatrix::zeros(self.pattern.clone()),
            f: vec![0.0; self.n],
            q: vec![0.0; self.n],
            b: vec![0.0; self.n],
        }
    }

    /// Accumulates `∂f/∂p`, `∂q/∂p`, `∂b/∂p` for one parameter at `(x, t)`
    /// into the provided buffers (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths differ from `self.n`.
    #[allow(clippy::too_many_arguments)]
    pub fn param_deriv_into(
        &self,
        circuit: &Circuit,
        p: &ParamRef,
        x: &[f64],
        t: f64,
        df_dp: &mut [f64],
        dq_dp: &mut [f64],
        db_dp: &mut [f64],
    ) {
        assert_eq!(df_dp.len(), self.n);
        assert_eq!(dq_dp.len(), self.n);
        assert_eq!(db_dp.len(), self.n);
        df_dp.iter_mut().for_each(|v| *v = 0.0);
        dq_dp.iter_mut().for_each(|v| *v = 0.0);
        db_dp.iter_mut().for_each(|v| *v = 0.0);
        let mut ctx = ParamDerivContext {
            x,
            t,
            df_dp,
            dq_dp,
            db_dp,
        };
        circuit.devices()[p.device].stamp_param_deriv(p.local, &mut ctx);
    }

    /// Like [`System::param_deriv_into`] but without clearing the buffers:
    /// the caller guarantees every entry in the parameter's device support
    /// is already zero (e.g. cleared selectively). This keeps per-parameter
    /// cost proportional to the device size instead of the system size —
    /// essential when sweeping hundreds of parameters per step.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths differ from `self.n`.
    #[allow(clippy::too_many_arguments)]
    pub fn param_deriv_sparse_into(
        &self,
        circuit: &Circuit,
        p: &ParamRef,
        x: &[f64],
        t: f64,
        df_dp: &mut [f64],
        dq_dp: &mut [f64],
        db_dp: &mut [f64],
    ) {
        assert_eq!(df_dp.len(), self.n);
        assert_eq!(dq_dp.len(), self.n);
        assert_eq!(db_dp.len(), self.n);
        let mut ctx = ParamDerivContext {
            x,
            t,
            df_dp,
            dq_dp,
            db_dp,
        };
        circuit.devices()[p.device].stamp_param_deriv(p.local, &mut ctx);
    }

    /// Gathers a union-pattern value array into the `G` sub-tensor's
    /// compact form (the stored/compressed representation).
    pub fn gather_g(&self, union_values: &[f64]) -> Vec<f64> {
        self.g_slots.iter().map(|&s| union_values[s]).collect()
    }

    /// Gathers a union-pattern value array into the `C` sub-tensor's
    /// compact form.
    pub fn gather_c(&self, union_values: &[f64]) -> Vec<f64> {
        self.c_slots.iter().map(|&s| union_values[s]).collect()
    }

    /// Scatters a compact `G` array back onto a union-pattern value array
    /// (entries outside the sub-pattern are zeroed).
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the patterns.
    pub fn scatter_g(&self, compact: &[f64], union_values: &mut [f64]) {
        assert_eq!(compact.len(), self.g_slots.len());
        union_values.iter_mut().for_each(|v| *v = 0.0);
        for (&slot, &v) in self.g_slots.iter().zip(compact) {
            union_values[slot] = v;
        }
    }

    /// Scatters a compact `C` array back onto a union-pattern value array.
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the patterns.
    pub fn scatter_c(&self, compact: &[f64], union_values: &mut [f64]) {
        assert_eq!(compact.len(), self.c_slots.len());
        union_values.iter_mut().for_each(|v| *v = 0.0);
        for (&slot, &v) in self.c_slots.iter().zip(compact) {
            union_values[slot] = v;
        }
    }

    /// Total wall time spent in device evaluation (`T_Jac`).
    pub fn device_eval_time(&self) -> Duration {
        self.device_eval_time
    }

    /// Number of full device-evaluation sweeps performed.
    pub fn device_eval_count(&self) -> u64 {
        self.device_eval_count
    }

    /// Sets the model-evaluation effort multiplier (default 1).
    ///
    /// Production device models (BSIM, Gummel-Poon/VBIC) cost one to two
    /// orders of magnitude more than this crate's textbook models; setting
    /// an effort of `k` repeats each evaluation sweep `k` times — results
    /// are bit-identical, only the cost changes. The benchmark harness
    /// uses this as a calibrated surrogate so the Jacobian-computation
    /// fraction of sensitivity time matches what the paper measures on
    /// Xyce (`T_Jac/T_Sens ≈ 46–65 %`); see `DESIGN.md` §5.
    pub fn set_model_effort(&mut self, effort: u32) {
        self.model_effort = effort.max(1);
    }

    /// The current model-evaluation effort multiplier.
    pub fn model_effort(&self) -> u32 {
        self.model_effort
    }

    /// Resets the evaluation-time statistics.
    pub fn reset_stats(&mut self) {
        self.device_eval_time = Duration::ZERO;
        self.device_eval_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Device, Resistor, VoltageSource};
    use crate::waveform::Waveform;

    fn divider() -> (Circuit, System) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add(Device::VoltageSource(VoltageSource::new(
            "V1",
            vin.unknown(),
            None,
            Waveform::Dc(10.0),
        )))
        .unwrap();
        ckt.add(Device::Resistor(Resistor::new(
            "R1",
            vin.unknown(),
            vout.unknown(),
            1000.0,
        )))
        .unwrap();
        ckt.add(Device::Resistor(Resistor::new(
            "R2",
            vout.unknown(),
            None,
            1000.0,
        )))
        .unwrap();
        let sys = ckt.elaborate().unwrap();
        (ckt, sys)
    }

    #[test]
    fn node_identity_and_ground() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("A"); // case-insensitive
        assert_eq!(a, a2);
        assert_eq!(ckt.node("0"), Node::GROUND);
        assert_eq!(ckt.node("GND"), Node::GROUND);
        assert_eq!(ckt.node_count(), 1);
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Device::Resistor(Resistor::new(
            "R1",
            a.unknown(),
            None,
            1.0,
        )))
        .unwrap();
        let err = ckt.add(Device::Resistor(Resistor::new(
            "R1",
            a.unknown(),
            None,
            2.0,
        )));
        assert!(matches!(err, Err(CircuitError::DuplicateDevice(_))));
    }

    #[test]
    fn elaboration_assigns_branches_and_sizes() {
        let (_, sys) = divider();
        // 2 nodes + 1 vsource branch.
        assert_eq!(sys.n, 3);
        assert_eq!(sys.n_nodes, 2);
        // Pattern covers both resistor stamps, the source rows, and node
        // diagonals.
        assert!(sys.pattern.nnz() >= 6);
        assert!(sys.pattern.find(2, 0).is_some()); // branch row, node col
    }

    #[test]
    fn evaluation_at_exact_solution_balances() {
        let (ckt, mut sys) = divider();
        let mut ev = sys.new_evaluation();
        // Known solution: in = 10, out = 5, source current = −5 mA.
        let x = [10.0, 5.0, -5e-3];
        sys.eval_into(&ckt, &x, 0.0, &mut ev);
        for i in 0..sys.n {
            let residual = ev.f[i] + ev.b[i];
            assert!(residual.abs() < 1e-12, "row {i}: {residual}");
        }
        assert!(sys.device_eval_count() == 1);
    }

    #[test]
    fn params_enumerated_with_paths() {
        let (ckt, _) = divider();
        let params = ckt.params();
        let paths: Vec<&str> = params.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(paths, vec!["V1.scale", "R1.r", "R2.r"]);
        let r1 = ckt.find_param("R1.r").unwrap();
        assert_eq!(ckt.param_value(&r1), 1000.0);
        assert!(ckt.find_param("R9.r").is_none());
        assert!(ckt.find_param("R1.zzz").is_none());
    }

    #[test]
    fn set_param_round_trip() {
        let (mut ckt, _) = divider();
        let r1 = ckt.find_param("R1.r").unwrap();
        ckt.set_param_value(&r1, 2200.0);
        assert_eq!(ckt.param_value(&r1), 2200.0);
    }

    #[test]
    fn empty_circuit_rejected() {
        let mut ckt = Circuit::new();
        assert!(matches!(ckt.elaborate(), Err(CircuitError::Empty)));
    }

    #[test]
    fn capacitor_contributes_to_union_pattern() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Device::Resistor(Resistor::new(
            "R1",
            a.unknown(),
            None,
            1.0,
        )))
        .unwrap();
        ckt.add(Device::Capacitor(Capacitor::new(
            "C1",
            a.unknown(),
            None,
            1e-9,
        )))
        .unwrap();
        let sys = ckt.elaborate().unwrap();
        // One node: diagonal present for both G and C through the union.
        assert_eq!(sys.n, 1);
        assert!(sys.pattern.find(0, 0).is_some());
        let mut ev = sys.new_evaluation();
        let mut sys = sys;
        sys.eval_into(&ckt, &[2.0], 0.0, &mut ev);
        assert_eq!(ev.g.get(0, 0), Some(1.0));
        assert_eq!(ev.c.get(0, 0), Some(1e-9));
        assert!((ev.q[0] - 2e-9).abs() < 1e-20);
    }
}
