//! DC operating-point analysis with gmin and source stepping.
//!
//! Solves `f(x) + b(t₀) = 0` by damped Newton. If the plain solve fails
//! (strongly nonlinear circuits far from bias), two standard SPICE
//! continuation strategies follow: *gmin stepping* (a shunt conductance
//! from every node to ground swept from `1e-2` S down to zero) and
//! *source stepping* (all independent sources ramped from 5 % to 100 %,
//! each level warm-starting the next). Source stepping is what saves long
//! amplifying chains: intermediate damped-Newton iterates of a cold start
//! can otherwise wander into all-stages-saturated states whose small-signal
//! gain — and matrix condition number — grows exponentially with depth.

use crate::circuit::{Circuit, System};
use crate::newton::{newton_solve, NewtonError, NewtonOptions, NewtonStats};
use masc_sparse::{CsrMatrix, LuWorkspace};

/// Result of a DC operating-point solve.
#[derive(Debug, Clone)]
pub struct DcSolution {
    /// The operating point (nodes then branch currents).
    pub x: Vec<f64>,
    /// Accumulated Newton statistics over all gmin stages.
    pub stats: NewtonStats,
    /// Number of gmin stages used (1 = converged without stepping).
    pub gmin_stages: usize,
}

/// Computes the DC operating point at `t = 0`.
///
/// # Errors
///
/// Returns [`NewtonError`] if even the most heavily shunted stage fails.
pub fn dc_operating_point(
    circuit: &Circuit,
    system: &mut System,
    opts: &NewtonOptions,
) -> Result<DcSolution, NewtonError> {
    let mut lu = LuWorkspace::new();
    dc_operating_point_ws(circuit, system, opts, &mut lu)
}

/// [`dc_operating_point`] with a caller-provided LU workspace.
///
/// All schedule stages share the workspace's symbolic analysis (the MNA
/// pattern never changes mid-solve), and a caller running a larger
/// simulation — the transient stepper, or a `masc-sweep` instance seeded
/// with a shared analysis — passes the same workspace here so the DC solve
/// contributes to (and benefits from) the one symbolic factorization.
///
/// # Errors
///
/// Returns [`NewtonError`] if even the most heavily shunted stage fails.
pub fn dc_operating_point_ws(
    circuit: &Circuit,
    system: &mut System,
    opts: &NewtonOptions,
    lu: &mut LuWorkspace,
) -> Result<DcSolution, NewtonError> {
    let n = system.n;
    let mut x = vec![0.0; n];
    let mut j = CsrMatrix::zeros(system.pattern.clone());
    let mut r = vec![0.0; n];
    let mut ev = system.new_evaluation();
    let mut total = NewtonStats::default();
    // Long device chains settle roughly one stage per iteration (cutoff
    // regions have no gain to propagate corrections through), so the DC
    // budget must scale with the circuit, not be a fixed constant.
    let opts = NewtonOptions {
        max_iter: opts.max_iter.max(4 * n + 100),
        ..*opts
    };
    let opts = &opts;

    // Plain attempt, then gmin stepping, then source stepping.
    // Each schedule entry is (gshunt, source_scale).
    let plain: Vec<(f64, f64)> = vec![(0.0, 1.0)];
    let gmin: Vec<(f64, f64)> = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 0.0]
        .iter()
        .map(|&g| (g, 1.0))
        .collect();
    let source: Vec<(f64, f64)> = [0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0]
        .iter()
        .map(|&a| (0.0, a))
        .collect();
    let schedules = [plain, gmin, source];
    let mut last_err = None;
    for schedule in &schedules {
        let mut stage_x = x.clone();
        let mut ok = true;
        let mut stages = 0usize;
        let mut stage_stats = NewtonStats::default();
        for &(gshunt, scale) in schedule.iter() {
            stages += 1;
            let result = newton_solve(&mut stage_x, opts, lu, &mut j, &mut r, |x, r, j| {
                system.eval_into(circuit, x, 0.0, &mut ev);
                for (ri, (fi, bi)) in r.iter_mut().zip(ev.f.iter().zip(&ev.b)) {
                    *ri = fi + scale * bi;
                }
                j.values_mut().copy_from_slice(ev.g.values());
                if gshunt > 0.0 {
                    for node in 0..system.n_nodes {
                        r[node] += gshunt * x[node];
                        j.add_at(node, node, gshunt)
                            .expect("node diagonal reserved at elaboration");
                    }
                }
            });
            match result {
                Ok(s) => {
                    stage_stats.iterations += s.iterations;
                    stage_stats.lu_time += s.lu_time;
                }
                Err(e) => {
                    ok = false;
                    last_err = Some(e);
                    break;
                }
            }
        }
        if ok {
            total.iterations += stage_stats.iterations;
            total.lu_time += stage_stats.lu_time;
            return Ok(DcSolution {
                x: stage_x,
                stats: total,
                gmin_stages: stages,
            });
        }
        // Schedule failed — the next one restarts from scratch.
        x.iter_mut().for_each(|v| *v = 0.0);
    }
    Err(last_err.expect("failure recorded"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Bjt, Device, Diode, MosPolarity, Mosfet, Resistor, VoltageSource};
    use crate::waveform::Waveform;

    fn solve(ckt: &mut Circuit) -> (DcSolution, System) {
        let mut sys = ckt.elaborate().unwrap();
        let sol = dc_operating_point(ckt, &mut sys, &NewtonOptions::default()).unwrap();
        (sol, sys)
    }

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in").unknown();
        let vout = ckt.node("out").unknown();
        ckt.add(Device::VoltageSource(VoltageSource::new(
            "V1",
            vin,
            None,
            Waveform::Dc(10.0),
        )))
        .unwrap();
        ckt.add(Device::Resistor(Resistor::new("R1", vin, vout, 1000.0)))
            .unwrap();
        ckt.add(Device::Resistor(Resistor::new("R2", vout, None, 3000.0)))
            .unwrap();
        let (sol, _) = solve(&mut ckt);
        assert!((sol.x[0] - 10.0).abs() < 1e-9);
        assert!((sol.x[1] - 7.5).abs() < 1e-9);
        // Source current = −10/4000.
        assert!((sol.x[2] + 2.5e-3).abs() < 1e-9);
    }

    #[test]
    fn diode_forward_drop() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in").unknown();
        let vd = ckt.node("d").unknown();
        ckt.add(Device::VoltageSource(VoltageSource::new(
            "V1",
            vin,
            None,
            Waveform::Dc(5.0),
        )))
        .unwrap();
        ckt.add(Device::Resistor(Resistor::new("R1", vin, vd, 1000.0)))
            .unwrap();
        ckt.add(Device::Diode(Diode::new("D1", vd, None))).unwrap();
        let (sol, _) = solve(&mut ckt);
        let vdio = sol.x[1];
        assert!(vdio > 0.5 && vdio < 0.8, "diode drop {vdio}");
        // KCL: resistor current equals diode current.
        let ir = (5.0 - vdio) / 1000.0;
        assert!(ir > 0.0);
    }

    #[test]
    fn bjt_common_emitter_bias() {
        let mut ckt = Circuit::new();
        let vcc = ckt.node("vcc").unknown();
        let vb = ckt.node("b").unknown();
        let vc = ckt.node("c").unknown();
        ckt.add(Device::VoltageSource(VoltageSource::new(
            "VCC",
            vcc,
            None,
            Waveform::Dc(5.0),
        )))
        .unwrap();
        ckt.add(Device::Resistor(Resistor::new("RB", vcc, vb, 100_000.0)))
            .unwrap();
        ckt.add(Device::Resistor(Resistor::new("RC", vcc, vc, 1_000.0)))
            .unwrap();
        ckt.add(Device::Bjt(Bjt::new("Q1", vc, vb, None))).unwrap();
        let (sol, _) = solve(&mut ckt);
        let (vb_v, vc_v) = (sol.x[1], sol.x[2]);
        assert!(vb_v > 0.5 && vb_v < 0.9, "Vbe = {vb_v}");
        // Collector pulled down from 5 V but above saturation.
        assert!(vc_v < 5.0 && vc_v > 0.0, "Vc = {vc_v}");
    }

    #[test]
    fn nmos_inverter_high_input() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd").unknown();
        let vin = ckt.node("in").unknown();
        let vout = ckt.node("out").unknown();
        ckt.add(Device::VoltageSource(VoltageSource::new(
            "VDD",
            vdd,
            None,
            Waveform::Dc(3.3),
        )))
        .unwrap();
        ckt.add(Device::VoltageSource(VoltageSource::new(
            "VIN",
            vin,
            None,
            Waveform::Dc(3.3),
        )))
        .unwrap();
        ckt.add(Device::Resistor(Resistor::new("RL", vdd, vout, 10_000.0)))
            .unwrap();
        ckt.add(Device::Mosfet(Mosfet::new(
            "M1",
            vout,
            vin,
            None,
            MosPolarity::Nmos,
        )))
        .unwrap();
        let (sol, _) = solve(&mut ckt);
        let vout_v = sol.x[2];
        assert!(vout_v < 1.0, "inverter output should be low, got {vout_v}");
        // Consistency: load current equals device current.
        let il = (3.3 - vout_v) / 10_000.0;
        assert!(il > 1e-5);
    }

    #[test]
    fn floating_node_shunted_by_gmin_fails_or_resolves() {
        // A node connected only through a capacitor has no DC path: the
        // G matrix is singular without stepping. The solver must not hang;
        // either stepping resolves it (shunt defines the node) or it errors.
        use crate::devices::Capacitor;
        let mut ckt = Circuit::new();
        let a = ckt.node("a").unknown();
        let b = ckt.node("b").unknown();
        ckt.add(Device::VoltageSource(VoltageSource::new(
            "V1",
            a,
            None,
            Waveform::Dc(1.0),
        )))
        .unwrap();
        ckt.add(Device::Capacitor(Capacitor::new("C1", a, b, 1e-9)))
            .unwrap();
        ckt.add(Device::Resistor(Resistor::new("R1", a, None, 1000.0)))
            .unwrap();
        let mut sys = ckt.elaborate().unwrap();
        let result = dc_operating_point(&ckt, &mut sys, &NewtonOptions::default());
        // Singular without shunt; must terminate promptly either way.
        match result {
            Ok(sol) => assert!(sol.x[1].abs() < 1e-6),
            Err(e) => assert!(matches!(e, NewtonError::Lu(_))),
        }
    }
}
