//! Transient analysis (backward Euler) with a pluggable Jacobian sink.
//!
//! At every accepted timestep the converged state and the `G`/`C` matrices
//! are offered to a [`JacobianSink`]. MASC's whole premise lives in that
//! hook: the adjoint crate plugs in stores that keep the matrices raw in
//! memory, stream them to disk, or compress them with the spatiotemporal
//! compressor (paper Algorithm 2, lines 2–8).

use crate::circuit::{Circuit, System};
use crate::dc::{dc_operating_point_ws, DcSolution};
use crate::newton::{newton_solve, NewtonError, NewtonOptions};
use masc_sparse::{CsrMatrix, LuWorkspace};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A failure raised by a [`JacobianSink`] while persisting a step.
///
/// Sinks live above this crate (the adjoint crate's Jacobian stores), so
/// the payload is an opaque boxed error: a full disk, a compressor fault —
/// whatever kept the sink from accepting the step. The transient loop
/// aborts with [`TranError::Sink`] instead of panicking.
#[derive(Debug, Clone)]
pub struct SinkError(Arc<dyn std::error::Error + Send + Sync + 'static>);

impl SinkError {
    /// Wraps the underlying failure.
    pub fn new(source: impl std::error::Error + Send + Sync + 'static) -> Self {
        Self(Arc::new(source))
    }

    /// The wrapped failure.
    pub fn inner(&self) -> &(dyn std::error::Error + Send + Sync + 'static) {
        self.0.as_ref()
    }
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jacobian sink failed: {}", self.0)
    }
}

impl std::error::Error for SinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.0.as_ref() as &(dyn std::error::Error + 'static))
    }
}

/// Observer of per-step Jacobians during forward integration.
///
/// `step = 0` is the DC operating point (paper: "store `M₀`"); steps
/// `1..=n` are transient points. Implementations must not assume the
/// matrices outlive the call — copy or compress what they need.
pub trait JacobianSink {
    /// Called once per accepted step with the converged state and matrices.
    ///
    /// # Errors
    ///
    /// Returns [`SinkError`] when the step cannot be persisted (e.g. a
    /// full disk); the transient loop aborts with [`TranError::Sink`].
    fn on_step(
        &mut self,
        step: usize,
        t: f64,
        h: f64,
        x: &[f64],
        g: &CsrMatrix,
        c: &CsrMatrix,
    ) -> Result<(), SinkError>;

    /// Called once after the last accepted step, before the transient run
    /// returns. Asynchronous sinks drain their queues here so a persist
    /// failure detected after `on_step` returned still aborts the run
    /// (as [`TranError::Sink`] at the final step) instead of surfacing
    /// later — or never.
    ///
    /// # Errors
    ///
    /// Returns [`SinkError`] when a previously accepted step turned out
    /// not to be persistable.
    fn on_finish(&mut self) -> Result<(), SinkError> {
        Ok(())
    }
}

/// A sink that ignores everything (plain transient analysis).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl JacobianSink for NullSink {
    fn on_step(
        &mut self,
        _: usize,
        _: f64,
        _: f64,
        _: &[f64],
        _: &CsrMatrix,
        _: &CsrMatrix,
    ) -> Result<(), SinkError> {
        Ok(())
    }
}

/// Adaptive timestep controls (SPICE-style iteration-count heuristic).
#[derive(Debug, Clone, PartialEq)]
pub struct Adaptive {
    /// Smallest allowed step; a Newton failure below this aborts.
    pub h_min: f64,
    /// Largest allowed step.
    pub h_max: f64,
    /// Grow the step after a convergence in at most this many iterations.
    pub grow_below: usize,
    /// Shrink the step after needing at least this many iterations.
    pub shrink_above: usize,
}

/// Transient-analysis options.
#[derive(Debug, Clone, PartialEq)]
pub struct TranOptions {
    /// Stop time (s).
    pub t_stop: f64,
    /// Timestep (s): fixed, or the initial step in adaptive mode.
    pub dt: f64,
    /// Newton controls per step.
    pub newton: NewtonOptions,
    /// Adaptive stepping; `None` = fixed `dt`.
    pub adaptive: Option<Adaptive>,
}

impl TranOptions {
    /// Creates options for `[0, t_stop]` at a fixed `dt`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt <= t_stop`.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(dt > 0.0 && dt <= t_stop, "need 0 < dt <= t_stop");
        Self {
            t_stop,
            dt,
            newton: NewtonOptions::default(),
            adaptive: None,
        }
    }

    /// Enables adaptive stepping: `dt` becomes the initial step, growing to
    /// `h_max_factor·dt` when Newton converges quickly and shrinking to
    /// `dt/h_min_divisor` when it struggles — the step-size behavior the
    /// paper's `#Steps` counts come from.
    pub fn with_adaptive(mut self, h_max_factor: f64, h_min_divisor: f64) -> Self {
        self.adaptive = Some(Adaptive {
            h_min: self.dt / h_min_divisor.max(1.0),
            h_max: self.dt * h_max_factor.max(1.0),
            grow_below: 4,
            shrink_above: 12,
        });
        self
    }

    /// Number of transient steps (excluding DC) in *fixed* mode; adaptive
    /// runs determine their own count.
    pub fn step_count(&self) -> usize {
        (self.t_stop / self.dt).round() as usize
    }
}

/// Errors from transient analysis.
#[derive(Debug, Clone)]
pub enum TranError {
    /// The DC operating point failed.
    Dc(NewtonError),
    /// A transient step failed to converge.
    Step {
        /// The failing step index.
        step: usize,
        /// The failing time.
        t: f64,
        /// Underlying Newton failure.
        source: NewtonError,
    },
    /// The Jacobian sink rejected an accepted step (e.g. a full disk).
    Sink {
        /// The step the sink rejected.
        step: usize,
        /// The time of the rejected step.
        t: f64,
        /// Underlying sink failure.
        source: SinkError,
    },
}

impl std::fmt::Display for TranError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranError::Dc(e) => write!(f, "dc operating point failed: {e}"),
            TranError::Step { step, t, source } => {
                write!(f, "transient step {step} at t = {t:.3e} failed: {source}")
            }
            TranError::Sink { step, t, source } => {
                write!(f, "transient step {step} at t = {t:.3e}: {source}")
            }
        }
    }
}

impl std::error::Error for TranError {}

/// Timing and iteration statistics of a transient run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TranStats {
    /// Accepted transient steps (excluding DC).
    pub steps: usize,
    /// Total Newton iterations.
    pub newton_iterations: usize,
    /// Time factoring/solving linear systems.
    pub lu_time: Duration,
    /// Time in device evaluation (`T_Jac` of paper Table 1).
    pub device_eval_time: Duration,
    /// End-to-end wall time of the transient run.
    pub total_time: Duration,
}

/// The result of a transient run.
#[derive(Debug, Clone)]
pub struct TranResult {
    /// Time points `t₀ = 0, t₁, …, t_N`.
    pub times: Vec<f64>,
    /// Solution at each time point (`times.len()` × `n`).
    pub states: Vec<Vec<f64>>,
    /// Step sizes `h_n = t_n − t_{n−1}` (index 0 unused, set to `dt`).
    pub steps: Vec<f64>,
    /// Run statistics.
    pub stats: TranStats,
}

impl TranResult {
    /// Waveform of unknown `i` over time.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn waveform(&self, i: usize) -> Vec<f64> {
        self.states.iter().map(|x| x[i]).collect()
    }
}

/// Runs a backward-Euler transient analysis, feeding every accepted step's
/// Jacobians to `sink`.
///
/// # Errors
///
/// Returns [`TranError`] if the DC point or any step fails.
pub fn transient<S: JacobianSink>(
    circuit: &Circuit,
    system: &mut System,
    opts: &TranOptions,
    sink: &mut S,
) -> Result<TranResult, TranError> {
    let mut lu = LuWorkspace::new();
    transient_ws(circuit, system, opts, sink, &mut lu)
}

/// [`transient`] with a caller-provided LU workspace.
///
/// The workspace's symbolic analysis is computed once (at the first DC
/// factorization) and every subsequent Newton iteration of every timestep
/// refactors values-only into the same preallocated `L`/`U` storage.
/// `masc-sweep` passes workspaces pre-seeded with one shared
/// [`masc_sparse::SymbolicLu`] so N parameter variants skip even that
/// first analysis.
///
/// # Errors
///
/// Returns [`TranError`] if the DC point or any step fails.
pub fn transient_ws<S: JacobianSink>(
    circuit: &Circuit,
    system: &mut System,
    opts: &TranOptions,
    sink: &mut S,
    lu: &mut LuWorkspace,
) -> Result<TranResult, TranError> {
    let run_start = Instant::now();
    system.reset_stats();
    let n = system.n;
    let mut stats = TranStats::default();

    // DC operating point, offered to the sink as step 0.
    let DcSolution {
        x: mut x_prev,
        stats: dc_stats,
        ..
    } = dc_operating_point_ws(circuit, system, &opts.newton, lu).map_err(TranError::Dc)?;
    stats.newton_iterations += dc_stats.iterations;
    stats.lu_time += dc_stats.lu_time;

    let mut ev = system.new_evaluation();
    system.eval_into(circuit, &x_prev, 0.0, &mut ev);
    sink.on_step(0, 0.0, opts.dt, &x_prev, &ev.g, &ev.c)
        .map_err(|source| TranError::Sink {
            step: 0,
            t: 0.0,
            source,
        })?;

    let steps_estimate = opts.step_count();
    let mut times = Vec::with_capacity(steps_estimate + 1);
    let mut states = Vec::with_capacity(steps_estimate + 1);
    let mut hs = Vec::with_capacity(steps_estimate + 1);
    times.push(0.0);
    states.push(x_prev.clone());
    hs.push(opts.dt);

    let mut q_prev = ev.q.clone();
    let mut j = CsrMatrix::zeros(system.pattern.clone());
    let mut r = vec![0.0; n];
    let mut x = x_prev.clone();

    let mut t_now = 0.0f64;
    let mut h = opts.dt;
    let mut step = 0usize;
    let t_end = opts.t_stop * (1.0 - 1e-12);
    while t_now < t_end {
        step += 1;
        // Fixed mode keeps the uniform grid exactly; adaptive mode clamps
        // the final step to land on t_stop.
        let (t, h_used) = match &opts.adaptive {
            None => (step as f64 * opts.dt, opts.dt),
            Some(_) => {
                let h_clamped = h.min(opts.t_stop - t_now);
                (t_now + h_clamped, h_clamped)
            }
        };
        let attempt = newton_solve(&mut x, &opts.newton, lu, &mut j, &mut r, |x, r, j| {
            system.eval_into(circuit, x, t, &mut ev);
            for i in 0..n {
                r[i] = (ev.q[i] - q_prev[i]) / h_used + ev.f[i] + ev.b[i];
            }
            // J = G + C/h over the shared pattern.
            let jv = j.values_mut();
            jv.copy_from_slice(ev.g.values());
            for (jv, cv) in jv.iter_mut().zip(ev.c.values()) {
                *jv += cv / h_used;
            }
        });
        let newton = match (attempt, &opts.adaptive) {
            (Ok(newton), _) => newton,
            (Err(source), None) => return Err(TranError::Step { step, t, source }),
            (Err(source), Some(adaptive)) => {
                // Retry from the last accepted state with a smaller step.
                if h / 2.0 < adaptive.h_min {
                    return Err(TranError::Step { step, t, source });
                }
                h /= 2.0;
                x.copy_from_slice(&x_prev);
                step -= 1;
                continue;
            }
        };
        stats.newton_iterations += newton.iterations;
        stats.lu_time += newton.lu_time;

        // Refresh matrices at the converged point for the sink. A sink
        // failure aborts the whole run: the Newton accept path must not
        // keep integrating past a state the reverse pass can never read.
        system.eval_into(circuit, &x, t, &mut ev);
        sink.on_step(step, t, h_used, &x, &ev.g, &ev.c)
            .map_err(|source| TranError::Sink { step, t, source })?;

        q_prev.copy_from_slice(&ev.q);
        x_prev.copy_from_slice(&x);
        t_now = t;
        times.push(t);
        states.push(x.clone());
        hs.push(h_used);
        stats.steps += 1;

        if let Some(adaptive) = &opts.adaptive {
            if newton.iterations <= adaptive.grow_below {
                h = (h * 1.5).min(adaptive.h_max);
            } else if newton.iterations >= adaptive.shrink_above {
                h = (h * 0.5).max(adaptive.h_min);
            }
        }
    }

    // Drain asynchronous sinks: a queued step that failed to persist
    // after its on_step returned must still abort the run.
    sink.on_finish().map_err(|source| TranError::Sink {
        step,
        t: t_now,
        source,
    })?;

    stats.device_eval_time = system.device_eval_time();
    stats.total_time = run_start.elapsed();
    Ok(TranResult {
        times,
        states,
        steps: hs,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Device, Inductor, Resistor, VoltageSource};
    use crate::waveform::Waveform;

    /// RC charging circuit: V — R — node — C — gnd.
    fn rc_circuit(r: f64, c: f64, v: f64) -> (Circuit, System) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in").unknown();
        let vout = ckt.node("out").unknown();
        ckt.add(Device::VoltageSource(VoltageSource::new(
            "V1",
            vin,
            None,
            Waveform::Pulse {
                v1: 0.0,
                v2: v,
                td: 0.0,
                tr: 1e-9,
                tf: 1e-9,
                pw: 1.0,
                per: 2.0,
            },
        )))
        .unwrap();
        ckt.add(Device::Resistor(Resistor::new("R1", vin, vout, r)))
            .unwrap();
        ckt.add(Device::Capacitor(Capacitor::new("C1", vout, None, c)))
            .unwrap();
        let sys = ckt.elaborate().unwrap();
        (ckt, sys)
    }

    #[test]
    fn rc_charging_matches_analytic() {
        let (r, c, v) = (1000.0, 1e-6, 5.0);
        let tau = r * c;
        let (ckt, mut sys) = rc_circuit(r, c, v);
        let opts = TranOptions::new(5.0 * tau, tau / 200.0);
        let result = transient(&ckt, &mut sys, &opts, &mut NullSink).unwrap();
        // Compare v_out(t) against v(1 − e^{−t/τ}); BE at τ/200 is ~0.5 %.
        for (k, &t) in result.times.iter().enumerate().skip(10) {
            let analytic = v * (1.0 - (-t / tau).exp());
            let sim = result.states[k][1];
            assert!(
                (sim - analytic).abs() < 0.02 * v,
                "t = {t}: sim {sim} vs analytic {analytic}"
            );
        }
        assert_eq!(result.stats.steps, opts.step_count());
    }

    #[test]
    fn rlc_oscillation_period() {
        // Series RLC driven by a step; check ringing frequency ~ 1/(2π√LC).
        let mut ckt = Circuit::new();
        let vin = ckt.node("in").unknown();
        let mid = ckt.node("mid").unknown();
        let out = ckt.node("out").unknown();
        let (l, c): (f64, f64) = (1e-3, 1e-9);
        let period = 2.0 * std::f64::consts::PI * (l * c).sqrt();
        // A step input so the DC point (0 V) is away from the final value —
        // a DC source would start the run at equilibrium with no ringing.
        ckt.add(Device::VoltageSource(VoltageSource::new(
            "V1",
            vin,
            None,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                td: 0.0,
                tr: period / 100.0,
                tf: period / 100.0,
                pw: 1.0,
                per: 2.0,
            },
        )))
        .unwrap();
        ckt.add(Device::Resistor(Resistor::new("R1", vin, mid, 10.0)))
            .unwrap();
        ckt.add(Device::Inductor(Inductor::new("L1", mid, out, l)))
            .unwrap();
        ckt.add(Device::Capacitor(Capacitor::new("C1", out, None, c)))
            .unwrap();
        let mut sys = ckt.elaborate().unwrap();
        let opts = TranOptions::new(3.0 * period, period / 400.0);
        let result = transient(&ckt, &mut sys, &opts, &mut NullSink).unwrap();
        let wave = result.waveform(2); // v(out)
                                       // DC starts at 1.0 (inductor shorts at DC) — look for ringing
                                       // around 1.0 and measure the first two upward crossings.
        let mut crossings = Vec::new();
        for k in 1..wave.len() {
            if wave[k - 1] < 1.0 && wave[k] >= 1.0 {
                crossings.push(result.times[k]);
            }
        }
        assert!(
            crossings.len() >= 2,
            "expected ringing, wave head: {:?}",
            &wave[..10.min(wave.len())]
        );
        let measured = crossings[1] - crossings[0];
        assert!(
            (measured - period).abs() < 0.15 * period,
            "period {measured} vs {period}"
        );
    }

    #[test]
    fn sink_sees_every_step() {
        #[derive(Default)]
        struct Counter {
            calls: Vec<(usize, f64)>,
            nnz: usize,
        }
        impl JacobianSink for Counter {
            fn on_step(
                &mut self,
                step: usize,
                t: f64,
                _h: f64,
                _x: &[f64],
                g: &CsrMatrix,
                _c: &CsrMatrix,
            ) -> Result<(), SinkError> {
                self.calls.push((step, t));
                self.nnz = g.nnz();
                Ok(())
            }
        }
        let (ckt, mut sys) = rc_circuit(1000.0, 1e-6, 1.0);
        let opts = TranOptions::new(1e-3, 1e-4);
        let mut sink = Counter::default();
        let result = transient(&ckt, &mut sys, &opts, &mut sink).unwrap();
        assert_eq!(sink.calls.len(), result.times.len());
        assert_eq!(sink.calls[0], (0, 0.0));
        assert_eq!(sink.calls.last().unwrap().0, 10);
        assert!(sink.nnz > 0);
    }

    #[test]
    fn failing_sink_aborts_with_structured_error() {
        struct FailAfter(usize);
        impl JacobianSink for FailAfter {
            fn on_step(
                &mut self,
                step: usize,
                _: f64,
                _: f64,
                _: &[f64],
                _: &CsrMatrix,
                _: &CsrMatrix,
            ) -> Result<(), SinkError> {
                if step >= self.0 {
                    Err(SinkError::new(std::io::Error::other("disk full")))
                } else {
                    Ok(())
                }
            }
        }
        let (ckt, mut sys) = rc_circuit(1000.0, 1e-6, 1.0);
        let opts = TranOptions::new(1e-3, 1e-4);
        let err = transient(&ckt, &mut sys, &opts, &mut FailAfter(3)).unwrap_err();
        match err {
            TranError::Sink { step, source, .. } => {
                assert_eq!(step, 3);
                assert!(source.to_string().contains("disk full"));
            }
            other => panic!("expected sink error, got {other:?}"),
        }
    }

    #[test]
    fn dc_failure_is_reported() {
        // Two capacitors in series leave the middle node floating at DC
        // with no resistive path at all — DC must fail or settle to zero;
        // a circuit with *no* DC path from source cannot converge when the
        // matrix is singular even with shunts removed at the final stage.
        let mut ckt = Circuit::new();
        let a = ckt.node("a").unknown();
        ckt.add(Device::Capacitor(Capacitor::new("C1", a, None, 1e-9)))
            .unwrap();
        ckt.add(Device::Resistor(Resistor::new("R1", a, None, 1e3)))
            .unwrap();
        let mut sys = ckt.elaborate().unwrap();
        // This one actually converges (R defines the node): x = 0.
        let opts = TranOptions::new(1e-6, 1e-7);
        let result = transient(&ckt, &mut sys, &opts, &mut NullSink).unwrap();
        assert!(result.states.iter().all(|x| x[0].abs() < 1e-9));
    }

    #[test]
    fn stats_are_populated() {
        let (ckt, mut sys) = rc_circuit(1000.0, 1e-6, 1.0);
        let opts = TranOptions::new(1e-3, 1e-5);
        let result = transient(&ckt, &mut sys, &opts, &mut NullSink).unwrap();
        assert_eq!(result.stats.steps, 100);
        assert!(result.stats.newton_iterations >= 100);
        assert!(result.stats.total_time > Duration::ZERO);
        assert_eq!(result.steps.len(), result.times.len());
    }
}
