//! Netlist re-serialization: the inverse of [`crate::parser`].
//!
//! [`write_netlist`] renders a parsed circuit back into SPICE card text
//! that [`parse_netlist`](crate::parser::parse_netlist) accepts. The
//! conformance harness uses it as a differential oracle: a deck that
//! parses must survive a serialize → re-parse round trip with the same
//! devices, nodes, and parameter values.
//!
//! Values are written in Rust's shortest-round-trip float notation (plain
//! or scientific), which `parse_value` accepts verbatim; non-finite values
//! (reachable through overflowing literals like `1e999`) are spelled as
//! overflowing literals again.

use crate::circuit::Circuit;
use crate::devices::Device;
use crate::parser::ParsedNetlist;
use crate::stamp::Unknown;
use crate::waveform::Waveform;
use std::fmt::Write as _;

/// Formats a value so `parse_value` reads back the same `f64`.
fn value(v: f64) -> String {
    if v.is_nan() {
        // Not reachable from parsed decks (`parse_value` rejects "nan"),
        // but keep the writer total.
        "0".to_string()
    } else if v == f64::INFINITY {
        "1e999".to_string()
    } else if v == f64::NEG_INFINITY {
        "-1e999".to_string()
    } else {
        format!("{v:?}")
    }
}

fn waveform(w: &Waveform) -> String {
    match w {
        Waveform::Dc(v) => format!("DC {}", value(*v)),
        Waveform::Pulse {
            v1,
            v2,
            td,
            tr,
            tf,
            pw,
            per,
        } => format!(
            "PULSE({} {} {} {} {} {} {})",
            value(*v1),
            value(*v2),
            value(*td),
            value(*tr),
            value(*tf),
            value(*pw),
            value(*per)
        ),
        Waveform::Sin {
            vo,
            va,
            freq,
            td,
            theta,
        } => format!(
            "SIN({} {} {} {} {})",
            value(*vo),
            value(*va),
            value(*freq),
            value(*td),
            value(*theta)
        ),
        Waveform::Pwl(points) => {
            if points.is_empty() {
                // Unreachable from the parser (PWL needs ≥ 1 corner).
                return "DC 0".to_string();
            }
            let mut s = String::from("PWL(");
            for (i, (t, v)) in points.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                let _ = write!(s, "{} {}", value(*t), value(*v));
            }
            s.push(')');
            s
        }
    }
}

/// Renders one device as a netlist card (without trailing newline).
fn card(circuit: &Circuit, device: &Device) -> String {
    let node = |u: Unknown| -> String {
        match u {
            None => "0".to_string(),
            Some(i) => circuit.node_name(i).to_string(),
        }
    };
    // Terminal nodes are the leading entries of `unknowns()`; branch
    // unknowns (inductor / voltage-source / VCVS current) come after and
    // are not part of the card.
    let terminals = |n: usize| -> String {
        device.unknowns()[..n]
            .iter()
            .map(|&u| node(u))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let name = device.name();
    match device {
        Device::Resistor(r) => format!("{name} {} {}", terminals(2), value(r.resistance)),
        Device::Capacitor(c) => format!("{name} {} {}", terminals(2), value(c.capacitance)),
        Device::Inductor(l) => format!("{name} {} {}", terminals(2), value(l.inductance)),
        Device::VoltageSource(v) => format!("{name} {} {}", terminals(2), waveform(&v.waveform)),
        Device::CurrentSource(i) => format!("{name} {} {}", terminals(2), waveform(&i.waveform)),
        Device::Diode(d) => format!(
            "{name} {} IS={} N={} CJ0={} VJ={} M={}",
            terminals(2),
            value(d.is_sat),
            value(d.n_emission),
            value(d.cj0),
            value(d.vj),
            value(d.mj)
        ),
        Device::Bjt(q) => format!(
            "{name} {} {} IS={} BF={} BR={} TF={} TR={}",
            terminals(3),
            match q.polarity {
                crate::devices::BjtPolarity::Npn => "NPN",
                crate::devices::BjtPolarity::Pnp => "PNP",
            },
            value(q.is_sat),
            value(q.beta_f),
            value(q.beta_r),
            value(q.tf),
            value(q.tr)
        ),
        Device::Mosfet(m) => format!(
            "{name} {} {} KP={} VT0={} LAMBDA={} W={} L={} CGS={} CGD={}",
            terminals(3),
            match m.polarity {
                crate::devices::MosPolarity::Nmos => "NMOS",
                crate::devices::MosPolarity::Pmos => "PMOS",
            },
            value(m.kp),
            value(m.vt0),
            value(m.lambda),
            value(m.w),
            value(m.l),
            value(m.cgs),
            value(m.cgd)
        ),
        Device::Vccs(g) => format!("{name} {} {}", terminals(4), value(g.gm)),
        Device::Vcvs(e) => format!("{name} {} {}", terminals(4), value(e.gain)),
    }
}

/// Renders a parsed netlist back into SPICE card text.
///
/// The output always starts with a title line (the parsed title, or a
/// placeholder comment) so the first card is never mistaken for a title,
/// and always ends with `.end`.
pub fn write_netlist(parsed: &ParsedNetlist) -> String {
    let mut out = String::new();
    match &parsed.title {
        // A multi-line title cannot have survived parsing, but never let
        // one smuggle extra cards into the output.
        Some(t) if !t.contains('\n') && !t.contains('\r') => {
            out.push_str(t);
            out.push('\n');
        }
        _ => out.push_str("* regenerated netlist\n"),
    }
    for device in parsed.circuit.devices() {
        out.push_str(&card(&parsed.circuit, device));
        out.push('\n');
    }
    if let Some(tran) = &parsed.tran {
        let _ = writeln!(out, ".tran {} {}", value(tran.dt), value(tran.t_stop));
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_netlist;

    const DECK: &str = "\
demo deck
V1 in 0 SIN(0 1.5 1e6 0 0)
R1 in out 1000.0
C1 out 0 1e-9
D1 out 0 IS=1e-14 N=1.5 CJ0=2e-12 VJ=0.7 M=0.4
Q1 out b 0 PNP IS=1e-15 BF=120.0 BR=2.0 TF=1e-10 TR=1e-9
M1 out g 0 NMOS KP=0.0002 VT0=0.6 LAMBDA=0.01 W=1e-5 L=1e-6 CGS=1e-15 CGD=1e-15
G1 out 0 in 0 0.001
E1 e1p 0 in 0 2.5
L1 e1p 0 1e-6
I1 0 in DC 0.001
.tran 1e-9 1e-7
.end
";

    #[test]
    fn round_trip_preserves_devices_and_params() {
        let p1 = parse_netlist(DECK).expect("valid deck");
        let text = write_netlist(&p1);
        let p2 = parse_netlist(&text).expect("regenerated deck parses");
        assert_eq!(p1.circuit.devices().len(), p2.circuit.devices().len());
        assert_eq!(p1.circuit.node_count(), p2.circuit.node_count());
        let params1 = p1.circuit.params();
        let params2 = p2.circuit.params();
        assert_eq!(params1.len(), params2.len());
        for (a, b) in params1.iter().zip(&params2) {
            assert_eq!(
                p1.circuit.param_value(a).to_bits(),
                p2.circuit.param_value(b).to_bits()
            );
        }
        assert_eq!(p1.title, p2.title);
        let (t1, t2) = (p1.tran.expect("tran"), p2.tran.expect("tran"));
        assert_eq!(t1.dt.to_bits(), t2.dt.to_bits());
        assert_eq!(t1.t_stop.to_bits(), t2.t_stop.to_bits());
    }

    #[test]
    fn overflowed_values_stay_non_finite() {
        let p = parse_netlist("t\nV1 a 0 DC 5\nR1 a 0 1e999\n.end\n").expect("parses");
        let text = write_netlist(&p);
        let p2 = parse_netlist(&text).expect("re-parses");
        match &p2.circuit.devices()[1] {
            Device::Resistor(r) => assert_eq!(r.resistance, f64::INFINITY),
            other => panic!("unexpected device {other:?}"),
        }
    }
}
