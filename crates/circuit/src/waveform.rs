//! Time-dependent source waveforms (DC, PULSE, SIN, PWL).
//!
//! These mirror the SPICE independent-source transient specifications that
//! the paper's workloads (digital MOS circuits, BJT chips, RC networks) are
//! driven with.

/// A source waveform `v(t)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE PULSE(v1 v2 td tr tf pw per).
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge.
        td: f64,
        /// Rise time.
        tr: f64,
        /// Fall time.
        tf: f64,
        /// Pulse width at `v2`.
        pw: f64,
        /// Period.
        per: f64,
    },
    /// SPICE SIN(vo va freq td theta): `vo + va·sin(2πf(t−td))·e^{−θ(t−td)}`.
    Sin {
        /// Offset.
        vo: f64,
        /// Amplitude.
        va: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Delay.
        td: f64,
        /// Damping factor.
        theta: f64,
    },
    /// Piecewise-linear `(t, v)` corner list (sorted by `t`).
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Waveform value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                td,
                tr,
                tf,
                pw,
                per,
            } => {
                if t < *td {
                    return *v1;
                }
                let per = if *per > 0.0 { *per } else { f64::INFINITY };
                let tau = (t - td) % per;
                let tr = tr.max(1e-15);
                let tf = tf.max(1e-15);
                if tau < tr {
                    v1 + (v2 - v1) * tau / tr
                } else if tau < tr + pw {
                    *v2
                } else if tau < tr + pw + tf {
                    v2 + (v1 - v2) * (tau - tr - pw) / tf
                } else {
                    *v1
                }
            }
            Waveform::Sin {
                vo,
                va,
                freq,
                td,
                theta,
            } => {
                if t < *td {
                    *vo
                } else {
                    let dt = t - td;
                    vo + va * (2.0 * std::f64::consts::PI * freq * dt).sin() * (-theta * dt).exp()
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty").1
            }
        }
    }

    /// Derivative of the value with respect to the *scale* parameter:
    /// DC value for [`Waveform::Dc`], amplitude `va` for [`Waveform::Sin`],
    /// pulsed level `v2` for [`Waveform::Pulse`], and the uniform vertical
    /// scale for [`Waveform::Pwl`].
    ///
    /// Sensitivity analyses treat the source "level" as the parameter, so
    /// each waveform exposes exactly one scale knob.
    pub fn dvalue_dscale(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(_) => 1.0,
            Waveform::Pulse { v1, v2, .. } => {
                if *v2 == *v1 {
                    // Degenerate pulse: treat as DC.
                    1.0
                } else {
                    // d value / d v2 at fixed v1.
                    (self.value(t) - v1) / (v2 - v1)
                }
            }
            Waveform::Sin {
                va,
                vo,
                freq,
                td,
                theta,
            } => {
                if t < *td || *va == 0.0 {
                    0.0
                } else {
                    let _ = (vo, freq, theta);
                    (self.value(t) - vo) / va
                }
            }
            Waveform::Pwl(_) => {
                // Uniform vertical scale s·v(t): derivative at s=1 is v(t).
                self.value(t)
            }
        }
    }

    /// The scale parameter's current value (see [`Waveform::dvalue_dscale`]).
    pub fn scale(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse { v2, .. } => *v2,
            Waveform::Sin { va, .. } => *va,
            Waveform::Pwl(_) => 1.0,
        }
    }

    /// Sets the scale parameter (see [`Waveform::dvalue_dscale`]).
    pub fn set_scale(&mut self, s: f64) {
        match self {
            Waveform::Dc(v) => *v = s,
            Waveform::Pulse { v2, .. } => *v2 = s,
            Waveform::Sin { va, .. } => *va = s,
            Waveform::Pwl(points) => {
                // Interpreted as multiplying all corners by s (relative to
                // the current shape); used only by finite-difference tests.
                for p in points.iter_mut() {
                    p.1 *= s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(3.3);
        assert_eq!(w.value(0.0), 3.3);
        assert_eq!(w.value(1e9), 3.3);
        assert_eq!(w.dvalue_dscale(5.0), 1.0);
    }

    #[test]
    fn pulse_phases() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 5.0,
            td: 1.0,
            tr: 1.0,
            tf: 1.0,
            pw: 2.0,
            per: 10.0,
        };
        assert_eq!(w.value(0.5), 0.0); // before delay
        assert!((w.value(1.5) - 2.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.value(2.5), 5.0); // plateau
        assert!((w.value(4.5) - 2.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.value(6.0), 0.0); // low
        assert_eq!(w.value(12.5), 5.0); // next period plateau
    }

    #[test]
    fn pulse_scale_derivative_tracks_shape() {
        let w = Waveform::Pulse {
            v1: 1.0,
            v2: 3.0,
            td: 0.0,
            tr: 1.0,
            tf: 1.0,
            pw: 1.0,
            per: 0.0,
        };
        assert_eq!(w.dvalue_dscale(0.5), 0.5); // mid-rise: halfway to v2
        assert_eq!(w.dvalue_dscale(1.5), 1.0); // plateau: fully v2
    }

    #[test]
    fn sin_basics() {
        let w = Waveform::Sin {
            vo: 1.0,
            va: 2.0,
            freq: 1.0,
            td: 0.0,
            theta: 0.0,
        };
        assert!((w.value(0.0) - 1.0).abs() < 1e-12);
        assert!((w.value(0.25) - 3.0).abs() < 1e-12);
        assert!((w.value(0.75) + 1.0).abs() < 1e-12);
        assert!((w.dvalue_dscale(0.25) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sin_damping() {
        let w = Waveform::Sin {
            vo: 0.0,
            va: 1.0,
            freq: 1.0,
            td: 0.0,
            theta: 1.0,
        };
        let peak1 = w.value(0.25);
        let peak2 = w.value(1.25);
        assert!(peak2 < peak1);
    }

    #[test]
    fn pwl_interpolation_and_clamping() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, -2.0)]);
        assert_eq!(w.value(-1.0), 0.0);
        assert!((w.value(0.5) - 1.0).abs() < 1e-12);
        assert!((w.value(2.0) - 0.0).abs() < 1e-12);
        assert_eq!(w.value(10.0), -2.0);
    }

    #[test]
    fn scale_round_trip() {
        let mut w = Waveform::Dc(2.0);
        w.set_scale(4.0);
        assert_eq!(w.scale(), 4.0);
        assert_eq!(w.value(0.0), 4.0);

        let mut w = Waveform::Sin {
            vo: 0.0,
            va: 1.0,
            freq: 1.0,
            td: 0.0,
            theta: 0.0,
        };
        w.set_scale(3.0);
        assert_eq!(w.scale(), 3.0);
    }

    #[test]
    fn scale_derivative_matches_finite_difference() {
        let base = Waveform::Sin {
            vo: 0.5,
            va: 2.0,
            freq: 3.0,
            td: 0.1,
            theta: 0.2,
        };
        for &t in &[0.0, 0.2, 0.37, 1.0] {
            let eps = 1e-6;
            let mut hi = base.clone();
            hi.set_scale(base.scale() + eps);
            let mut lo = base.clone();
            lo.set_scale(base.scale() - eps);
            let fd = (hi.value(t) - lo.value(t)) / (2.0 * eps);
            assert!(
                (base.dvalue_dscale(t) - fd).abs() < 1e-6,
                "t={t}: analytic {} vs fd {fd}",
                base.dvalue_dscale(t)
            );
        }
    }
}
