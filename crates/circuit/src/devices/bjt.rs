//! NPN bipolar transistor: Ebers–Moll transport form with diffusion
//! capacitance.
//!
//! Currents (into each terminal, with `eF = exp(Vbe/VT) − 1`,
//! `eR = exp(Vbc/VT) − 1` via the limited exponential):
//!
//! ```text
//! ICT = IS (eF − eR)            transport current, C → E
//! IBE = (IS/βF) eF              base–emitter recombination
//! IBC = (IS/βR) eR              base–collector recombination
//! IC  =  ICT − IBC
//! IB  =  IBE + IBC
//! IE  = −ICT − IBE
//! ```
//!
//! Diffusion charges `q_be = TF·IS·eF` (between B and E) and
//! `q_bc = TR·IS·eR` (between B and C) give the state-dependent `C` matrix.
//! GMIN conductances across both junctions aid convergence.

use super::{limexp, DeviceImpl, GMIN, VT};
use crate::stamp::{EvalContext, ParamDerivContext, Reserver, Unknown};

/// Bipolar transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BjtPolarity {
    /// NPN.
    Npn,
    /// PNP (mirrored junctions: `I_pnp(v) = −I_npn(−v)`).
    Pnp,
}

/// A bipolar transistor (Ebers–Moll transport form).
#[derive(Debug, Clone, PartialEq)]
pub struct Bjt {
    name: String,
    collector: Unknown,
    base: Unknown,
    emitter: Unknown,
    /// Device polarity (default NPN).
    pub polarity: BjtPolarity,
    /// Transport saturation current `IS` (A).
    pub is_sat: f64,
    /// Forward beta `BF`.
    pub beta_f: f64,
    /// Reverse beta `BR`.
    pub beta_r: f64,
    /// Forward transit time `TF` (s); scales the B–E diffusion charge.
    pub tf: f64,
    /// Reverse transit time `TR` (s); scales the B–C diffusion charge.
    pub tr: f64,
}

/// All junction currents and conductances at one bias point.
#[derive(Debug, Clone, Copy, Default)]
struct BjtOp {
    ic: f64,
    ib: f64,
    ie: f64,
    /// d(ic)/dVbe, d(ic)/dVbc, …
    dic_dvbe: f64,
    dic_dvbc: f64,
    dib_dvbe: f64,
    dib_dvbc: f64,
    /// Diffusion charges and their derivatives.
    qbe: f64,
    qbc: f64,
    dqbe_dvbe: f64,
    dqbc_dvbc: f64,
}

impl Bjt {
    /// Creates an NPN with defaults `IS = 1e-16`, `BF = 100`, `BR = 1`,
    /// `TF = 0`, `TR = 0`.
    pub fn new(
        name: impl Into<String>,
        collector: Unknown,
        base: Unknown,
        emitter: Unknown,
    ) -> Self {
        Self {
            name: name.into(),
            collector,
            base,
            emitter,
            polarity: BjtPolarity::Npn,
            is_sat: 1e-16,
            beta_f: 100.0,
            beta_r: 1.0,
            tf: 0.0,
            tr: 0.0,
        }
    }

    /// Enables diffusion capacitance via forward/reverse transit times.
    pub fn with_transit_times(mut self, tf: f64, tr: f64) -> Self {
        self.tf = tf;
        self.tr = tr;
        self
    }

    /// Sets the polarity (PNP mirrors all junction voltages and currents).
    pub fn with_polarity(mut self, polarity: BjtPolarity) -> Self {
        self.polarity = polarity;
        self
    }

    fn sign(&self) -> f64 {
        match self.polarity {
            BjtPolarity::Npn => 1.0,
            BjtPolarity::Pnp => -1.0,
        }
    }

    fn op(&self, vbe: f64, vbc: f64) -> BjtOp {
        let (ef, def) = limexp(vbe / VT);
        let (er, der) = limexp(vbc / VT);
        let ef1 = ef - 1.0;
        let er1 = er - 1.0;
        let is = self.is_sat;
        let ict = is * (ef1 - er1);
        let ibe = is / self.beta_f * ef1 + GMIN * vbe;
        let ibc = is / self.beta_r * er1 + GMIN * vbc;
        let dict_dvbe = is * def / VT;
        let dict_dvbc = -is * der / VT;
        let dibe_dvbe = is / self.beta_f * def / VT + GMIN;
        let dibc_dvbc = is / self.beta_r * der / VT + GMIN;
        BjtOp {
            ic: ict - ibc,
            ib: ibe + ibc,
            ie: -ict - ibe,
            dic_dvbe: dict_dvbe,
            dic_dvbc: dict_dvbc - dibc_dvbc,
            dib_dvbe: dibe_dvbe,
            dib_dvbc: dibc_dvbc,
            qbe: self.tf * is * ef1,
            qbc: self.tr * is * er1,
            dqbe_dvbe: self.tf * is * def / VT,
            dqbc_dvbc: self.tr * is * der / VT,
        }
    }
}

impl DeviceImpl for Bjt {
    fn name(&self) -> &str {
        &self.name
    }

    fn reserve(&self, res: &mut Reserver<'_>) {
        let (c, b, e) = (self.collector, self.base, self.emitter);
        // Full 3×3 coupling block in G.
        for &row in &[c, b, e] {
            for &col in &[c, b, e] {
                res.reserve_g(row, col);
            }
        }
        if self.tf != 0.0 {
            res.reserve_c_pair(self.base, self.emitter);
        }
        if self.tr != 0.0 {
            res.reserve_c_pair(self.base, self.collector);
        }
    }

    fn eval(&self, ctx: &mut EvalContext<'_>) {
        let (c, b, e) = (self.collector, self.base, self.emitter);
        let s = self.sign();
        // Polarity mirroring: I_pnp(v) = −I_npn(−v). Conductances and
        // capacitances pick up s² = 1 and are unchanged; currents and
        // charges are negated.
        let vbe = s * (ctx.value(b) - ctx.value(e));
        let vbc = s * (ctx.value(b) - ctx.value(c));
        let op = self.op(vbe, vbc);

        ctx.add_f(c, s * op.ic);
        ctx.add_f(b, s * op.ib);
        ctx.add_f(e, s * op.ie);

        // Chain rule: ∂/∂Vb = ∂/∂Vbe + ∂/∂Vbc, ∂/∂Ve = −∂/∂Vbe,
        // ∂/∂Vc = −∂/∂Vbc. KCL guarantees column sums cancel for the
        // emitter row, derived from ie = −(ic + ib).
        let die_dvbe = -(op.dic_dvbe + op.dib_dvbe);
        let die_dvbc = -(op.dic_dvbc + op.dib_dvbc);

        ctx.add_g(c, b, op.dic_dvbe + op.dic_dvbc);
        ctx.add_g(c, e, -op.dic_dvbe);
        ctx.add_g(c, c, -op.dic_dvbc);

        ctx.add_g(b, b, op.dib_dvbe + op.dib_dvbc);
        ctx.add_g(b, e, -op.dib_dvbe);
        ctx.add_g(b, c, -op.dib_dvbc);

        ctx.add_g(e, b, die_dvbe + die_dvbc);
        ctx.add_g(e, e, -die_dvbe);
        ctx.add_g(e, c, -die_dvbc);

        if self.tf != 0.0 {
            ctx.add_q(b, s * op.qbe);
            ctx.add_q(e, -s * op.qbe);
            let cd = op.dqbe_dvbe;
            ctx.add_c(b, b, cd);
            ctx.add_c(e, e, cd);
            ctx.add_c(b, e, -cd);
            ctx.add_c(e, b, -cd);
        }
        if self.tr != 0.0 {
            ctx.add_q(b, s * op.qbc);
            ctx.add_q(c, -s * op.qbc);
            let cd = op.dqbc_dvbc;
            ctx.add_c(b, b, cd);
            ctx.add_c(c, c, cd);
            ctx.add_c(b, c, -cd);
            ctx.add_c(c, b, -cd);
        }
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["is", "bf", "br", "tf", "tr"]
    }

    fn param(&self, i: usize) -> f64 {
        match i {
            0 => self.is_sat,
            1 => self.beta_f,
            2 => self.beta_r,
            3 => self.tf,
            4 => self.tr,
            _ => panic!("bjt has 5 parameters, asked for {i}"),
        }
    }

    fn set_param(&mut self, i: usize, value: f64) {
        match i {
            0 => self.is_sat = value,
            1 => self.beta_f = value,
            2 => self.beta_r = value,
            3 => self.tf = value,
            4 => self.tr = value,
            _ => panic!("bjt has 5 parameters, asked for {i}"),
        }
    }

    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        let (c, b, e) = (self.collector, self.base, self.emitter);
        // Parameter derivatives mirror like the currents:
        // ∂I_pnp/∂p = −∂I_npn/∂p evaluated at mirrored voltages.
        let s = self.sign();
        let vbe = s * (ctx.value(b) - ctx.value(e));
        let vbc = s * (ctx.value(b) - ctx.value(c));
        let (ef, _) = limexp(vbe / VT);
        let (er, _) = limexp(vbc / VT);
        let (ef1, er1) = (ef - 1.0, er - 1.0);
        match i {
            0 => {
                // Everything scales linearly with IS (except GMIN terms).
                let dict = ef1 - er1;
                let dibe = ef1 / self.beta_f;
                let dibc = er1 / self.beta_r;
                ctx.add_df(c, s * (dict - dibc));
                ctx.add_df(b, s * (dibe + dibc));
                ctx.add_df(e, s * (-dict - dibe));
                if self.tf != 0.0 {
                    ctx.add_dq(b, s * self.tf * ef1);
                    ctx.add_dq(e, -s * self.tf * ef1);
                }
                if self.tr != 0.0 {
                    ctx.add_dq(b, s * self.tr * er1);
                    ctx.add_dq(c, -s * self.tr * er1);
                }
            }
            1 => {
                // ∂IBE/∂βF = −IS eF1/βF².
                let d = -s * self.is_sat * ef1 / (self.beta_f * self.beta_f);
                ctx.add_df(b, d);
                ctx.add_df(e, -d);
            }
            2 => {
                // ∂IBC/∂βR = −IS eR1/βR²; IBC appears in IC (−) and IB (+).
                let d = -s * self.is_sat * er1 / (self.beta_r * self.beta_r);
                ctx.add_df(c, -d);
                ctx.add_df(b, d);
            }
            3 => {
                // ∂q_be/∂TF = IS eF1.
                let d = s * self.is_sat * ef1;
                ctx.add_dq(b, d);
                ctx.add_dq(e, -d);
            }
            4 => {
                let d = s * self.is_sat * er1;
                ctx.add_dq(b, d);
                ctx.add_dq(c, -d);
            }
            _ => panic!("bjt has 5 parameters, asked for {i}"),
        }
    }

    fn unknowns(&self) -> Vec<Unknown> {
        vec![self.collector, self.base, self.emitter]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::TripletMatrix;

    fn eval_at(
        bjt: &Bjt,
        x: &[f64; 3],
    ) -> (
        Vec<f64>,
        Vec<f64>,
        masc_sparse::CsrMatrix,
        masc_sparse::CsrMatrix,
    ) {
        let mut gt = TripletMatrix::new(3, 3);
        let mut ct = TripletMatrix::new(3, 3);
        {
            let mut res = Reserver::new(&mut gt, &mut ct);
            bjt.reserve(&mut res);
        }
        let mut g = gt.to_csr();
        let mut c = ct.to_csr();
        let (mut f, mut q, mut b) = (vec![0.0; 3], vec![0.0; 3], vec![0.0; 3]);
        bjt.eval(&mut EvalContext {
            x,
            t: 0.0,
            g: &mut g,
            c: &mut c,
            f: &mut f,
            q: &mut q,
            b: &mut b,
        });
        (f, q, g, c)
    }

    fn forward_active() -> ([f64; 3], Bjt) {
        // x = [Vc, Vb, Ve]: forward active — Vbe = 0.65, Vbc = −2.35.
        let x = [3.0, 0.65, 0.0];
        let q = Bjt::new("Q1", Some(0), Some(1), Some(2)).with_transit_times(1e-9, 10e-9);
        (x, q)
    }

    #[test]
    fn kcl_currents_sum_to_zero() {
        let (x, q) = forward_active();
        let (f, _, _, _) = eval_at(&q, &x);
        let total: f64 = f.iter().sum();
        assert!(total.abs() < 1e-18, "sum of terminal currents = {total}");
    }

    #[test]
    fn forward_active_gain() {
        let (x, q) = forward_active();
        let (f, _, _, _) = eval_at(&q, &x);
        let (ic, ib) = (f[0], f[1]);
        assert!(ic > 0.0 && ib > 0.0);
        let beta = ic / ib;
        assert!(
            (beta - q.beta_f).abs() / q.beta_f < 0.05,
            "effective beta {beta}"
        );
    }

    #[test]
    fn jacobian_matches_fd() {
        let (x, q) = forward_active();
        let (_, _, g, _) = eval_at(&q, &x);
        let eps = 1e-8;
        for col in 0..3 {
            let mut xp = x;
            xp[col] += eps;
            let (fp, _, _, _) = eval_at(&q, &xp);
            let mut xm = x;
            xm[col] -= eps;
            let (fm, _, _, _) = eval_at(&q, &xm);
            for row in 0..3 {
                let fd = (fp[row] - fm[row]) / (2.0 * eps);
                let analytic = g.get(row, col).unwrap_or(0.0);
                assert!(
                    (analytic - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "G[{row},{col}] = {analytic} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn c_matrix_matches_fd_of_charge() {
        let (x, q) = forward_active();
        let (_, _, _, c) = eval_at(&q, &x);
        let eps = 1e-8;
        for col in 0..3 {
            let mut xp = x;
            xp[col] += eps;
            let (_, qp, _, _) = eval_at(&q, &xp);
            let mut xm = x;
            xm[col] -= eps;
            let (_, qm, _, _) = eval_at(&q, &xm);
            for row in 0..3 {
                let fd = (qp[row] - qm[row]) / (2.0 * eps);
                let analytic = c.get(row, col).unwrap_or(0.0);
                assert!(
                    (analytic - fd).abs() < 1e-4 * (1e-12 + fd.abs()),
                    "C[{row},{col}] = {analytic} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn param_derivs_match_fd() {
        let (x, base) = forward_active();
        for p in 0..5 {
            let mut df = vec![0.0; 3];
            let mut dq = vec![0.0; 3];
            let mut db = vec![0.0; 3];
            base.stamp_param_deriv(
                p,
                &mut ParamDerivContext {
                    x: &x,
                    t: 0.0,
                    df_dp: &mut df,
                    dq_dp: &mut dq,
                    db_dp: &mut db,
                },
            );
            let v0 = base.param(p);
            let eps = (v0.abs() * 1e-3).max(1e-20);
            let eval_param = |pv: f64| {
                let mut d = base.clone();
                d.set_param(p, pv);
                let (f, q, _, _) = eval_at(&d, &x);
                (f, q)
            };
            let (f_hi, q_hi) = eval_param(v0 + eps);
            let (f_lo, q_lo) = eval_param(v0 - eps);
            for r in 0..3 {
                let fd_f = (f_hi[r] - f_lo[r]) / (2.0 * eps);
                let fd_q = (q_hi[r] - q_lo[r]) / (2.0 * eps);
                assert!(
                    (df[r] - fd_f).abs() < 1e-4 * (1.0 + fd_f.abs()),
                    "param {p} df[{r}] {} vs {fd_f}",
                    df[r]
                );
                assert!(
                    (dq[r] - fd_q).abs() < 1e-4 * (1e-15 + fd_q.abs()),
                    "param {p} dq[{r}] {} vs {fd_q}",
                    dq[r]
                );
            }
        }
    }

    #[test]
    fn pnp_mirrors_npn_exactly() {
        let npn = Bjt::new("QN", Some(0), Some(1), Some(2)).with_transit_times(1e-9, 5e-9);
        let pnp = Bjt::new("QP", Some(0), Some(1), Some(2))
            .with_transit_times(1e-9, 5e-9)
            .with_polarity(BjtPolarity::Pnp);
        let xn = [3.0, 0.65, 0.0];
        let xp = [-3.0, -0.65, 0.0];
        let (fn_, qn, gn, cn) = eval_at(&npn, &xn);
        let (fp, qp, gp, cp) = eval_at(&pnp, &xp);
        for k in 0..3 {
            assert!((fn_[k] + fp[k]).abs() < 1e-18, "f[{k}]");
            assert!((qn[k] + qp[k]).abs() < 1e-24, "q[{k}]");
        }
        // Conductances and capacitances are even under mirroring.
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(gn.get(r, c), gp.get(r, c), "G[{r},{c}]");
                assert_eq!(cn.get(r, c), cp.get(r, c), "C[{r},{c}]");
            }
        }
    }

    #[test]
    fn pnp_param_derivs_mirror() {
        let pnp = Bjt::new("QP", Some(0), Some(1), Some(2))
            .with_transit_times(1e-9, 5e-9)
            .with_polarity(BjtPolarity::Pnp);
        let npn = Bjt::new("QN", Some(0), Some(1), Some(2)).with_transit_times(1e-9, 5e-9);
        let xp = [-3.0, -0.65, 0.0];
        let xn = [3.0, 0.65, 0.0];
        for p in 0..5 {
            let run = |dev: &Bjt, x: &[f64; 3]| {
                let mut df = vec![0.0; 3];
                let mut dq = vec![0.0; 3];
                let mut db = vec![0.0; 3];
                dev.stamp_param_deriv(
                    p,
                    &mut ParamDerivContext {
                        x,
                        t: 0.0,
                        df_dp: &mut df,
                        dq_dp: &mut dq,
                        db_dp: &mut db,
                    },
                );
                (df, dq)
            };
            let (dfn, dqn) = run(&npn, &xn);
            let (dfp, dqp) = run(&pnp, &xp);
            for k in 0..3 {
                assert!((dfn[k] + dfp[k]).abs() < 1e-24, "param {p} df[{k}]");
                assert!((dqn[k] + dqp[k]).abs() < 1e-30, "param {p} dq[{k}]");
            }
        }
    }

    #[test]
    fn saturation_region_conducts_both_junctions() {
        // Vbe = 0.7, Vbc = 0.5: both junctions forward.
        let x = [0.2, 0.7, 0.0];
        let q = Bjt::new("Q1", Some(0), Some(1), Some(2));
        let (f, _, _, _) = eval_at(&q, &x);
        assert!(f[1] > 0.0); // base current flows
        let total: f64 = f.iter().sum();
        assert!(total.abs() < 1e-18);
    }
}
