//! Independent voltage and current sources.

use super::DeviceImpl;
use crate::stamp::{EvalContext, ParamDerivContext, Reserver, Unknown};
use crate::waveform::Waveform;

/// An independent voltage source; introduces a branch-current unknown.
///
/// Branch residual: `va − vb − V(t) = 0`; KCL rows receive `±i`.
/// The sensitivity parameter is the waveform's scale (DC level, pulse
/// level, or sine amplitude — see [`Waveform::dvalue_dscale`]).
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageSource {
    name: String,
    a: Unknown,
    b: Unknown,
    pub(crate) branch: Unknown,
    /// The source waveform.
    pub waveform: Waveform,
}

impl VoltageSource {
    /// Creates a voltage source with `+` at `a` and `−` at `b`.
    pub fn new(name: impl Into<String>, a: Unknown, b: Unknown, waveform: Waveform) -> Self {
        Self {
            name: name.into(),
            a,
            b,
            branch: None,
            waveform,
        }
    }

    /// The branch-current unknown (available after elaboration).
    pub fn branch(&self) -> Unknown {
        self.branch
    }
}

impl DeviceImpl for VoltageSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn reserve(&self, res: &mut Reserver<'_>) {
        let br = self.branch;
        res.reserve_g(self.a, br);
        res.reserve_g(self.b, br);
        res.reserve_g(br, self.a);
        res.reserve_g(br, self.b);
    }

    fn eval(&self, ctx: &mut EvalContext<'_>) {
        let br = self.branch;
        let i = ctx.value(br);
        // Positive branch current flows from `a` through the source to `b`.
        ctx.add_f(self.a, i);
        ctx.add_f(self.b, -i);
        ctx.add_g(self.a, br, 1.0);
        ctx.add_g(self.b, br, -1.0);
        // Branch: va − vb − V(t) = 0.
        let v = ctx.value(self.a) - ctx.value(self.b);
        ctx.add_f(br, v);
        ctx.add_g(br, self.a, 1.0);
        ctx.add_g(br, self.b, -1.0);
        ctx.add_b(br, -self.waveform.value(ctx.t));
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["scale"]
    }

    fn param(&self, i: usize) -> f64 {
        assert_eq!(i, 0);
        self.waveform.scale()
    }

    fn set_param(&mut self, i: usize, value: f64) {
        assert_eq!(i, 0);
        self.waveform.set_scale(value);
    }

    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        assert_eq!(i, 0);
        // b_br = −V(t)  →  ∂b/∂scale = −dV/dscale.
        ctx.add_db(self.branch, -self.waveform.dvalue_dscale(ctx.t));
    }

    fn unknowns(&self) -> Vec<Unknown> {
        vec![self.a, self.b, self.branch]
    }
}

/// An independent current source.
///
/// A positive value drives current from `a` through the source into `b`
/// (SPICE convention), contributing `+I` to node `a`'s KCL and `−I` to `b`'s.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentSource {
    name: String,
    a: Unknown,
    b: Unknown,
    /// The source waveform.
    pub waveform: Waveform,
}

impl CurrentSource {
    /// Creates a current source pushing current from `a` to `b`.
    pub fn new(name: impl Into<String>, a: Unknown, b: Unknown, waveform: Waveform) -> Self {
        Self {
            name: name.into(),
            a,
            b,
            waveform,
        }
    }
}

impl DeviceImpl for CurrentSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn reserve(&self, _res: &mut Reserver<'_>) {
        // Purely an rhs contribution; no Jacobian slots.
    }

    fn eval(&self, ctx: &mut EvalContext<'_>) {
        let i = self.waveform.value(ctx.t);
        ctx.add_b(self.a, i);
        ctx.add_b(self.b, -i);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["scale"]
    }

    fn param(&self, i: usize) -> f64 {
        assert_eq!(i, 0);
        self.waveform.scale()
    }

    fn set_param(&mut self, i: usize, value: f64) {
        assert_eq!(i, 0);
        self.waveform.set_scale(value);
    }

    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        assert_eq!(i, 0);
        let d = self.waveform.dvalue_dscale(ctx.t);
        ctx.add_db(self.a, d);
        ctx.add_db(self.b, -d);
    }

    fn unknowns(&self) -> Vec<Unknown> {
        vec![self.a, self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::TripletMatrix;

    #[test]
    fn vsource_branch_equation() {
        let mut v = VoltageSource::new("V1", Some(0), None, Waveform::Dc(5.0));
        v.branch = Some(1);
        let mut gt = TripletMatrix::new(2, 2);
        let mut ct = TripletMatrix::new(2, 2);
        {
            let mut res = Reserver::new(&mut gt, &mut ct);
            v.reserve(&mut res);
        }
        let mut g = gt.to_csr();
        let mut c = ct.to_csr();
        let x = [5.0, -0.25];
        let (mut f, mut q, mut b) = (vec![0.0; 2], vec![0.0; 2], vec![0.0; 2]);
        v.eval(&mut EvalContext {
            x: &x,
            t: 0.0,
            g: &mut g,
            c: &mut c,
            f: &mut f,
            q: &mut q,
            b: &mut b,
        });
        // KCL at node 0 sees the branch current.
        assert_eq!(f[0], -0.25);
        // Branch row: f + b = va − V = 5 − 5 = 0 at the solution.
        assert_eq!(f[1] + b[1], 0.0);
        assert_eq!(g.get(1, 0), Some(1.0));
        assert_eq!(g.get(0, 1), Some(1.0));
    }

    #[test]
    fn isource_pushes_current() {
        let i = CurrentSource::new("I1", Some(0), Some(1), Waveform::Dc(1e-3));
        let mut gt = TripletMatrix::new(2, 2);
        let mut ct = TripletMatrix::new(2, 2);
        {
            let mut res = Reserver::new(&mut gt, &mut ct);
            i.reserve(&mut res);
        }
        let mut g = gt.to_csr();
        let mut c = ct.to_csr();
        let x = [0.0, 0.0];
        let (mut f, mut q, mut b) = (vec![0.0; 2], vec![0.0; 2], vec![0.0; 2]);
        i.eval(&mut EvalContext {
            x: &x,
            t: 0.0,
            g: &mut g,
            c: &mut c,
            f: &mut f,
            q: &mut q,
            b: &mut b,
        });
        assert_eq!(b, vec![1e-3, -1e-3]);
        assert_eq!(g.nnz(), 0);
    }

    #[test]
    fn vsource_param_deriv_is_minus_one_for_dc() {
        let mut v = VoltageSource::new("V1", Some(0), None, Waveform::Dc(5.0));
        v.branch = Some(1);
        let x = [5.0, 0.0];
        let (mut df, mut dq, mut db) = (vec![0.0; 2], vec![0.0; 2], vec![0.0; 2]);
        v.stamp_param_deriv(
            0,
            &mut ParamDerivContext {
                x: &x,
                t: 0.0,
                df_dp: &mut df,
                dq_dp: &mut dq,
                db_dp: &mut db,
            },
        );
        assert_eq!(db[1], -1.0);
        assert!(df.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn time_varying_source_follows_waveform() {
        let i = CurrentSource::new(
            "I1",
            Some(0),
            None,
            Waveform::Sin {
                vo: 0.0,
                va: 1.0,
                freq: 1.0,
                td: 0.0,
                theta: 0.0,
            },
        );
        let gt = TripletMatrix::new(1, 1);
        let ct = TripletMatrix::new(1, 1);
        let mut g = gt.to_csr();
        let mut c = ct.to_csr();
        let x = [0.0];
        let (mut f, mut q, mut b) = (vec![0.0; 1], vec![0.0; 1], vec![0.0; 1]);
        i.eval(&mut EvalContext {
            x: &x,
            t: 0.25,
            g: &mut g,
            c: &mut c,
            f: &mut f,
            q: &mut q,
            b: &mut b,
        });
        assert!((b[0] - 1.0).abs() < 1e-12);
        let _ = (gt.len(), ct.len());
    }
}
