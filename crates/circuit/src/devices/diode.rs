//! Junction diode with depletion capacitance.
//!
//! `I = Is·(exp(Vd/(n·VT)) − 1) + GMIN·Vd`, with the limited exponential of
//! [`super::limexp`] for Newton robustness, plus a SPICE-style depletion
//! charge `q(Vd)` (forward-bias linearization above `FC·VJ`). The nonlinear
//! charge makes the `C` matrix state-dependent, which matters for the
//! compression study: both `G` and `C` tensors vary over time.

use super::{limexp, DeviceImpl, GMIN, VT};
use crate::stamp::{EvalContext, ParamDerivContext, Reserver, Unknown};

/// Forward-bias depletion-capacitance linearization point.
const FC: f64 = 0.5;

/// A junction diode.
#[derive(Debug, Clone, PartialEq)]
pub struct Diode {
    name: String,
    anode: Unknown,
    cathode: Unknown,
    /// Saturation current `IS` (A).
    pub is_sat: f64,
    /// Emission coefficient `N`.
    pub n_emission: f64,
    /// Zero-bias junction capacitance `CJ0` (F); zero disables the charge.
    pub cj0: f64,
    /// Junction potential `VJ` (V).
    pub vj: f64,
    /// Grading coefficient `M`.
    pub mj: f64,
}

impl Diode {
    /// Creates a diode with default SPICE-like parameters
    /// (`IS = 1e-14`, `N = 1`, `CJ0 = 0`, `VJ = 1`, `M = 0.5`).
    pub fn new(name: impl Into<String>, anode: Unknown, cathode: Unknown) -> Self {
        Self {
            name: name.into(),
            anode,
            cathode,
            is_sat: 1e-14,
            n_emission: 1.0,
            cj0: 0.0,
            vj: 1.0,
            mj: 0.5,
        }
    }

    /// Sets the zero-bias junction capacitance, enabling the depletion
    /// charge model.
    pub fn with_junction_cap(mut self, cj0: f64) -> Self {
        self.cj0 = cj0;
        self
    }

    /// Static current and conductance `(i, g)` at junction voltage `vd`.
    fn current(&self, vd: f64) -> (f64, f64) {
        let nvt = self.n_emission * VT;
        let (e, de) = limexp(vd / nvt);
        let i = self.is_sat * (e - 1.0) + GMIN * vd;
        let g = self.is_sat * de / nvt + GMIN;
        (i, g)
    }

    /// Depletion charge and capacitance `(q, c)` at junction voltage `vd`.
    fn charge(&self, vd: f64) -> (f64, f64) {
        if self.cj0 == 0.0 {
            return (0.0, 0.0);
        }
        let (cj0, vj, m) = (self.cj0, self.vj, self.mj);
        let fcv = FC * vj;
        if vd < fcv {
            let arg = 1.0 - vd / vj;
            let q = cj0 * vj / (1.0 - m) * (1.0 - arg.powf(1.0 - m));
            let c = cj0 * arg.powf(-m);
            (q, c)
        } else {
            // Linear extension above FC·VJ (SPICE F1/F2/F3 formulation).
            let f1 = vj / (1.0 - m) * (1.0 - (1.0 - FC).powf(1.0 - m));
            let f2 = (1.0 - FC).powf(1.0 + m);
            let f3 = 1.0 - FC * (1.0 + m);
            let q =
                cj0 * f1 + cj0 / f2 * (f3 * (vd - fcv) + m / (2.0 * vj) * (vd * vd - fcv * fcv));
            let c = cj0 / f2 * (f3 + m * vd / vj);
            (q, c)
        }
    }
}

impl DeviceImpl for Diode {
    fn name(&self) -> &str {
        &self.name
    }

    fn reserve(&self, res: &mut Reserver<'_>) {
        res.reserve_g_pair(self.anode, self.cathode);
        if self.cj0 != 0.0 {
            res.reserve_c_pair(self.anode, self.cathode);
        }
    }

    fn eval(&self, ctx: &mut EvalContext<'_>) {
        let vd = ctx.value(self.anode) - ctx.value(self.cathode);
        let (i, g) = self.current(vd);
        let (a, c) = (self.anode, self.cathode);
        ctx.add_f(a, i);
        ctx.add_f(c, -i);
        ctx.add_g(a, a, g);
        ctx.add_g(c, c, g);
        ctx.add_g(a, c, -g);
        ctx.add_g(c, a, -g);
        if self.cj0 != 0.0 {
            let (q, cd) = self.charge(vd);
            ctx.add_q(a, q);
            ctx.add_q(c, -q);
            ctx.add_c(a, a, cd);
            ctx.add_c(c, c, cd);
            ctx.add_c(a, c, -cd);
            ctx.add_c(c, a, -cd);
        }
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["is", "n", "cj0"]
    }

    fn param(&self, i: usize) -> f64 {
        match i {
            0 => self.is_sat,
            1 => self.n_emission,
            2 => self.cj0,
            _ => panic!("diode has 3 parameters, asked for {i}"),
        }
    }

    fn set_param(&mut self, i: usize, value: f64) {
        match i {
            0 => self.is_sat = value,
            1 => self.n_emission = value,
            2 => self.cj0 = value,
            _ => panic!("diode has 3 parameters, asked for {i}"),
        }
    }

    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        let vd = ctx.value(self.anode) - ctx.value(self.cathode);
        let (a, c) = (self.anode, self.cathode);
        match i {
            0 => {
                // ∂I/∂Is = exp(vd/(n VT)) − 1.
                let (e, _) = limexp(vd / (self.n_emission * VT));
                let d = e - 1.0;
                ctx.add_df(a, d);
                ctx.add_df(c, -d);
            }
            1 => {
                // ∂I/∂n = Is · e'(u) · (−vd/(n² VT)),  u = vd/(n VT).
                let nvt = self.n_emission * VT;
                let (_, de) = limexp(vd / nvt);
                let d = self.is_sat * de * (-vd / (self.n_emission * nvt));
                ctx.add_df(a, d);
                ctx.add_df(c, -d);
            }
            2 => {
                // q ∝ CJ0: ∂q/∂CJ0 = q/CJ0 (well-defined via unit CJ0).
                let unit = Diode {
                    cj0: 1.0,
                    ..self.clone()
                };
                let (q1, _) = unit.charge(vd);
                ctx.add_dq(a, q1);
                ctx.add_dq(c, -q1);
            }
            _ => panic!("diode has 3 parameters, asked for {i}"),
        }
    }

    fn unknowns(&self) -> Vec<Unknown> {
        vec![self.anode, self.cathode]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_sign_and_magnitude() {
        let d = Diode::new("D1", Some(0), None);
        // Forward bias 0.6 V: milliamp-scale current.
        let (i_fwd, g_fwd) = d.current(0.6);
        assert!(i_fwd > 1e-5 && i_fwd < 1.0, "i_fwd = {i_fwd}");
        assert!(g_fwd > 0.0);
        // Reverse bias: ~−Is.
        let (i_rev, g_rev) = d.current(-5.0);
        assert!(i_rev < 0.0 && i_rev > -1e-9);
        assert!(g_rev >= GMIN);
    }

    #[test]
    fn conductance_matches_fd() {
        let d = Diode::new("D1", Some(0), None);
        for &vd in &[-2.0, -0.2, 0.0, 0.3, 0.55, 0.7, 1.2] {
            let eps = 1e-7;
            let fd = (d.current(vd + eps).0 - d.current(vd - eps).0) / (2.0 * eps);
            let (_, g) = d.current(vd);
            assert!(
                (g - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "vd={vd}: g={g} fd={fd}"
            );
        }
    }

    #[test]
    fn charge_continuous_at_fc() {
        let d = Diode::new("D1", Some(0), None).with_junction_cap(1e-12);
        let fcv = FC * d.vj;
        let (q_lo, c_lo) = d.charge(fcv - 1e-9);
        let (q_hi, c_hi) = d.charge(fcv + 1e-9);
        assert!((q_lo - q_hi).abs() < 1e-18);
        assert!((c_lo - c_hi).abs() < 1e-16);
    }

    #[test]
    fn capacitance_matches_fd_of_charge() {
        let d = Diode::new("D1", Some(0), None).with_junction_cap(2e-12);
        for &vd in &[-3.0, -0.5, 0.0, 0.3, 0.49, 0.51, 0.8, 2.0] {
            let eps = 1e-7;
            let fd = (d.charge(vd + eps).0 - d.charge(vd - eps).0) / (2.0 * eps);
            let (_, c) = d.charge(vd);
            assert!(
                (c - fd).abs() < 1e-5 * (c.abs() + 1e-15),
                "vd={vd}: c={c} fd={fd}"
            );
        }
    }

    #[test]
    fn capacitance_rises_toward_junction() {
        let d = Diode::new("D1", Some(0), None).with_junction_cap(1e-12);
        let (_, c_rev) = d.charge(-2.0);
        let (_, c_zero) = d.charge(0.0);
        let (_, c_fwd) = d.charge(0.4);
        assert!(c_rev < c_zero && c_zero < c_fwd);
        assert!((c_zero - 1e-12).abs() < 1e-18);
    }

    #[test]
    fn param_derivs_match_fd() {
        let x = [0.62, 0.02];
        for p in 0..3 {
            let base = Diode {
                cj0: 3e-12,
                ..Diode::new("D", Some(0), Some(1))
            };
            let mut df = vec![0.0; 2];
            let mut dq = vec![0.0; 2];
            let mut db = vec![0.0; 2];
            base.stamp_param_deriv(
                p,
                &mut ParamDerivContext {
                    x: &x,
                    t: 0.0,
                    df_dp: &mut df,
                    dq_dp: &mut dq,
                    db_dp: &mut db,
                },
            );
            // Finite difference on f (params 0,1) or q (param 2).
            let v0 = base.param(p);
            let eps = (v0.abs() * 1e-6).max(1e-20);
            let eval_fq = |pv: f64| {
                let mut d = base.clone();
                d.set_param(p, pv);
                let vd = x[0] - x[1];
                (d.current(vd).0, d.charge(vd).0)
            };
            let (f_hi, q_hi) = eval_fq(v0 + eps);
            let (f_lo, q_lo) = eval_fq(v0 - eps);
            let fd_f = (f_hi - f_lo) / (2.0 * eps);
            let fd_q = (q_hi - q_lo) / (2.0 * eps);
            assert!(
                (df[0] - fd_f).abs() < 1e-5 * (1.0 + fd_f.abs()),
                "param {p}: df {} vs fd {fd_f}",
                df[0]
            );
            assert!(
                (dq[0] - fd_q).abs() < 1e-5 * (1.0 + fd_q.abs()),
                "param {p}: dq {} vs fd {fd_q}",
                dq[0]
            );
        }
    }

    #[test]
    fn zero_cj0_has_no_charge() {
        let d = Diode::new("D1", Some(0), None);
        assert_eq!(d.charge(0.5), (0.0, 0.0));
    }
}
