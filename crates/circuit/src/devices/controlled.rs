//! Linear controlled sources: VCCS (`G` card) and VCVS (`E` card).
//!
//! These are the standard SPICE linear dependent sources; they appear
//! throughout extracted analog macromodels (the paper's CHIP netlists are
//! exactly that kind of deck). Both couple two node pairs, producing the
//! asymmetric off-diagonal stamps that distinguish real MNA matrices from
//! textbook symmetric ones.

use super::DeviceImpl;
use crate::stamp::{EvalContext, ParamDerivContext, Reserver, Unknown};

/// A voltage-controlled current source: `I(a→b) = gm · (V(cp) − V(cn))`.
#[derive(Debug, Clone, PartialEq)]
pub struct Vccs {
    name: String,
    a: Unknown,
    b: Unknown,
    cp: Unknown,
    cn: Unknown,
    /// Transconductance in siemens.
    pub gm: f64,
}

impl Vccs {
    /// Creates a VCCS driving current from `a` to `b`, controlled by the
    /// voltage from `cp` to `cn`.
    pub fn new(
        name: impl Into<String>,
        a: Unknown,
        b: Unknown,
        cp: Unknown,
        cn: Unknown,
        gm: f64,
    ) -> Self {
        Self {
            name: name.into(),
            a,
            b,
            cp,
            cn,
            gm,
        }
    }
}

impl DeviceImpl for Vccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn reserve(&self, res: &mut Reserver<'_>) {
        for &row in &[self.a, self.b] {
            for &col in &[self.cp, self.cn] {
                res.reserve_g(row, col);
            }
        }
    }

    fn eval(&self, ctx: &mut EvalContext<'_>) {
        let vc = ctx.value(self.cp) - ctx.value(self.cn);
        let i = self.gm * vc;
        ctx.add_f(self.a, i);
        ctx.add_f(self.b, -i);
        ctx.add_g(self.a, self.cp, self.gm);
        ctx.add_g(self.a, self.cn, -self.gm);
        ctx.add_g(self.b, self.cp, -self.gm);
        ctx.add_g(self.b, self.cn, self.gm);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["gm"]
    }

    fn param(&self, i: usize) -> f64 {
        assert_eq!(i, 0);
        self.gm
    }

    fn set_param(&mut self, i: usize, value: f64) {
        assert_eq!(i, 0);
        self.gm = value;
    }

    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        assert_eq!(i, 0);
        // I = gm · vc  →  ∂I/∂gm = vc.
        let vc = ctx.value(self.cp) - ctx.value(self.cn);
        ctx.add_df(self.a, vc);
        ctx.add_df(self.b, -vc);
    }

    fn unknowns(&self) -> Vec<Unknown> {
        vec![self.a, self.b, self.cp, self.cn]
    }
}

/// A voltage-controlled voltage source:
/// `V(a) − V(b) = gain · (V(cp) − V(cn))`; adds one branch current.
#[derive(Debug, Clone, PartialEq)]
pub struct Vcvs {
    name: String,
    a: Unknown,
    b: Unknown,
    cp: Unknown,
    cn: Unknown,
    pub(crate) branch: Unknown,
    /// Voltage gain.
    pub gain: f64,
}

impl Vcvs {
    /// Creates a VCVS with output `a`/`b` controlled by `cp`/`cn`.
    pub fn new(
        name: impl Into<String>,
        a: Unknown,
        b: Unknown,
        cp: Unknown,
        cn: Unknown,
        gain: f64,
    ) -> Self {
        Self {
            name: name.into(),
            a,
            b,
            cp,
            cn,
            branch: None,
            gain,
        }
    }
}

impl DeviceImpl for Vcvs {
    fn name(&self) -> &str {
        &self.name
    }

    fn reserve(&self, res: &mut Reserver<'_>) {
        let br = self.branch;
        res.reserve_g(self.a, br);
        res.reserve_g(self.b, br);
        res.reserve_g(br, self.a);
        res.reserve_g(br, self.b);
        res.reserve_g(br, self.cp);
        res.reserve_g(br, self.cn);
    }

    fn eval(&self, ctx: &mut EvalContext<'_>) {
        let br = self.branch;
        let i = ctx.value(br);
        ctx.add_f(self.a, i);
        ctx.add_f(self.b, -i);
        ctx.add_g(self.a, br, 1.0);
        ctx.add_g(self.b, br, -1.0);
        // Branch: (va − vb) − gain·(vcp − vcn) = 0.
        let v = ctx.value(self.a)
            - ctx.value(self.b)
            - self.gain * (ctx.value(self.cp) - ctx.value(self.cn));
        ctx.add_f(br, v);
        ctx.add_g(br, self.a, 1.0);
        ctx.add_g(br, self.b, -1.0);
        ctx.add_g(br, self.cp, -self.gain);
        ctx.add_g(br, self.cn, self.gain);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["gain"]
    }

    fn param(&self, i: usize) -> f64 {
        assert_eq!(i, 0);
        self.gain
    }

    fn set_param(&mut self, i: usize, value: f64) {
        assert_eq!(i, 0);
        self.gain = value;
    }

    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        assert_eq!(i, 0);
        // f_br contains −gain·vc  →  ∂f_br/∂gain = −vc.
        let vc = ctx.value(self.cp) - ctx.value(self.cn);
        ctx.add_df(self.branch, -vc);
    }

    fn unknowns(&self) -> Vec<Unknown> {
        vec![self.a, self.b, self.cp, self.cn, self.branch]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::TripletMatrix;

    fn eval3(dev: &impl DeviceImpl, x: &[f64]) -> (Vec<f64>, masc_sparse::CsrMatrix) {
        let n = x.len();
        let mut gt = TripletMatrix::new(n, n);
        let mut ct = TripletMatrix::new(n, n);
        {
            let mut res = Reserver::new(&mut gt, &mut ct);
            dev.reserve(&mut res);
        }
        let mut g = gt.to_csr();
        let mut c = ct.to_csr();
        let (mut f, mut q, mut b) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        dev.eval(&mut EvalContext {
            x,
            t: 0.0,
            g: &mut g,
            c: &mut c,
            f: &mut f,
            q: &mut q,
            b: &mut b,
        });
        (f, g)
    }

    #[test]
    fn vccs_injects_proportional_current() {
        let g = Vccs::new("G1", Some(0), Some(1), Some(2), None, 2e-3);
        let (f, gm) = eval3(&g, &[0.0, 0.0, 1.5]);
        assert!((f[0] - 3e-3).abs() < 1e-15);
        assert!((f[1] + 3e-3).abs() < 1e-15);
        assert_eq!(gm.get(0, 2), Some(2e-3));
        assert_eq!(gm.get(1, 2), Some(-2e-3));
    }

    #[test]
    fn vcvs_branch_equation_balances_at_solution() {
        let mut e = Vcvs::new("E1", Some(0), None, Some(1), None, 10.0);
        e.branch = Some(2);
        // x = [out, ctrl, i]: out = 10·ctrl at the solution.
        let (f, g) = eval3(&e, &[5.0, 0.5, -1e-3]);
        assert_eq!(f[2], 0.0); // branch residual zero
        assert!((f[0] + 1e-3).abs() < 1e-15); // branch current into out
        assert_eq!(g.get(2, 0), Some(1.0));
        assert_eq!(g.get(2, 1), Some(-10.0));
    }

    #[test]
    fn param_derivs_match_fd() {
        let x = [0.7, 0.3, 2e-4];
        let g = Vccs::new("G1", Some(0), Some(1), Some(0), Some(1), 1e-3);
        let mut df = vec![0.0; 3];
        let mut dq = vec![0.0; 3];
        let mut db = vec![0.0; 3];
        g.stamp_param_deriv(
            0,
            &mut ParamDerivContext {
                x: &x,
                t: 0.0,
                df_dp: &mut df,
                dq_dp: &mut dq,
                db_dp: &mut db,
            },
        );
        // vc = 0.4 → ∂I/∂gm = 0.4 at node a.
        assert!((df[0] - 0.4).abs() < 1e-15);
        assert!((df[1] + 0.4).abs() < 1e-15);
    }
}
