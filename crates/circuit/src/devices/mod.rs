//! Device models.
//!
//! Every element type the paper's workloads use: linear R/C/L, independent
//! V/I sources, and the nonlinear diode, BJT (Ebers–Moll transport form)
//! and MOSFET (Shichman–Hodges level 1). Each device knows how to:
//!
//! - reserve its Jacobian stamp slots ([`Device::reserve`]) — the union of
//!   these reservations *is* the shared sparsity pattern;
//! - evaluate its contributions to `f`, `q`, `b`, `G`, `C`
//!   ([`Device::eval`]);
//! - report and perturb its named parameters, and stamp the analytic
//!   parameter derivatives `∂f/∂p`, `∂q/∂p`, `∂b/∂p` that the sensitivity
//!   engines consume ([`Device::stamp_param_deriv`]).

mod bjt;
mod controlled;
mod diode;
mod linear;
mod mosfet;
mod sources;

pub use bjt::{Bjt, BjtPolarity};
pub use controlled::{Vccs, Vcvs};
pub use diode::Diode;
pub use linear::{Capacitor, Inductor, Resistor};
pub use mosfet::{MosPolarity, Mosfet};
pub use sources::{CurrentSource, VoltageSource};

use crate::stamp::{EvalContext, ParamDerivContext, Reserver, Unknown};

/// Thermal voltage at ~300 K, used by all junction devices.
pub const VT: f64 = 0.02585;

/// Junction minimum conductance for convergence (SPICE `GMIN`).
pub const GMIN: f64 = 1e-12;

/// Exponent cap for the limited exponential.
const EXP_LIM: f64 = 40.0;

/// Limited exponential: `exp(x)` below the cap, linear extension above.
///
/// Returns `(value, derivative)`; the derivative is consistent with the
/// extension so Newton iterations see a smooth function.
#[inline]
pub(crate) fn limexp(x: f64) -> (f64, f64) {
    if x < EXP_LIM {
        let e = x.exp();
        (e, e)
    } else {
        let e = EXP_LIM.exp();
        (e * (1.0 + (x - EXP_LIM)), e)
    }
}

/// A circuit element.
///
/// This is a closed enum rather than a trait object: the simulator needs
/// `Clone` + parameter enumeration across the whole netlist, and the device
/// set is fixed by the paper's workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// Linear resistor.
    Resistor(Resistor),
    /// Linear capacitor.
    Capacitor(Capacitor),
    /// Linear inductor (adds one branch current).
    Inductor(Inductor),
    /// Independent voltage source (adds one branch current).
    VoltageSource(VoltageSource),
    /// Independent current source.
    CurrentSource(CurrentSource),
    /// Junction diode with depletion capacitance.
    Diode(Diode),
    /// NPN bipolar transistor (Ebers–Moll transport form with diffusion
    /// capacitance).
    Bjt(Bjt),
    /// MOSFET, Shichman–Hodges level 1 with constant gate capacitances.
    Mosfet(Mosfet),
    /// Voltage-controlled current source (SPICE `G` card).
    Vccs(Vccs),
    /// Voltage-controlled voltage source (SPICE `E` card; adds one branch
    /// current).
    Vcvs(Vcvs),
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            Device::Resistor($inner) => $body,
            Device::Capacitor($inner) => $body,
            Device::Inductor($inner) => $body,
            Device::VoltageSource($inner) => $body,
            Device::CurrentSource($inner) => $body,
            Device::Diode($inner) => $body,
            Device::Bjt($inner) => $body,
            Device::Mosfet($inner) => $body,
            Device::Vccs($inner) => $body,
            Device::Vcvs($inner) => $body,
        }
    };
}

impl Device {
    /// Instance name (e.g. `R1`, `Q3`).
    pub fn name(&self) -> &str {
        dispatch!(self, d => d.name())
    }

    /// Number of extra branch unknowns this device introduces.
    pub fn branch_count(&self) -> usize {
        match self {
            Device::Inductor(_) | Device::VoltageSource(_) | Device::Vcvs(_) => 1,
            _ => 0,
        }
    }

    /// Assigns branch unknown indices starting at `start`.
    pub(crate) fn assign_branches(&mut self, start: usize) {
        match self {
            Device::Inductor(d) => d.branch = Some(start),
            Device::VoltageSource(d) => d.branch = Some(start),
            Device::Vcvs(d) => d.branch = Some(start),
            _ => {}
        }
    }

    /// Declares every matrix slot the device will stamp.
    pub fn reserve(&self, res: &mut Reserver<'_>) {
        dispatch!(self, d => d.reserve(res))
    }

    /// Accumulates `f`, `q`, `b`, `G`, `C` at the context's state and time.
    pub fn eval(&self, ctx: &mut EvalContext<'_>) {
        dispatch!(self, d => d.eval(ctx))
    }

    /// Number of named parameters.
    pub fn param_count(&self) -> usize {
        dispatch!(self, d => d.param_names().len())
    }

    /// Name of local parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= param_count()`.
    pub fn param_name(&self, i: usize) -> &'static str {
        dispatch!(self, d => d.param_names()[i])
    }

    /// Value of local parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= param_count()`.
    pub fn param(&self, i: usize) -> f64 {
        dispatch!(self, d => d.param(i))
    }

    /// Sets local parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= param_count()`.
    pub fn set_param(&mut self, i: usize, value: f64) {
        dispatch!(self, d => d.set_param(i, value))
    }

    /// Accumulates `∂f/∂p`, `∂q/∂p`, `∂b/∂p` for local parameter `i` at the
    /// context's state.
    ///
    /// # Panics
    ///
    /// Panics if `i >= param_count()`.
    pub fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        dispatch!(self, d => d.stamp_param_deriv(i, ctx))
    }

    /// The unknowns this device touches (for objective/debug tooling).
    pub fn unknowns(&self) -> Vec<Unknown> {
        dispatch!(self, d => d.unknowns())
    }
}

/// Internal trait each concrete device implements; `Device` dispatches to
/// it. Not exported: the public surface is the enum.
pub(crate) trait DeviceImpl {
    fn name(&self) -> &str;
    fn reserve(&self, res: &mut Reserver<'_>);
    fn eval(&self, ctx: &mut EvalContext<'_>);
    fn param_names(&self) -> &'static [&'static str];
    fn param(&self, i: usize) -> f64;
    fn set_param(&mut self, i: usize, value: f64);
    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>);
    fn unknowns(&self) -> Vec<Unknown>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limexp_is_smooth_at_the_cap() {
        let below = limexp(EXP_LIM - 1e-9);
        let above = limexp(EXP_LIM + 1e-9);
        assert!((below.0 - above.0).abs() / below.0 < 1e-6);
        assert!((below.1 - above.1).abs() / below.1 < 1e-6);
    }

    #[test]
    fn limexp_matches_exp_in_normal_range() {
        for &x in &[-30.0, -1.0, 0.0, 1.0, 20.0] {
            let (v, d) = limexp(x);
            assert!((v - x.exp()).abs() < 1e-12 * x.exp().max(1.0));
            assert_eq!(v, d);
        }
    }

    #[test]
    fn limexp_grows_linearly_above_cap() {
        let (v1, d1) = limexp(50.0);
        let (v2, d2) = limexp(51.0);
        assert!((v2 - v1 - d1).abs() < 1e-3 * d1);
        assert_eq!(d1, d2);
        assert!(v1.is_finite() && v2.is_finite());
    }
}
