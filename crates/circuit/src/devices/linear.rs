//! Linear two-terminal devices: resistor, capacitor, inductor.
//!
//! These produce exactly the textbook MNA stamps the paper's spatial
//! predictor exploits: for a resistor or capacitor,
//! `S(i,i) = S(j,j) = -S(i,j) = -S(j,i)`.

use super::DeviceImpl;
use crate::stamp::{EvalContext, ParamDerivContext, Reserver, Unknown};

/// A linear resistor.
#[derive(Debug, Clone, PartialEq)]
pub struct Resistor {
    name: String,
    a: Unknown,
    b: Unknown,
    /// Resistance in ohms (must be positive).
    pub resistance: f64,
}

impl Resistor {
    /// Creates a resistor between unknowns `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `resistance <= 0`.
    pub fn new(name: impl Into<String>, a: Unknown, b: Unknown, resistance: f64) -> Self {
        assert!(resistance > 0.0, "resistance must be positive");
        Self {
            name: name.into(),
            a,
            b,
            resistance,
        }
    }
}

impl DeviceImpl for Resistor {
    fn name(&self) -> &str {
        &self.name
    }

    fn reserve(&self, res: &mut Reserver<'_>) {
        res.reserve_g_pair(self.a, self.b);
    }

    fn eval(&self, ctx: &mut EvalContext<'_>) {
        ctx.stamp_conductance(self.a, self.b, 1.0 / self.resistance);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["r"]
    }

    fn param(&self, i: usize) -> f64 {
        assert_eq!(i, 0);
        self.resistance
    }

    fn set_param(&mut self, i: usize, value: f64) {
        assert_eq!(i, 0);
        self.resistance = value;
    }

    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        assert_eq!(i, 0);
        // f = (va - vb)/R  →  ∂f/∂R = -(va - vb)/R².
        let v = ctx.value(self.a) - ctx.value(self.b);
        let d = -v / (self.resistance * self.resistance);
        ctx.add_df(self.a, d);
        ctx.add_df(self.b, -d);
    }

    fn unknowns(&self) -> Vec<Unknown> {
        vec![self.a, self.b]
    }
}

/// A linear capacitor.
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    name: String,
    a: Unknown,
    b: Unknown,
    /// Capacitance in farads (must be positive).
    pub capacitance: f64,
}

impl Capacitor {
    /// Creates a capacitor between unknowns `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance <= 0`.
    pub fn new(name: impl Into<String>, a: Unknown, b: Unknown, capacitance: f64) -> Self {
        assert!(capacitance > 0.0, "capacitance must be positive");
        Self {
            name: name.into(),
            a,
            b,
            capacitance,
        }
    }
}

impl DeviceImpl for Capacitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn reserve(&self, res: &mut Reserver<'_>) {
        res.reserve_c_pair(self.a, self.b);
    }

    fn eval(&self, ctx: &mut EvalContext<'_>) {
        let v = ctx.value(self.a) - ctx.value(self.b);
        let q = self.capacitance * v;
        ctx.add_q(self.a, q);
        ctx.add_q(self.b, -q);
        let c = self.capacitance;
        ctx.add_c(self.a, self.a, c);
        ctx.add_c(self.b, self.b, c);
        ctx.add_c(self.a, self.b, -c);
        ctx.add_c(self.b, self.a, -c);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["c"]
    }

    fn param(&self, i: usize) -> f64 {
        assert_eq!(i, 0);
        self.capacitance
    }

    fn set_param(&mut self, i: usize, value: f64) {
        assert_eq!(i, 0);
        self.capacitance = value;
    }

    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        assert_eq!(i, 0);
        // q = C (va - vb)  →  ∂q/∂C = va - vb.
        let v = ctx.value(self.a) - ctx.value(self.b);
        ctx.add_dq(self.a, v);
        ctx.add_dq(self.b, -v);
    }

    fn unknowns(&self) -> Vec<Unknown> {
        vec![self.a, self.b]
    }
}

/// A linear inductor; introduces a branch-current unknown.
///
/// Branch residual: `L di/dt − (va − vb) = 0`, i.e. `q_br = L·i`,
/// `f_br = −(va − vb)`; KCL rows receive `±i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Inductor {
    name: String,
    a: Unknown,
    b: Unknown,
    /// Branch-current unknown, assigned at elaboration.
    pub(crate) branch: Unknown,
    /// Inductance in henries (must be positive).
    pub inductance: f64,
}

impl Inductor {
    /// Creates an inductor between unknowns `a` and `b`. The branch unknown
    /// is assigned by the circuit at elaboration.
    ///
    /// # Panics
    ///
    /// Panics if `inductance <= 0`.
    pub fn new(name: impl Into<String>, a: Unknown, b: Unknown, inductance: f64) -> Self {
        assert!(inductance > 0.0, "inductance must be positive");
        Self {
            name: name.into(),
            a,
            b,
            branch: None,
            inductance,
        }
    }
}

impl DeviceImpl for Inductor {
    fn name(&self) -> &str {
        &self.name
    }

    fn reserve(&self, res: &mut Reserver<'_>) {
        let br = self.branch;
        res.reserve_g(self.a, br);
        res.reserve_g(self.b, br);
        res.reserve_g(br, self.a);
        res.reserve_g(br, self.b);
        res.reserve_c(br, br);
    }

    fn eval(&self, ctx: &mut EvalContext<'_>) {
        let br = self.branch;
        let i = ctx.value(br);
        // KCL: current i flows a → b through the inductor.
        ctx.add_f(self.a, i);
        ctx.add_f(self.b, -i);
        ctx.add_g(self.a, br, 1.0);
        ctx.add_g(self.b, br, -1.0);
        // Branch: L di/dt = va − vb  →  f_br = −(va − vb), q_br = L i.
        let v = ctx.value(self.a) - ctx.value(self.b);
        ctx.add_f(br, -v);
        ctx.add_g(br, self.a, -1.0);
        ctx.add_g(br, self.b, 1.0);
        ctx.add_q(br, self.inductance * i);
        ctx.add_c(br, br, self.inductance);
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["l"]
    }

    fn param(&self, i: usize) -> f64 {
        assert_eq!(i, 0);
        self.inductance
    }

    fn set_param(&mut self, i: usize, value: f64) {
        assert_eq!(i, 0);
        self.inductance = value;
    }

    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        assert_eq!(i, 0);
        // q_br = L i  →  ∂q_br/∂L = i.
        let ibr = ctx.value(self.branch);
        ctx.add_dq(self.branch, ibr);
    }

    fn unknowns(&self) -> Vec<Unknown> {
        vec![self.a, self.b, self.branch]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::TripletMatrix;

    fn eval_device(dev: &impl DeviceImpl, n: usize, x: &[f64]) -> DeviceEval {
        let mut gt = TripletMatrix::new(n, n);
        let mut ct = TripletMatrix::new(n, n);
        {
            let mut res = Reserver::new(&mut gt, &mut ct);
            dev.reserve(&mut res);
        }
        let mut g = gt.to_csr();
        let mut c = ct.to_csr();
        let (mut f, mut q, mut b) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        dev.eval(&mut EvalContext {
            x,
            t: 0.0,
            g: &mut g,
            c: &mut c,
            f: &mut f,
            q: &mut q,
            b: &mut b,
        });
        DeviceEval { g, c, f, q, b }
    }

    struct DeviceEval {
        g: masc_sparse::CsrMatrix,
        c: masc_sparse::CsrMatrix,
        f: Vec<f64>,
        q: Vec<f64>,
        b: Vec<f64>,
    }

    #[test]
    fn resistor_stamp_symmetry() {
        let r = Resistor::new("R1", Some(0), Some(1), 100.0);
        let e = eval_device(&r, 2, &[1.0, 0.0]);
        // The paper's stamp relation: S(i,i) = S(j,j) = -S(i,j) = -S(j,i).
        assert_eq!(e.g.get(0, 0), Some(0.01));
        assert_eq!(e.g.get(1, 1), Some(0.01));
        assert_eq!(e.g.get(0, 1), Some(-0.01));
        assert_eq!(e.g.get(1, 0), Some(-0.01));
        assert!((e.f[0] - 0.01).abs() < 1e-15);
        assert!((e.f[1] + 0.01).abs() < 1e-15);
        assert_eq!(e.b, vec![0.0, 0.0]);
    }

    #[test]
    fn resistor_to_ground() {
        let r = Resistor::new("R1", Some(0), None, 50.0);
        let e = eval_device(&r, 1, &[2.0]);
        assert_eq!(e.g.get(0, 0), Some(0.02));
        assert!((e.f[0] - 0.04).abs() < 1e-15);
    }

    #[test]
    fn capacitor_charge_and_c_matrix() {
        let c = Capacitor::new("C1", Some(0), Some(1), 1e-6);
        let e = eval_device(&c, 2, &[3.0, 1.0]);
        assert!((e.q[0] - 2e-6).abs() < 1e-18);
        assert!((e.q[1] + 2e-6).abs() < 1e-18);
        assert_eq!(e.c.get(0, 0), Some(1e-6));
        assert_eq!(e.c.get(0, 1), Some(-1e-6));
        assert_eq!(e.f, vec![0.0, 0.0]);
    }

    #[test]
    fn inductor_branch_equations() {
        let mut l = Inductor::new("L1", Some(0), Some(1), 1e-3);
        l.branch = Some(2);
        // x = [va, vb, i]
        let e = eval_device(&l, 3, &[2.0, 0.5, 0.1]);
        assert!((e.f[0] - 0.1).abs() < 1e-15); // i into node a
        assert!((e.f[1] + 0.1).abs() < 1e-15);
        assert!((e.f[2] + 1.5).abs() < 1e-15); // −(va − vb)
        assert!((e.q[2] - 1e-4).abs() < 1e-18); // L i
        assert_eq!(e.c.get(2, 2), Some(1e-3));
        assert_eq!(e.g.get(0, 2), Some(1.0));
        assert_eq!(e.g.get(2, 0), Some(-1.0));
    }

    #[test]
    fn resistor_param_deriv_matches_fd() {
        let x = [1.7, -0.4];
        let r0 = 220.0;
        let analytic = {
            let r = Resistor::new("R", Some(0), Some(1), r0);
            let mut df = vec![0.0; 2];
            let mut dq = vec![0.0; 2];
            let mut db = vec![0.0; 2];
            r.stamp_param_deriv(
                0,
                &mut ParamDerivContext {
                    x: &x,
                    t: 0.0,
                    df_dp: &mut df,
                    dq_dp: &mut dq,
                    db_dp: &mut db,
                },
            );
            df
        };
        let eps = r0 * 1e-7;
        let f_at = |rv: f64| {
            let r = Resistor::new("R", Some(0), Some(1), rv);
            eval_device(&r, 2, &x).f
        };
        let hi = f_at(r0 + eps);
        let lo = f_at(r0 - eps);
        for k in 0..2 {
            let fd = (hi[k] - lo[k]) / (2.0 * eps);
            assert!((analytic[k] - fd).abs() < 1e-9 * (1.0 + fd.abs()));
        }
    }

    #[test]
    fn invalid_values_panic() {
        assert!(std::panic::catch_unwind(|| Resistor::new("R", None, None, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| Capacitor::new("C", None, None, -1.0)).is_err());
        assert!(std::panic::catch_unwind(|| Inductor::new("L", None, None, 0.0)).is_err());
    }
}
