//! MOSFET: Shichman–Hodges (SPICE level 1) with constant gate capacitances.
//!
//! Square-law model with channel-length modulation; drain/source symmetry is
//! handled by swapping roles when `Vds < 0`. PMOS devices are modelled by
//! voltage/current mirroring. Gate–source and gate–drain capacitances are
//! constant (a simplified Meyer model) — the state-dependent part of the `C`
//! tensor comes from the junction devices; MOS contributes the large static
//! background typical of the paper's MOS datasets.

use super::{DeviceImpl, GMIN};
use crate::stamp::{EvalContext, ParamDerivContext, Reserver, Unknown};

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// A three-terminal MOSFET (bulk tied to source).
#[derive(Debug, Clone, PartialEq)]
pub struct Mosfet {
    name: String,
    drain: Unknown,
    gate: Unknown,
    source: Unknown,
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Threshold voltage `VT0` (V, positive for NMOS enhancement).
    pub vt0: f64,
    /// Transconductance parameter `KP` (A/V²).
    pub kp: f64,
    /// Channel-length modulation `LAMBDA` (1/V).
    pub lambda: f64,
    /// Channel width `W` (m).
    pub w: f64,
    /// Channel length `L` (m).
    pub l: f64,
    /// Constant gate–source capacitance (F).
    pub cgs: f64,
    /// Constant gate–drain capacitance (F).
    pub cgd: f64,
}

/// Drain current and small-signal params in unswapped NMOS convention.
#[derive(Debug, Clone, Copy, Default)]
struct MosOp {
    id: f64,
    gm: f64,
    gds: f64,
}

impl Mosfet {
    /// Creates an NMOS with defaults `VT0 = 0.7`, `KP = 2e-5`,
    /// `LAMBDA = 0.01`, `W/L = 10µ/1µ`, zero gate caps.
    pub fn new(
        name: impl Into<String>,
        drain: Unknown,
        gate: Unknown,
        source: Unknown,
        polarity: MosPolarity,
    ) -> Self {
        Self {
            name: name.into(),
            drain,
            gate,
            source,
            polarity,
            vt0: 0.7,
            kp: 2e-5,
            lambda: 0.01,
            w: 10e-6,
            l: 1e-6,
            cgs: 0.0,
            cgd: 0.0,
        }
    }

    /// Sets the constant gate capacitances.
    pub fn with_gate_caps(mut self, cgs: f64, cgd: f64) -> Self {
        self.cgs = cgs;
        self.cgd = cgd;
        self
    }

    fn sign(&self) -> f64 {
        match self.polarity {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        }
    }

    /// Square-law drain current for `vgs`, `vds >= 0` (NMOS convention).
    fn square_law(&self, vgs: f64, vds: f64) -> MosOp {
        debug_assert!(vds >= 0.0);
        let beta = self.kp * self.w / self.l;
        let vov = vgs - self.vt0;
        if vov <= 0.0 {
            return MosOp {
                id: 0.0,
                gm: 0.0,
                gds: 0.0,
            };
        }
        let clm = 1.0 + self.lambda * vds;
        if vds < vov {
            // Triode.
            let core = vov * vds - 0.5 * vds * vds;
            MosOp {
                id: beta * core * clm,
                gm: beta * vds * clm,
                gds: beta * ((vov - vds) * clm + core * self.lambda),
            }
        } else {
            // Saturation.
            let core = 0.5 * vov * vov;
            MosOp {
                id: beta * core * clm,
                gm: beta * vov * clm,
                gds: beta * core * self.lambda,
            }
        }
    }

    /// Current into the drain and conductances in circuit orientation,
    /// handling polarity and drain/source swap.
    ///
    /// Returns `(id, did_dvd, did_dvg, did_dvs)`.
    fn current(&self, vd: f64, vg: f64, vs: f64) -> (f64, f64, f64, f64) {
        let s = self.sign();
        // Map to NMOS-equivalent voltages.
        let (nvd, nvg, nvs) = (s * vd, s * vg, s * vs);
        let (swapped, evd, evg, evs) = if nvd >= nvs {
            (false, nvd, nvg, nvs)
        } else {
            (true, nvs, nvg, nvd)
        };
        let op = self.square_law(evg - evs, evd - evs);
        // Derivatives in the effective frame.
        let did_devd = op.gds;
        let did_devg = op.gm;
        let did_devs = -(op.gm + op.gds);
        // Undo the swap: current reverses, drain/source derivative roles swap.
        let (mut id, mut dvd, dvg, mut dvs) = if swapped {
            (-op.id, -did_devs, -did_devg, -did_devd)
        } else {
            (op.id, did_devd, did_devg, did_devs)
        };
        // Undo polarity mirroring: I(vd,vg,vs) = s · I_n(s·vd, s·vg, s·vs);
        // derivatives pick up s², i.e. stay unchanged.
        id *= s;
        // Leakage for convergence.
        id += GMIN * (vd - vs);
        dvd += GMIN;
        dvs -= GMIN;
        (id, dvd, dvg * s * s, dvs)
    }
}

impl DeviceImpl for Mosfet {
    fn name(&self) -> &str {
        &self.name
    }

    fn reserve(&self, res: &mut Reserver<'_>) {
        let (d, g, s) = (self.drain, self.gate, self.source);
        for &row in &[d, s] {
            for &col in &[d, g, s] {
                res.reserve_g(row, col);
            }
        }
        if self.cgs != 0.0 {
            res.reserve_c_pair(g, s);
        }
        if self.cgd != 0.0 {
            res.reserve_c_pair(g, d);
        }
    }

    fn eval(&self, ctx: &mut EvalContext<'_>) {
        let (d, g, s) = (self.drain, self.gate, self.source);
        let (vd, vg, vs) = (ctx.value(d), ctx.value(g), ctx.value(s));
        let (id, dvd, dvg, dvs) = self.current(vd, vg, vs);
        ctx.add_f(d, id);
        ctx.add_f(s, -id);
        ctx.add_g(d, d, dvd);
        ctx.add_g(d, g, dvg);
        ctx.add_g(d, s, dvs);
        ctx.add_g(s, d, -dvd);
        ctx.add_g(s, g, -dvg);
        ctx.add_g(s, s, -dvs);
        if self.cgs != 0.0 {
            let q = self.cgs * (vg - vs);
            ctx.add_q(g, q);
            ctx.add_q(s, -q);
            ctx.add_c(g, g, self.cgs);
            ctx.add_c(s, s, self.cgs);
            ctx.add_c(g, s, -self.cgs);
            ctx.add_c(s, g, -self.cgs);
        }
        if self.cgd != 0.0 {
            let q = self.cgd * (vg - vd);
            ctx.add_q(g, q);
            ctx.add_q(d, -q);
            ctx.add_c(g, g, self.cgd);
            ctx.add_c(d, d, self.cgd);
            ctx.add_c(g, d, -self.cgd);
            ctx.add_c(d, g, -self.cgd);
        }
    }

    fn param_names(&self) -> &'static [&'static str] {
        &["kp", "vt0", "lambda", "w", "l", "cgs", "cgd"]
    }

    fn param(&self, i: usize) -> f64 {
        match i {
            0 => self.kp,
            1 => self.vt0,
            2 => self.lambda,
            3 => self.w,
            4 => self.l,
            5 => self.cgs,
            6 => self.cgd,
            _ => panic!("mosfet has 7 parameters, asked for {i}"),
        }
    }

    fn set_param(&mut self, i: usize, value: f64) {
        match i {
            0 => self.kp = value,
            1 => self.vt0 = value,
            2 => self.lambda = value,
            3 => self.w = value,
            4 => self.l = value,
            5 => self.cgs = value,
            6 => self.cgd = value,
            _ => panic!("mosfet has 7 parameters, asked for {i}"),
        }
    }

    fn stamp_param_deriv(&self, i: usize, ctx: &mut ParamDerivContext<'_>) {
        let (d, g, s) = (self.drain, self.gate, self.source);
        let (vd, vg, vs) = (ctx.value(d), ctx.value(g), ctx.value(s));
        match i {
            // Static current parameters: central finite difference of the
            // device equation itself is exact enough and avoids a second
            // analytic derivation of the swap/polarity plumbing; the model
            // is smooth in each parameter.
            0..=4 => {
                let v0 = self.param(i);
                let eps = (v0.abs() * 1e-7).max(1e-16);
                let mut hi = self.clone();
                hi.set_param(i, v0 + eps);
                let mut lo = self.clone();
                lo.set_param(i, v0 - eps);
                let d_id = (hi.current(vd, vg, vs).0 - lo.current(vd, vg, vs).0) / (2.0 * eps);
                ctx.add_df(d, d_id);
                ctx.add_df(s, -d_id);
            }
            5 => {
                let v = vg - vs;
                ctx.add_dq(g, v);
                ctx.add_dq(s, -v);
            }
            6 => {
                let v = vg - vd;
                ctx.add_dq(g, v);
                ctx.add_dq(d, -v);
            }
            _ => panic!("mosfet has 7 parameters, asked for {i}"),
        }
    }

    fn unknowns(&self) -> Vec<Unknown> {
        vec![self.drain, self.gate, self.source]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet::new("M1", Some(0), Some(1), Some(2), MosPolarity::Nmos)
    }

    #[test]
    fn cutoff_region() {
        let m = nmos();
        let (id, _, _, _) = m.current(1.0, 0.3, 0.0);
        assert!(id.abs() < 1e-9); // only GMIN leakage
    }

    #[test]
    fn saturation_square_law() {
        let mut m = nmos();
        m.lambda = 0.0;
        let (id, _, _, _) = m.current(3.0, 1.7, 0.0); // vov = 1.0, sat
        let beta = m.kp * m.w / m.l;
        assert!((id - 0.5 * beta).abs() < 1e-9, "id = {id}");
    }

    #[test]
    fn triode_region() {
        let mut m = nmos();
        m.lambda = 0.0;
        let (id, _, _, _) = m.current(0.1, 1.7, 0.0); // vds < vov
        let beta = m.kp * m.w / m.l;
        let expect = beta * (1.0 * 0.1 - 0.005);
        assert!((id - expect).abs() < 1e-9);
    }

    #[test]
    fn current_continuous_at_pinchoff() {
        let m = nmos();
        let vov = 1.0;
        let (lo, _, _, _) = m.current(vov - 1e-9, m.vt0 + vov, 0.0);
        let (hi, _, _, _) = m.current(vov + 1e-9, m.vt0 + vov, 0.0);
        assert!((lo - hi).abs() < 1e-10 * lo.abs().max(1e-12));
    }

    #[test]
    fn derivatives_match_fd() {
        let m = nmos();
        // Points in cutoff, triode, saturation, and reversed.
        for &(vd, vg, vs) in &[
            (2.0, 0.2, 0.0),
            (0.2, 1.5, 0.0),
            (3.0, 1.5, 0.0),
            (0.0, 1.5, 2.0), // vds < 0 → swap
            (1.0, 2.0, 0.5),
        ] {
            let (_, dvd, dvg, dvs) = m.current(vd, vg, vs);
            let eps = 1e-7;
            let fd_vd =
                (m.current(vd + eps, vg, vs).0 - m.current(vd - eps, vg, vs).0) / (2.0 * eps);
            let fd_vg =
                (m.current(vd, vg + eps, vs).0 - m.current(vd, vg - eps, vs).0) / (2.0 * eps);
            let fd_vs =
                (m.current(vd, vg, vs + eps).0 - m.current(vd, vg, vs - eps).0) / (2.0 * eps);
            assert!(
                (dvd - fd_vd).abs() < 1e-5 * (1.0 + fd_vd.abs()),
                "dvd at ({vd},{vg},{vs})"
            );
            assert!(
                (dvg - fd_vg).abs() < 1e-5 * (1.0 + fd_vg.abs()),
                "dvg at ({vd},{vg},{vs})"
            );
            assert!(
                (dvs - fd_vs).abs() < 1e-5 * (1.0 + fd_vs.abs()),
                "dvs at ({vd},{vg},{vs})"
            );
        }
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = nmos();
        let mut p = Mosfet::new("M2", Some(0), Some(1), Some(2), MosPolarity::Pmos);
        p.vt0 = n.vt0;
        // PMOS with all voltages negated must give the negated current.
        let (idn, ..) = n.current(2.0, 1.5, 0.0);
        let (idp, ..) = p.current(-2.0, -1.5, 0.0);
        assert!((idn + idp).abs() < 1e-15, "{idn} vs {idp}");
    }

    #[test]
    fn reverse_conduction_is_symmetric() {
        let m = nmos();
        // Swap drain/source voltages: current must reverse exactly
        // (up to GMIN leakage which also reverses).
        let (fwd, ..) = m.current(1.0, 2.0, 0.0);
        let (rev, ..) = m.current(0.0, 2.0, 1.0);
        assert!((fwd + rev).abs() < 1e-15);
    }

    #[test]
    fn param_derivs_match_fd() {
        let m = nmos().with_gate_caps(1e-15, 0.5e-15);
        let x = [2.0, 1.4, 0.1];
        for p in 0..7 {
            let mut df = vec![0.0; 3];
            let mut dq = vec![0.0; 3];
            let mut db = vec![0.0; 3];
            m.stamp_param_deriv(
                p,
                &mut ParamDerivContext {
                    x: &x,
                    t: 0.0,
                    df_dp: &mut df,
                    dq_dp: &mut dq,
                    db_dp: &mut db,
                },
            );
            let v0 = m.param(p);
            let eps = (v0.abs() * 1e-6).max(1e-18);
            let id_at = |pv: f64| {
                let mut mm = m.clone();
                mm.set_param(p, pv);
                mm.current(x[0], x[1], x[2]).0
            };
            let fd = (id_at(v0 + eps) - id_at(v0 - eps)) / (2.0 * eps);
            if p <= 4 {
                assert!(
                    (df[0] - fd).abs() < 1e-3 * (1e-9 + fd.abs()),
                    "param {p}: {} vs {fd}",
                    df[0]
                );
            } else {
                // Capacitance params affect q only.
                assert!(df.iter().all(|&v| v == 0.0));
                assert!(dq.iter().any(|&v| v != 0.0));
            }
        }
    }
}
