//! Damped Newton–Raphson iteration over the shared-pattern Jacobian.

use masc_sparse::{CsrMatrix, LuError, LuWorkspace};
use std::time::{Duration, Instant};

/// Newton iteration controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations per solve.
    pub max_iter: usize,
    /// Absolute update tolerance (V / A).
    pub abstol: f64,
    /// Relative update tolerance.
    pub reltol: f64,
    /// Maximum per-unknown update magnitude per iteration (damping);
    /// junction devices explode without this.
    pub damping_limit: f64,
    /// Maximum residual `‖r‖∞` accepted at convergence. Without this a
    /// small *step* can masquerade as convergence on ill-conditioned
    /// Jacobians (`‖J⁻¹ r‖` tiny while `‖r‖` is not).
    pub residual_tol: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iter: 500,
            abstol: 1e-9,
            reltol: 1e-6,
            damping_limit: 2.0,
            residual_tol: 1e-9,
        }
    }
}

/// Why a Newton solve failed.
#[derive(Debug, Clone, PartialEq)]
pub enum NewtonError {
    /// Iteration limit reached; carries the last update norm.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final `‖Δx‖∞`.
        update_norm: f64,
    },
    /// The Jacobian could not be factored.
    Lu(LuError),
}

impl std::fmt::Display for NewtonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NewtonError::NoConvergence {
                iterations,
                update_norm,
            } => write!(
                f,
                "newton failed to converge after {iterations} iterations (‖Δx‖∞ = {update_norm:.3e})"
            ),
            NewtonError::Lu(e) => write!(f, "jacobian factorization failed: {e}"),
        }
    }
}

impl std::error::Error for NewtonError {}

impl From<LuError> for NewtonError {
    fn from(e: LuError) -> Self {
        NewtonError::Lu(e)
    }
}

/// Statistics from one Newton solve.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NewtonStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Wall time spent factoring and solving.
    pub lu_time: Duration,
}

/// Runs damped Newton on `x` until the update norm passes tolerance.
///
/// `assemble(x, r, j)` must fill the residual `r` and Jacobian `j` at `x`.
///
/// # Errors
///
/// Returns [`NewtonError`] if the Jacobian is singular or the iteration
/// limit is exceeded.
pub fn newton_solve<F>(
    x: &mut [f64],
    opts: &NewtonOptions,
    lu: &mut LuWorkspace,
    j: &mut CsrMatrix,
    r: &mut Vec<f64>,
    mut assemble: F,
) -> Result<NewtonStats, NewtonError>
where
    F: FnMut(&[f64], &mut Vec<f64>, &mut CsrMatrix),
{
    let mut stats = NewtonStats::default();
    let mut last_norm = f64::INFINITY;
    let mut work = Vec::new();
    let mut delta = Vec::new();
    for it in 0..opts.max_iter {
        stats.iterations = it + 1;
        assemble(x, r, j);
        // Converged: the previous step was below tolerance AND the fresh
        // residual at the updated point is small.
        let rmax = r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let xmax_now = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if last_norm <= opts.abstol + opts.reltol * xmax_now && rmax <= opts.residual_tol {
            stats.iterations = it;
            return Ok(stats);
        }
        let lu_start = Instant::now();
        let factors = lu.factor(j)?;
        // Solve J Δ = −r.
        for v in r.iter_mut() {
            *v = -*v;
        }
        factors.solve_into(r, &mut work, &mut delta);
        stats.lu_time += lu_start.elapsed();

        // Damping: scale the whole step if any component is too large.
        let max_step = delta.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if max_step > opts.damping_limit {
            let scale = opts.damping_limit / max_step;
            for d in delta.iter_mut() {
                *d *= scale;
            }
        }
        let mut norm = 0.0f64;
        for (xi, di) in x.iter_mut().zip(&delta) {
            *xi += di;
            norm = norm.max(di.abs());
        }
        last_norm = norm;
    }
    Err(NewtonError::NoConvergence {
        iterations: opts.max_iter,
        update_norm: last_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::TripletMatrix;

    /// Solve x² = 4 via Newton on a 1×1 system.
    #[test]
    fn scalar_quadratic_converges() {
        let mut t = TripletMatrix::new(1, 1);
        t.add(0, 0, 1.0);
        let mut j = t.to_csr();
        let mut r = vec![0.0];
        let mut x = vec![3.0];
        let mut ws = LuWorkspace::new();
        let stats = newton_solve(
            &mut x,
            &NewtonOptions::default(),
            &mut ws,
            &mut j,
            &mut r,
            |x, r, j| {
                r[0] = x[0] * x[0] - 4.0;
                j.clear();
                j.add_at(0, 0, 2.0 * x[0]).unwrap();
            },
        )
        .unwrap();
        assert!((x[0] - 2.0).abs() < 1e-8);
        assert!(stats.iterations < 20);
    }

    /// A 2×2 nonlinear system with a known root.
    #[test]
    fn coupled_system_converges() {
        let mut t = TripletMatrix::new(2, 2);
        for r in 0..2 {
            for c in 0..2 {
                t.add(r, c, 1.0);
            }
        }
        let mut j = t.to_csr();
        let mut r = vec![0.0; 2];
        let mut x = vec![0.5, 1.7];
        // f0 = x0 + x1 − 3, f1 = x0·x1 − 2  → (1, 2) or (2, 1).
        let mut ws = LuWorkspace::new();
        newton_solve(
            &mut x,
            &NewtonOptions::default(),
            &mut ws,
            &mut j,
            &mut r,
            |x, r, j| {
                r[0] = x[0] + x[1] - 3.0;
                r[1] = x[0] * x[1] - 2.0;
                j.clear();
                j.add_at(0, 0, 1.0).unwrap();
                j.add_at(0, 1, 1.0).unwrap();
                j.add_at(1, 0, x[1]).unwrap();
                j.add_at(1, 1, x[0]).unwrap();
            },
        )
        .unwrap();
        assert!((x[0] + x[1] - 3.0).abs() < 1e-8);
        assert!((x[0] * x[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn singular_jacobian_reported() {
        let mut t = TripletMatrix::new(1, 1);
        t.add(0, 0, 0.0);
        let mut j = t.to_csr();
        let mut r = vec![0.0];
        let mut x = vec![1.0];
        let mut ws = LuWorkspace::new();
        let err = newton_solve(
            &mut x,
            &NewtonOptions::default(),
            &mut ws,
            &mut j,
            &mut r,
            |_x, r, j| {
                r[0] = 1.0;
                j.clear(); // leaves a structurally-present zero
            },
        )
        .unwrap_err();
        assert!(matches!(err, NewtonError::Lu(_)));
    }

    #[test]
    fn divergent_iteration_hits_limit() {
        let mut t = TripletMatrix::new(1, 1);
        t.add(0, 0, 1.0);
        let mut j = t.to_csr();
        let mut r = vec![0.0];
        let mut x = vec![0.5];
        // f = atan-like with no root: f(x) = 1 + x², f' = 2x — Newton
        // oscillates/diverges (no real root).
        let opts = NewtonOptions {
            max_iter: 30,
            ..NewtonOptions::default()
        };
        let mut ws = LuWorkspace::new();
        let err = newton_solve(&mut x, &opts, &mut ws, &mut j, &mut r, |x, r, j| {
            r[0] = 1.0 + x[0] * x[0];
            j.clear();
            j.add_at(0, 0, 2.0 * x[0].max(0.05)).unwrap();
        })
        .unwrap_err();
        assert!(matches!(err, NewtonError::NoConvergence { .. }));
    }

    #[test]
    fn damping_limits_first_step() {
        let mut t = TripletMatrix::new(1, 1);
        t.add(0, 0, 1.0);
        let mut j = t.to_csr();
        let mut r = vec![0.0];
        let mut x = vec![0.0];
        let mut first_x = None;
        let opts = NewtonOptions {
            damping_limit: 0.5,
            max_iter: 300,
            ..NewtonOptions::default()
        };
        // Linear system with solution far away: x = 100.
        let mut ws = LuWorkspace::new();
        newton_solve(&mut x, &opts, &mut ws, &mut j, &mut r, |x, r, j| {
            if first_x.is_none() && x[0] != 0.0 {
                first_x = Some(x[0]);
            }
            r[0] = x[0] - 100.0;
            j.clear();
            j.add_at(0, 0, 1.0).unwrap();
        })
        .unwrap();
        // The first accepted update must respect the damping limit.
        assert!(first_x.unwrap().abs() <= 0.5 + 1e-12);
        assert!((x[0] - 100.0).abs() < 1e-6);
    }
}
