//! SPICE-subset netlist parser.
//!
//! Supports the element cards needed by the paper's workload classes (R, C,
//! L, V, I, D, Q, M), SPICE engineering suffixes (`1k`, `2.2u`, `3meg`),
//! `key=value` model parameters, waveform specs (`DC`, `PULSE(…)`,
//! `SIN(…)`, `PWL(…)`), comments (`*`), and the `.tran`/`.end` directives.
//!
//! # Examples
//!
//! ```
//! use masc_circuit::parser::parse_netlist;
//!
//! let src = "\
//! * RC lowpass
//! V1 in 0 PULSE(0 5 0 1n 1n 1u 2u)
//! R1 in out 1k
//! C1 out 0 1n
//! .tran 10n 4u
//! .end";
//! let parsed = parse_netlist(src).expect("valid netlist");
//! assert_eq!(parsed.circuit.devices().len(), 3);
//! assert!(parsed.tran.is_some());
//! ```

use crate::circuit::Circuit;
use crate::devices::{
    Bjt, BjtPolarity, Capacitor, CurrentSource, Device, Diode, Inductor, MosPolarity, Mosfet,
    Resistor, Vccs, Vcvs, VoltageSource,
};
use crate::transient::TranOptions;
use crate::waveform::Waveform;
use core::fmt;

/// A parsed netlist: the circuit plus any `.tran` directive found.
#[derive(Debug, Clone)]
pub struct ParsedNetlist {
    /// The assembled circuit.
    pub circuit: Circuit,
    /// `.tran dt tstop`, if present.
    pub tran: Option<TranOptions>,
    /// The netlist title (first line if it is not an element card).
    pub title: Option<String>,
}

/// A netlist syntax error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNetlistError {}

fn err(line: usize, message: impl Into<String>) -> ParseNetlistError {
    ParseNetlistError {
        line,
        message: message.into(),
    }
}

/// Error from [`parse_value`]: the token is not a SPICE number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    /// The offending token.
    pub text: String,
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid number {:?}", self.text)
    }
}

impl std::error::Error for ParseValueError {}

/// Parses a SPICE number with engineering suffix (`1k`, `2.2u`, `3meg`, …).
///
/// # Errors
///
/// Returns [`ParseValueError`] if the text is not a number.
pub fn parse_value(text: &str) -> Result<f64, ParseValueError> {
    let lower = text.to_ascii_lowercase();
    let (digits, mult) = if let Some(stripped) = lower.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = lower.strip_suffix("mil") {
        (stripped, 25.4e-6)
    } else {
        let mult = match lower.chars().last() {
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            _ => 1.0,
        };
        if mult != 1.0 {
            (&lower[..lower.len() - 1], mult)
        } else {
            (lower.as_str(), 1.0)
        }
    };
    digits
        .parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| ParseValueError {
            text: text.to_string(),
        })
}

/// Splits `key=value` tokens out of a token list.
fn split_kv(tokens: &[&str]) -> (Vec<String>, Vec<(String, String)>) {
    let mut plain = Vec::new();
    let mut kv = Vec::new();
    for t in tokens {
        if let Some((k, v)) = t.split_once('=') {
            kv.push((k.to_ascii_lowercase(), v.to_string()));
        } else {
            plain.push(t.to_string());
        }
    }
    (plain, kv)
}

/// Parses a waveform spec from the tokens following the node list.
fn parse_waveform(tokens: &[String], line: usize) -> Result<Waveform, ParseNetlistError> {
    if tokens.is_empty() {
        return Err(err(line, "source needs a value or waveform"));
    }
    let joined = tokens.join(" ");
    let upper = joined.to_ascii_uppercase();
    let args_of = |name: &str| -> Result<Vec<f64>, ParseNetlistError> {
        let open = upper
            .find('(')
            .ok_or_else(|| err(line, format!("{name} needs (")))?;
        let close = upper
            .rfind(')')
            .ok_or_else(|| err(line, format!("{name} needs )")))?;
        // `)` before `(` (e.g. "PULSE) (") would make the slice below
        // panic with start > end.
        if close < open + 1 {
            return Err(err(line, format!("{name}: ')' before '('")));
        }
        joined
            .get(open + 1..close)
            .ok_or_else(|| err(line, format!("{name}: malformed argument list")))?
            .split([' ', ','])
            .filter(|s| !s.is_empty())
            .map(|s| parse_value(s).map_err(|m| err(line, m.to_string())))
            .collect()
    };
    if upper.starts_with("PULSE") {
        let a = args_of("PULSE")?;
        if a.len() < 7 {
            return Err(err(line, "PULSE needs 7 arguments (v1 v2 td tr tf pw per)"));
        }
        Ok(Waveform::Pulse {
            v1: a[0],
            v2: a[1],
            td: a[2],
            tr: a[3],
            tf: a[4],
            pw: a[5],
            per: a[6],
        })
    } else if upper.starts_with("SIN") {
        let a = args_of("SIN")?;
        if a.len() < 3 {
            return Err(err(line, "SIN needs at least 3 arguments (vo va freq)"));
        }
        Ok(Waveform::Sin {
            vo: a[0],
            va: a[1],
            freq: a[2],
            td: a.get(3).copied().unwrap_or(0.0),
            theta: a.get(4).copied().unwrap_or(0.0),
        })
    } else if upper.starts_with("PWL") {
        let a = args_of("PWL")?;
        if a.len() < 2 || a.len() % 2 != 0 {
            return Err(err(line, "PWL needs an even number of arguments"));
        }
        let points = a.chunks(2).map(|p| (p[0], p[1])).collect();
        Ok(Waveform::Pwl(points))
    } else if upper.starts_with("DC") {
        let value = tokens.get(1).ok_or_else(|| err(line, "DC needs a value"))?;
        Ok(Waveform::Dc(
            parse_value(value).map_err(|m| err(line, m.to_string()))?,
        ))
    } else {
        Ok(Waveform::Dc(
            parse_value(&tokens[0]).map_err(|m| err(line, m.to_string()))?,
        ))
    }
}

/// Parses a complete netlist.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending line on any syntax or
/// semantic problem (bad numbers, missing nodes, duplicate names, …).
pub fn parse_netlist(source: &str) -> Result<ParsedNetlist, ParseNetlistError> {
    let mut circuit = Circuit::new();
    let mut tran = None;
    let mut title = None;

    // Join continuation lines (starting with '+').
    let mut lines: Vec<(usize, String)> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix('+') {
            if let Some(last) = lines.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest.trim());
                continue;
            }
        }
        lines.push((i + 1, line.to_string()));
    }

    let mut first_content = true;
    for (lineno, line) in lines {
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let is_first = first_content;
        first_content = false;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        // Defensive: a card whose every character is whitespace after
        // continuation joining has no tokens. Indexing would panic here;
        // report it as a malformed line instead.
        let Some(&head) = tokens.first() else {
            return Err(err(lineno, "blank device card"));
        };
        let upper_head = head.to_ascii_uppercase();
        if upper_head == ".END" {
            break;
        }
        if upper_head == ".TRAN" {
            if tokens.len() < 3 {
                return Err(err(lineno, ".tran needs dt and tstop"));
            }
            let dt = parse_value(tokens[1]).map_err(|m| err(lineno, m.to_string()))?;
            let t_stop = parse_value(tokens[2]).map_err(|m| err(lineno, m.to_string()))?;
            if dt <= 0.0 || t_stop < dt {
                return Err(err(lineno, ".tran needs 0 < dt <= tstop"));
            }
            tran = Some(TranOptions::new(t_stop, dt));
            continue;
        }
        if upper_head.starts_with('.') {
            // Unknown directives are ignored (like .options in real decks).
            continue;
        }
        // Structured error instead of `expect`: `split_whitespace` never
        // yields an empty token today, but a panic here would take the
        // whole process down on an adversarial netlist if that invariant
        // ever shifts (e.g. a future tokenizer change).
        let Some(kind) = upper_head.chars().next() else {
            return Err(err(lineno, "empty device card"));
        };
        if !kind.is_ascii_alphabetic() {
            return Err(err(lineno, format!("unrecognized card {head:?}")));
        }
        // SPICE treats the first line as a title; we accept element cards
        // there too, falling back to title only when the line does not
        // parse as an element.
        let known = matches!(
            kind,
            'R' | 'C' | 'L' | 'V' | 'I' | 'D' | 'Q' | 'M' | 'G' | 'E'
        );
        if !known {
            if is_first && title.is_none() {
                title = Some(line.clone());
                continue;
            }
            return Err(err(lineno, format!("unknown element type {kind:?}")));
        }

        let need = |count: usize| -> Result<(), ParseNetlistError> {
            if tokens.len() < count {
                Err(err(lineno, format!("{head} needs at least {count} fields")))
            } else {
                Ok(())
            }
        };
        let name = head.to_string();
        // Snapshot so a failed first-line parse (title text that happens to
        // start with an element letter) does not leave stray nodes behind.
        let snapshot = if is_first {
            Some(circuit.clone())
        } else {
            None
        };
        let parsed: Result<Device, ParseNetlistError> = (|| {
            let device = match kind {
                'R' | 'C' | 'L' => {
                    need(4)?;
                    let a = circuit.node(tokens[1]).unknown();
                    let b = circuit.node(tokens[2]).unknown();
                    let value = parse_value(tokens[3]).map_err(|m| err(lineno, m.to_string()))?;
                    if value <= 0.0 {
                        return Err(err(lineno, format!("{head}: value must be positive")));
                    }
                    match kind {
                        'R' => Device::Resistor(Resistor::new(name, a, b, value)),
                        'C' => Device::Capacitor(Capacitor::new(name, a, b, value)),
                        _ => Device::Inductor(Inductor::new(name, a, b, value)),
                    }
                }
                'G' | 'E' => {
                    need(6)?;
                    let a = circuit.node(tokens[1]).unknown();
                    let b = circuit.node(tokens[2]).unknown();
                    let cp = circuit.node(tokens[3]).unknown();
                    let cn = circuit.node(tokens[4]).unknown();
                    let value = parse_value(tokens[5]).map_err(|m| err(lineno, m.to_string()))?;
                    if kind == 'G' {
                        Device::Vccs(Vccs::new(name, a, b, cp, cn, value))
                    } else {
                        Device::Vcvs(Vcvs::new(name, a, b, cp, cn, value))
                    }
                }
                'V' | 'I' => {
                    need(4)?;
                    let a = circuit.node(tokens[1]).unknown();
                    let b = circuit.node(tokens[2]).unknown();
                    let rest: Vec<String> = tokens[3..].iter().map(|s| s.to_string()).collect();
                    let wave = parse_waveform(&rest, lineno)?;
                    if kind == 'V' {
                        Device::VoltageSource(VoltageSource::new(name, a, b, wave))
                    } else {
                        Device::CurrentSource(CurrentSource::new(name, a, b, wave))
                    }
                }
                'D' => {
                    need(3)?;
                    let a = circuit.node(tokens[1]).unknown();
                    let c = circuit.node(tokens[2]).unknown();
                    let (_, kv) = split_kv(&tokens[3..]);
                    let mut d = Diode::new(name, a, c);
                    for (k, v) in kv {
                        let value = parse_value(&v).map_err(|m| err(lineno, m.to_string()))?;
                        match k.as_str() {
                            "is" => d.is_sat = value,
                            "n" => d.n_emission = value,
                            "cj0" => d.cj0 = value,
                            "vj" => d.vj = value,
                            "m" => d.mj = value,
                            _ => return Err(err(lineno, format!("unknown diode param {k}"))),
                        }
                    }
                    Device::Diode(d)
                }
                'Q' => {
                    need(4)?;
                    let c = circuit.node(tokens[1]).unknown();
                    let b = circuit.node(tokens[2]).unknown();
                    let e = circuit.node(tokens[3]).unknown();
                    let (plain, kv) = split_kv(&tokens[4..]);
                    let mut q = Bjt::new(name, c, b, e);
                    match plain.first().map(|s| s.to_ascii_uppercase()) {
                        Some(ref m) if m == "PNP" => q.polarity = BjtPolarity::Pnp,
                        Some(ref m) if m == "NPN" => {}
                        None => {}
                        Some(other) => {
                            return Err(err(lineno, format!("unknown bjt model {other}")))
                        }
                    }
                    for (k, v) in kv {
                        let value = parse_value(&v).map_err(|m| err(lineno, m.to_string()))?;
                        match k.as_str() {
                            "is" => q.is_sat = value,
                            "bf" => q.beta_f = value,
                            "br" => q.beta_r = value,
                            "tf" => q.tf = value,
                            "tr" => q.tr = value,
                            _ => return Err(err(lineno, format!("unknown bjt param {k}"))),
                        }
                    }
                    Device::Bjt(q)
                }
                'M' => {
                    need(4)?;
                    let d = circuit.node(tokens[1]).unknown();
                    let g = circuit.node(tokens[2]).unknown();
                    let s = circuit.node(tokens[3]).unknown();
                    let (plain, kv) = split_kv(&tokens[4..]);
                    let polarity = match plain.first().map(|s| s.to_ascii_uppercase()) {
                        Some(ref p) if p == "PMOS" => MosPolarity::Pmos,
                        Some(ref p) if p == "NMOS" => MosPolarity::Nmos,
                        None => MosPolarity::Nmos,
                        Some(other) => {
                            return Err(err(lineno, format!("unknown mosfet model {other}")))
                        }
                    };
                    let mut m = Mosfet::new(name, d, g, s, polarity);
                    for (k, v) in kv {
                        let value = parse_value(&v).map_err(|m| err(lineno, m.to_string()))?;
                        match k.as_str() {
                            "kp" => m.kp = value,
                            "vt0" => m.vt0 = value,
                            "lambda" => m.lambda = value,
                            "w" => m.w = value,
                            "l" => m.l = value,
                            "cgs" => m.cgs = value,
                            "cgd" => m.cgd = value,
                            _ => return Err(err(lineno, format!("unknown mosfet param {k}"))),
                        }
                    }
                    Device::Mosfet(m)
                }
                // The `known` filter above admits only the listed letters;
                // keep the residual arm a structured error, not a panic.
                _ => return Err(err(lineno, format!("unknown element type {kind:?}"))),
            };
            Ok(device)
        })();
        match parsed {
            Ok(device) => {
                circuit
                    .add(device)
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
            Err(e) => {
                // Title fallback only for *structural* mismatches (too few
                // fields) — a first line like "My Test Circuit". Value or
                // parameter errors on a well-formed card are real errors.
                if is_first && title.is_none() && e.message.contains("needs at least") {
                    if let Some(snap) = snapshot {
                        circuit = snap;
                    }
                    title = Some(line.clone());
                    continue;
                }
                return Err(e);
            }
        }
    }
    Ok(ParsedNetlist {
        circuit,
        tran,
        title,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_with_suffixes() {
        assert_eq!(parse_value("100").unwrap(), 100.0);
        assert_eq!(parse_value("1k").unwrap(), 1000.0);
        assert_eq!(parse_value("2.2u").unwrap(), 2.2e-6);
        assert_eq!(parse_value("3meg").unwrap(), 3e6);
        assert_eq!(parse_value("5n").unwrap(), 5e-9);
        assert_eq!(parse_value("1.5p").unwrap(), 1.5e-12);
        assert_eq!(parse_value("2f").unwrap(), 2e-15);
        assert_eq!(parse_value("-3m").unwrap(), -3e-3);
        assert_eq!(parse_value("1e-9").unwrap(), 1e-9);
        assert!(parse_value("abc").is_err());
    }

    #[test]
    fn basic_rc_netlist() {
        let src = "\
V1 in 0 DC 5
R1 in out 1k
C1 out 0 1u
.tran 1u 1m
.end";
        let p = parse_netlist(src).unwrap();
        assert_eq!(p.circuit.devices().len(), 3);
        let tran = p.tran.unwrap();
        assert_eq!(tran.dt, 1e-6);
        assert_eq!(tran.t_stop, 1e-3);
    }

    #[test]
    fn title_and_comments() {
        let src = "\
My Test Circuit
* a comment
R1 a 0 1k
.end";
        let p = parse_netlist(src).unwrap();
        assert_eq!(p.title.as_deref(), Some("My Test Circuit"));
        assert_eq!(p.circuit.devices().len(), 1);
    }

    #[test]
    fn waveform_cards() {
        let src = "\
V1 a 0 PULSE(0 5 1n 2n 2n 10n 20n)
V2 b 0 SIN(0 1 1k)
V3 c 0 PWL(0 0 1u 1 2u 0)
I1 d 0 2m
.end";
        let p = parse_netlist(src).unwrap();
        assert_eq!(p.circuit.devices().len(), 4);
        match &p.circuit.devices()[0] {
            Device::VoltageSource(v) => {
                assert!(matches!(v.waveform, Waveform::Pulse { v2: 5.0, .. }))
            }
            other => panic!("expected vsource, got {other:?}"),
        }
        match &p.circuit.devices()[3] {
            Device::CurrentSource(i) => assert_eq!(i.waveform, Waveform::Dc(2e-3)),
            other => panic!("expected isource, got {other:?}"),
        }
    }

    #[test]
    fn semiconductor_cards_with_params() {
        let src = "\
D1 a 0 IS=1e-15 N=1.5 CJ0=2p
Q1 c b 0 BF=80 IS=1e-16 TF=1n
M1 d g 0 NMOS KP=5e-5 VT0=0.6 W=20u L=2u
M2 d2 g2 vdd PMOS
.end";
        let p = parse_netlist(src).unwrap();
        match &p.circuit.devices()[0] {
            Device::Diode(d) => {
                assert_eq!(d.is_sat, 1e-15);
                assert_eq!(d.n_emission, 1.5);
                assert_eq!(d.cj0, 2e-12);
            }
            other => panic!("{other:?}"),
        }
        match &p.circuit.devices()[1] {
            Device::Bjt(q) => {
                assert_eq!(q.beta_f, 80.0);
                assert_eq!(q.tf, 1e-9);
            }
            other => panic!("{other:?}"),
        }
        match &p.circuit.devices()[3] {
            Device::Mosfet(m) => assert_eq!(m.polarity, MosPolarity::Pmos),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn continuation_lines() {
        let src = "\
V1 a 0 PULSE(0 5
+ 1n 2n 2n 10n 20n)
.end";
        let p = parse_netlist(src).unwrap();
        assert_eq!(p.circuit.devices().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_netlist("R1 a 0 abc\n.end").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_netlist("R1 a 0 1k\nR1 b 0 2k\n.end").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));
        let e = parse_netlist("R1 a 0 1k\nD1 x y ZZZ=1\n.end").unwrap_err();
        assert_eq!(e.line, 2);
        // A structurally-short card on line 1 becomes the title; after the
        // first line it is a hard error.
        let e = parse_netlist("R1 a 0 1k\nR2 a 0\n.end").unwrap_err();
        assert!(e.message.contains("at least"));
        let titled = parse_netlist("R1 a 0\nR2 a 0 1k\n.end").unwrap();
        assert_eq!(titled.title.as_deref(), Some("R1 a 0"));
    }

    #[test]
    fn adversarial_netlists_error_instead_of_panicking() {
        // Reversed parentheses in a waveform spec: `rfind(')')` lands
        // before `find('(')`, which used to slice with start > end.
        let e = parse_netlist("R1 a 0 1k\nV1 a 0 PULSE) (\n.end").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("')' before '('"), "{}", e.message);
        // Same shape through the SIN and PWL arms.
        assert!(parse_netlist("R1 a 0 1k\nV1 a 0 SIN) x (\n.end").is_err());
        assert!(parse_netlist("R1 a 0 1k\nI1 a 0 PWL)(\n.end").is_err());
        // Empty argument list is an argument-count error, not a panic.
        let e = parse_netlist("R1 a 0 1k\nV1 a 0 PULSE()\n.end").unwrap_err();
        assert!(e.message.contains("7 arguments"), "{}", e.message);
        // A deck that is nothing but continuation markers: the leading
        // `+` has no previous line to join, so it survives as a card.
        let e = parse_netlist("+\n.end").unwrap_err();
        assert_eq!(e.line, 1);
        // Non-alphabetic card heads after the title line are structured
        // errors with the right line number.
        let e = parse_netlist("R1 a 0 1k\n@bad card\n.end").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unrecognized"), "{}", e.message);
        // Blank/comment-only decks parse to an empty circuit.
        for src in ["", "\n\n", "* only a comment\n", ".end"] {
            let p = parse_netlist(src).expect("empty deck parses");
            assert!(p.circuit.devices().is_empty());
        }
    }

    #[test]
    fn negative_component_values_rejected() {
        assert!(parse_netlist("R1 a 0 -5\n.end").is_err());
        assert!(parse_netlist("C1 a 0 0\n.end").is_err());
    }

    #[test]
    fn bad_tran_rejected() {
        assert!(parse_netlist(".tran 1u\n.end").is_err());
        assert!(parse_netlist(".tran 2m 1m\n.end").is_err());
    }

    #[test]
    fn controlled_source_cards() {
        let src = "\
G1 out 0 ctrl 0 2m
E1 amp 0 ctrl 0 10
.end";
        let p = parse_netlist(src).unwrap();
        match &p.circuit.devices()[0] {
            Device::Vccs(g) => assert_eq!(g.gm, 2e-3),
            other => panic!("expected vccs, got {other:?}"),
        }
        match &p.circuit.devices()[1] {
            Device::Vcvs(e) => assert_eq!(e.gain, 10.0),
            other => panic!("expected vcvs, got {other:?}"),
        }
        // Too few fields is an error (after line 1).
        let e = parse_netlist("R1 a 0 1k\nG1 out 0 ctrl 2m\n.end").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn pnp_bjt_card() {
        let src = "\
Q1 c b e PNP IS=1e-15
Q2 c2 b2 e2 NPN
Q3 c3 b3 e3
.end";
        let p = parse_netlist(src).unwrap();
        match &p.circuit.devices()[0] {
            Device::Bjt(q) => {
                assert_eq!(q.polarity, BjtPolarity::Pnp);
                assert_eq!(q.is_sat, 1e-15);
            }
            other => panic!("{other:?}"),
        }
        for i in [1usize, 2] {
            match &p.circuit.devices()[i] {
                Device::Bjt(q) => assert_eq!(q.polarity, BjtPolarity::Npn),
                other => panic!("{other:?}"),
            }
        }
        let e = parse_netlist("R1 a 0 1k\nQ1 c b e JFET\n.end").unwrap_err();
        assert!(e.message.contains("unknown bjt model"));
    }

    #[test]
    fn vcvs_solves_as_ideal_amplifier() {
        // E amplifies a divider's midpoint by 5: out = 5 · 2.5 = 12.5 V.
        let src = "\
V1 in 0 DC 5
R1 in mid 1k
R2 mid 0 1k
E1 out 0 mid 0 5
RL out 0 10k
.end";
        let mut p = parse_netlist(src).unwrap();
        let mut sys = p.circuit.elaborate().unwrap();
        let sol = crate::dc::dc_operating_point(
            &p.circuit,
            &mut sys,
            &crate::newton::NewtonOptions::default(),
        )
        .unwrap();
        let out = p.circuit.find_node("out").unwrap().unknown().unwrap();
        assert!((sol.x[out] - 12.5).abs() < 1e-9, "v(out) = {}", sol.x[out]);
    }

    #[test]
    fn parsed_netlist_elaborates_and_solves() {
        let src = "\
V1 in 0 DC 10
R1 in out 1k
R2 out 0 1k
.end";
        let mut p = parse_netlist(src).unwrap();
        let mut sys = p.circuit.elaborate().unwrap();
        let sol = crate::dc::dc_operating_point(
            &p.circuit,
            &mut sys,
            &crate::newton::NewtonOptions::default(),
        )
        .unwrap();
        let out = p.circuit.find_node("out").unwrap().unknown().unwrap();
        assert!((sol.x[out] - 5.0).abs() < 1e-9);
    }
}
