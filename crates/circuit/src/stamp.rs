//! Stamping interfaces: how devices contribute to the MNA system.
//!
//! The DAE is `g(x, t) = d/dt q(x) + f(x) + b(t) = 0` (paper eq. 1). Each
//! device accumulates into:
//!
//! - `f` — static currents, and `G = ∂f/∂x`;
//! - `q` — charges/fluxes, and `C = ∂q/∂x`;
//! - `b` — independent-source terms.
//!
//! Ground (node 0) is eliminated: unknown indices are `Option<usize>` and
//! stamps touching ground are silently dropped, which is exactly the row/
//! column deletion of standard MNA.

use masc_sparse::{CsrMatrix, TripletMatrix};

/// An unknown index: `None` is ground.
pub type Unknown = Option<usize>;

/// Pattern-reservation sink used during elaboration.
///
/// Devices declare every `(row, col)` slot they will ever stamp so the
/// shared [`masc_sparse::Pattern`] can be built once.
#[derive(Debug)]
pub struct Reserver<'a> {
    g: &'a mut TripletMatrix,
    c: &'a mut TripletMatrix,
}

impl<'a> Reserver<'a> {
    /// Creates a reserver over the G- and C-pattern assembly buffers.
    pub fn new(g: &'a mut TripletMatrix, c: &'a mut TripletMatrix) -> Self {
        Self { g, c }
    }

    /// Reserves a slot in `G = ∂f/∂x`.
    pub fn reserve_g(&mut self, row: Unknown, col: Unknown) {
        if let (Some(r), Some(c)) = (row, col) {
            self.g.add(r, c, 0.0);
        }
    }

    /// Reserves a slot in `C = ∂q/∂x`.
    pub fn reserve_c(&mut self, row: Unknown, col: Unknown) {
        if let (Some(r), Some(col_)) = (row, col) {
            self.c.add(r, col_, 0.0);
        }
    }

    /// Reserves the full 2×2 stamp {(a,a),(a,b),(b,a),(b,b)} in `G`.
    pub fn reserve_g_pair(&mut self, a: Unknown, b: Unknown) {
        self.reserve_g(a, a);
        self.reserve_g(a, b);
        self.reserve_g(b, a);
        self.reserve_g(b, b);
    }

    /// Reserves the full 2×2 stamp in `C`.
    pub fn reserve_c_pair(&mut self, a: Unknown, b: Unknown) {
        self.reserve_c(a, a);
        self.reserve_c(a, b);
        self.reserve_c(b, a);
        self.reserve_c(b, b);
    }
}

/// Evaluation sink: one pass accumulates `f`, `q`, `b`, `G`, `C` at a given
/// state `x` and time `t`.
#[derive(Debug)]
pub struct EvalContext<'a> {
    /// Current solution vector (node voltages then branch currents).
    pub x: &'a [f64],
    /// Evaluation time.
    pub t: f64,
    /// `∂f/∂x` accumulator.
    pub g: &'a mut CsrMatrix,
    /// `∂q/∂x` accumulator.
    pub c: &'a mut CsrMatrix,
    /// Static residual accumulator.
    pub f: &'a mut [f64],
    /// Charge/flux accumulator.
    pub q: &'a mut [f64],
    /// Independent-source accumulator.
    pub b: &'a mut [f64],
}

impl<'a> EvalContext<'a> {
    /// Voltage/current of unknown `u` (0 for ground).
    #[inline]
    pub fn value(&self, u: Unknown) -> f64 {
        u.map_or(0.0, |i| self.x[i])
    }

    /// Accumulates into the static residual `f`.
    #[inline]
    pub fn add_f(&mut self, row: Unknown, v: f64) {
        if let Some(r) = row {
            self.f[r] += v;
        }
    }

    /// Accumulates into the charge vector `q`.
    #[inline]
    pub fn add_q(&mut self, row: Unknown, v: f64) {
        if let Some(r) = row {
            self.q[r] += v;
        }
    }

    /// Accumulates into the source vector `b`.
    #[inline]
    pub fn add_b(&mut self, row: Unknown, v: f64) {
        if let Some(r) = row {
            self.b[r] += v;
        }
    }

    /// Accumulates into `G = ∂f/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was not reserved during elaboration — that is a
    /// device implementation bug, not a user error.
    #[inline]
    pub fn add_g(&mut self, row: Unknown, col: Unknown, v: f64) {
        if let (Some(r), Some(c)) = (row, col) {
            self.g
                .add_at(r, c, v)
                .expect("G stamp outside reserved pattern");
        }
    }

    /// Accumulates into `C = ∂q/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was not reserved during elaboration.
    #[inline]
    pub fn add_c(&mut self, row: Unknown, col: Unknown, v: f64) {
        if let (Some(r), Some(c)) = (row, col) {
            self.c
                .add_at(r, c, v)
                .expect("C stamp outside reserved pattern");
        }
    }

    /// Stamps a conductance `g` between `a` and `b` into `G` and the
    /// corresponding current into `f` (the standard two-terminal resistive
    /// stamp).
    pub fn stamp_conductance(&mut self, a: Unknown, b: Unknown, g: f64) {
        let v = self.value(a) - self.value(b);
        self.add_f(a, g * v);
        self.add_f(b, -g * v);
        self.add_g(a, a, g);
        self.add_g(b, b, g);
        self.add_g(a, b, -g);
        self.add_g(b, a, -g);
    }
}

/// Parameter-derivative sink: accumulates `∂f/∂p`, `∂q/∂p`, `∂b/∂p` at a
/// fixed state (paper eq. 5 ingredients).
#[derive(Debug)]
pub struct ParamDerivContext<'a> {
    /// State at which derivatives are evaluated.
    pub x: &'a [f64],
    /// Evaluation time.
    pub t: f64,
    /// `∂f/∂p` accumulator.
    pub df_dp: &'a mut [f64],
    /// `∂q/∂p` accumulator.
    pub dq_dp: &'a mut [f64],
    /// `∂b/∂p` accumulator.
    pub db_dp: &'a mut [f64],
}

impl<'a> ParamDerivContext<'a> {
    /// Voltage/current of unknown `u` (0 for ground).
    #[inline]
    pub fn value(&self, u: Unknown) -> f64 {
        u.map_or(0.0, |i| self.x[i])
    }

    /// Accumulates into `∂f/∂p`.
    #[inline]
    pub fn add_df(&mut self, row: Unknown, v: f64) {
        if let Some(r) = row {
            self.df_dp[r] += v;
        }
    }

    /// Accumulates into `∂q/∂p`.
    #[inline]
    pub fn add_dq(&mut self, row: Unknown, v: f64) {
        if let Some(r) = row {
            self.dq_dp[r] += v;
        }
    }

    /// Accumulates into `∂b/∂p`.
    #[inline]
    pub fn add_db(&mut self, row: Unknown, v: f64) {
        if let Some(r) = row {
            self.db_dp[r] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::TripletMatrix;

    #[test]
    fn ground_stamps_are_dropped() {
        let mut gt = TripletMatrix::new(1, 1);
        let mut ct = TripletMatrix::new(1, 1);
        {
            let mut res = Reserver::new(&mut gt, &mut ct);
            res.reserve_g_pair(Some(0), None); // only (0,0) lands
            res.reserve_c_pair(None, None); // nothing lands
        }
        let g = gt.to_csr();
        assert_eq!(g.nnz(), 1);
        let c = ct.to_csr();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn conductance_stamp_matches_hand_math() {
        let mut gt = TripletMatrix::new(2, 2);
        let mut ct = TripletMatrix::new(2, 2);
        {
            let mut res = Reserver::new(&mut gt, &mut ct);
            res.reserve_g_pair(Some(0), Some(1));
        }
        let mut g = gt.to_csr();
        let mut c = ct.to_csr();
        let x = [2.0, 0.5];
        let (mut f, mut q, mut b) = (vec![0.0; 2], vec![0.0; 2], vec![0.0; 2]);
        let mut ctx = EvalContext {
            x: &x,
            t: 0.0,
            g: &mut g,
            c: &mut c,
            f: &mut f,
            q: &mut q,
            b: &mut b,
        };
        ctx.stamp_conductance(Some(0), Some(1), 0.1);
        assert!((f[0] - 0.15).abs() < 1e-15);
        assert!((f[1] + 0.15).abs() < 1e-15);
        assert_eq!(g.get(0, 0), Some(0.1));
        assert_eq!(g.get(0, 1), Some(-0.1));
        assert_eq!(g.get(1, 0), Some(-0.1));
        assert_eq!(g.get(1, 1), Some(0.1));
    }

    #[test]
    fn value_of_ground_is_zero() {
        let gt = TripletMatrix::new(1, 1);
        let ct = TripletMatrix::new(1, 1);
        let mut g = gt.to_csr();
        let mut c = ct.to_csr();
        let x = [7.0];
        let (mut f, mut q, mut b) = (vec![0.0; 1], vec![0.0; 1], vec![0.0; 1]);
        let ctx = EvalContext {
            x: &x,
            t: 0.0,
            g: &mut g,
            c: &mut c,
            f: &mut f,
            q: &mut q,
            b: &mut b,
        };
        assert_eq!(ctx.value(None), 0.0);
        assert_eq!(ctx.value(Some(0)), 7.0);
        let _ = (gt.len(), ct.len());
    }
}
