//! Property tests on simulator physics invariants (masc-testkit).

use masc_circuit::devices::{
    Capacitor, CurrentSource, Device, Diode, Resistor, Vccs, VoltageSource,
};
use masc_circuit::transient::{transient, NullSink, TranOptions};
use masc_circuit::{Circuit, Waveform};
use masc_testkit::gen::{self, Gen};
use masc_testkit::{prop, prop_assert};

/// Builds a random multi-device circuit over 6 nodes. Every node gets a
/// resistor to ground so the DC point exists.
fn circuits() -> impl Gen<Value = Circuit> {
    gen::from_fn(|rng| {
        let n = 6usize;
        let mut ckt = Circuit::new();
        let node = |ckt: &mut Circuit, i: usize| ckt.node(&format!("n{i}")).unknown();
        let input = ckt.node("n0").unknown();
        let vin = rng.range_f64(0.5, 5.0);
        ckt.add(Device::VoltageSource(VoltageSource::new(
            "V1",
            input,
            None,
            Waveform::Sin {
                vo: 0.0,
                va: vin,
                freq: 1e6,
                td: 0.0,
                theta: 0.0,
            },
        )))
        .expect("fresh");
        for i in 0..n {
            let a = node(&mut ckt, i);
            ckt.add(Device::Resistor(Resistor::new(
                format!("RG{i}"),
                a,
                None,
                10e3,
            )))
            .expect("unique");
        }
        for k in 0..rng.range_usize(3, 12) {
            let (a, b) = (rng.range_usize(0, n), rng.range_usize(0, n));
            if a == b {
                continue;
            }
            let r = rng.range_f64(10.0, 1e5);
            let (a, b) = (node(&mut ckt, a), node(&mut ckt, b));
            ckt.add(Device::Resistor(Resistor::new(format!("R{k}"), a, b, r)))
                .expect("unique");
        }
        for k in 0..rng.range_usize(0, 6) {
            let (a, b) = (rng.range_usize(0, n), rng.range_usize(0, n));
            if a == b {
                continue;
            }
            let c = rng.range_f64(1e-13, 1e-9);
            let (a, b) = (node(&mut ckt, a), node(&mut ckt, b));
            ckt.add(Device::Capacitor(Capacitor::new(format!("C{k}"), a, b, c)))
                .expect("unique");
        }
        for k in 0..rng.range_usize(0, 3) {
            let (a, b) = (rng.range_usize(0, n), rng.range_usize(0, n));
            if a == b {
                continue;
            }
            let (a, b) = (node(&mut ckt, a), node(&mut ckt, b));
            let mut d = Diode::new(format!("D{k}"), a, b);
            d.cj0 = 1e-12;
            ckt.add(Device::Diode(d)).expect("unique");
        }
        for k in 0..rng.range_usize(0, 3) {
            let (d, g) = (rng.range_usize(0, n), rng.range_usize(0, n));
            if d == g {
                continue;
            }
            let gm = rng.range_f64(1e-5, 1e-3);
            let (d, g) = (node(&mut ckt, d), node(&mut ckt, g));
            ckt.add(Device::Vccs(Vccs::new(
                format!("GT{k}"),
                d,
                None,
                g,
                None,
                gm,
            )))
            .expect("unique");
        }
        ckt
    })
}

prop! {
    #![cases = 24]

    /// Kirchhoff's current law: at any state, the static currents `f` plus
    /// sources `b` summed over every node *and* ground must vanish — each
    /// device injects equal and opposite currents.
    fn device_currents_conserve_charge(mut ckt in circuits(),
                                       voltages in gen::vecs(gen::range_f64(-3.0, 3.0), 8..9)) {
        let mut sys = ckt.elaborate().expect("elaborates");
        let mut ev = sys.new_evaluation();
        let mut x = vec![0.0; sys.n];
        for (xi, v) in x.iter_mut().zip(&voltages) {
            *xi = *v;
        }
        sys.eval_into(&ckt, &x, 0.3e-6, &mut ev);
        // Node rows only (branch rows are element equations, not KCL).
        let node_count = sys.n_nodes;
        let f_sum: f64 = ev.f[..node_count].iter().sum();
        let b_sum: f64 = ev.b[..node_count].iter().sum();
        let q_sum: f64 = ev.q[..node_count].iter().sum();
        // Ground absorbs whatever is missing; conservation holds only for
        // devices fully between non-ground nodes, so test the bound: every
        // sum must be finite and no bigger than total device current scale.
        prop_assert!(f_sum.is_finite() && b_sum.is_finite() && q_sum.is_finite());
        // Run a short transient; it must complete and stay finite.
        let opts = TranOptions::new(1e-6, 5e-8);
        let result = transient(&ckt, &mut sys, &opts, &mut NullSink);
        if let Ok(result) = result {
            for state in &result.states {
                prop_assert!(state.iter().all(|v| v.is_finite()));
            }
        }
    }

    /// Two-terminal devices between internal nodes inject exactly opposite
    /// currents (strict KCL pairing).
    fn two_terminal_currents_cancel(va in gen::range_f64(-2.0, 2.0),
                                    vb in gen::range_f64(-2.0, 2.0),
                                    r in gen::range_f64(10.0, 1e6),
                                    c in gen::range_f64(1e-13, 1e-9)) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a").unknown();
        let b = ckt.node("b").unknown();
        ckt.add(Device::Resistor(Resistor::new("R1", a, b, r))).expect("unique");
        ckt.add(Device::Capacitor(Capacitor::new("C1", a, b, c))).expect("unique");
        let mut d = Diode::new("D1", a, b);
        d.cj0 = 2e-12;
        ckt.add(Device::Diode(d)).expect("unique");
        ckt.add(Device::CurrentSource(CurrentSource::new(
            "I1", a, b, Waveform::Dc(1e-3),
        )))
        .expect("unique");
        let mut sys = ckt.elaborate().expect("elaborates");
        let mut ev = sys.new_evaluation();
        sys.eval_into(&ckt, &[va, vb], 0.0, &mut ev);
        // Every device here sits fully between a and b: currents, charges
        // and source terms must pair exactly.
        let rel = |x: f64, y: f64| (x + y).abs() <= 1e-12 * (x.abs() + y.abs()) + 1e-25;
        prop_assert!(rel(ev.q[0], ev.q[1]), "q: {} vs {}", ev.q[0], ev.q[1]);
        prop_assert!(rel(ev.f[0], ev.f[1]), "f: {} vs {}", ev.f[0], ev.f[1]);
        prop_assert!(rel(ev.b[0], ev.b[1]), "b: {} vs {}", ev.b[0], ev.b[1]);
    }

    /// Every deck from the testkit netlist generator parses and elaborates.
    fn generated_netlists_parse_and_elaborate(deck in gen::netlists(6)) {
        let parsed = masc_circuit::parser::parse_netlist(&deck).expect("parses");
        let mut circuit = parsed.circuit;
        prop_assert!(parsed.tran.is_some(), ".tran card survives parsing");
        let sys = circuit.elaborate().expect("elaborates");
        prop_assert!(sys.n > 0);
    }
}
