//! Deterministic, seedable PRNG for tests and benches.
//!
//! The generator is PCG-XSH-RR 64/32 ("pcg32"): a 64-bit LCG state with a
//! 32-bit permuted output. It is fast, has no global state, and — crucially
//! for a test harness — a (seed, stream) pair fully determines the sequence,
//! so every failure report can print the exact seed that reproduces it.

/// PCG multiplier (Knuth's MMIX LCG constant).
const PCG_MULT: u64 = 6364136223846793005;

/// SplitMix64 finalizer; used to spread user seeds over the state space.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable PCG32 random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
    inc: u64,
}

impl Rng {
    /// Creates a generator from a seed (stream 0).
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0)
    }

    /// Creates a generator on an independent stream for the same seed.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (splitmix64(stream) << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(splitmix64(seed));
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    ///
    /// Uses widening-multiply rejection (Lemire), so the result is unbiased.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// A fair coin flip.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u32() & 1 != 0
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// A derived generator on an independent stream; advancing the child
    /// never perturbs the parent's sequence beyond this one draw.
    pub fn fork(&mut self) -> Rng {
        Rng::with_stream(self.next_u64(), self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn ranges_are_inclusive_exclusive() {
        let mut rng = Rng::new(3);
        let mut seen_lo = false;
        for _ in 0..500 {
            let v = rng.range_usize(5, 8);
            assert!((5..8).contains(&v));
            seen_lo |= v == 5;
        }
        assert!(seen_lo, "lower bound should be reachable");
        for _ in 0..100 {
            let v = rng.range_i64(-3, 3);
            assert!((-3..3).contains(&v));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = Rng::new(11);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 1000 U(0,1) draws is within 0.1 of 0.5 w.h.p.
        assert!((sum / 1000.0 - 0.5).abs() < 0.1);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = Rng::new(5);
        let mut child = parent.fork();
        let after_fork = parent.next_u64();
        let mut parent2 = Rng::new(5);
        let _ = parent2.fork();
        assert_eq!(after_fork, parent2.next_u64());
        // Child differs from parent's stream.
        let mut p = Rng::new(5);
        assert_ne!(child.next_u64(), p.next_u64());
    }
}
