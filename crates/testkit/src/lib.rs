//! # masc-testkit — hermetic property-testing and micro-bench harness
//!
//! The MASC workspace builds **offline**: no crates.io dependencies, ever
//! (see `DESIGN.md` §"Hermetic builds"). This crate supplies the testing
//! machinery that external crates used to provide:
//!
//! - [`rng`] — a seedable PCG32 PRNG, so every test value is reproducible
//!   from a printed seed;
//! - [`gen`] — composable value generators (integers, floats with
//!   adversarial payloads, vectors, sparse coordinate sets, netlist decks)
//!   with bounded, invariant-preserving shrinking;
//! - [`mod@prop`] — the [`prop!`] test macro and runner: fixed-seed cases,
//!   `MASC_PROP_REPRO=<seed>` single-case reproduction, greedy shrinking;
//! - [`mod@bench`] — a warmup + median wall-clock timer standing in for
//!   criterion, used by `crates/bench/benches/*`;
//! - [`mod@sched`] — a deterministic interleaving explorer: seeded
//!   schedule enumeration over instrumented mutex/condvar/channel shims,
//!   with `MASC_SCHED_REPRO=<seed>` replay and preemption-trace shrinking,
//!   used by `masc-conform --model-check` to model-check the worker-pool
//!   coordination cores.
//!
//! # Examples
//!
//! ```
//! use masc_testkit::{gen, gen::Gen, prop};
//!
//! prop! {
//!     #![cases = 50]
//!     fn reverse_is_involutive(v in gen::vecs(gen::u8s(), 0..100)) {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         assert_eq!(v, w);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod gen;
pub mod prop;
pub mod rng;
pub mod sched;

pub use gen::Gen;
pub use rng::Rng;
