//! Value generators for property tests.
//!
//! A [`Gen`] produces random values from an [`Rng`] and optionally proposes
//! *shrink candidates* — simpler values the runner retries after a failure
//! so reports show a minimal counterexample. Shrinking is generator-driven
//! (a candidate comes from the generator that produced the value), so
//! candidates never violate generator invariants; combinators that cannot
//! soundly shrink (e.g. [`Gen::map`]) simply propose nothing.
//!
//! Domain generators for the MASC workspace live here too: adversarial
//! `f64` payloads ([`f64_payloads`]), sparse CSR-style coordinate sets
//! ([`sparse_coords`]), and SPICE netlist decks ([`netlists`]).

use crate::rng::Rng;
use std::fmt::Debug;
use std::rc::Rc;

/// A random value generator with optional shrinking.
pub trait Gen {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes simpler variants of a failing value (possibly empty).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`. The result does not shrink
    /// (mapping cannot be inverted to validate candidates).
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds each generated value into a generator-producing function —
    /// the way to make one generator's parameters depend on another's
    /// output (e.g. a value vector sized by a pattern's nnz).
    fn flat_map<U, G2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        G2: Gen<Value = U>,
        F: Fn(Self::Value) -> G2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the generator so heterogeneous generators of one value
    /// type can share a container (see [`one_of`] / [`weighted`]).
    fn boxed(self) -> BoxedGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedGen {
            inner: Rc::new(self),
        }
    }
}

/// See [`Gen::map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, U, F> Gen for Map<G, F>
where
    G: Gen,
    U: Clone + Debug,
    F: Fn(G::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Gen::flat_map`].
pub struct FlatMap<G, F> {
    inner: G,
    f: F,
}

impl<G, U, G2, F> Gen for FlatMap<G, F>
where
    G: Gen,
    U: Clone + Debug,
    G2: Gen<Value = U>,
    F: Fn(G::Value) -> G2,
{
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> U {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// A type-erased, cheaply clonable generator.
pub struct BoxedGen<T> {
    inner: Rc<dyn DynGen<T>>,
}

impl<T> Clone for BoxedGen<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

trait DynGen<T> {
    fn dyn_generate(&self, rng: &mut Rng) -> T;
    fn dyn_shrink(&self, value: &T) -> Vec<T>;
}

impl<G: Gen> DynGen<G::Value> for G {
    fn dyn_generate(&self, rng: &mut Rng) -> G::Value {
        self.generate(rng)
    }

    fn dyn_shrink(&self, value: &G::Value) -> Vec<G::Value> {
        self.shrink(value)
    }
}

impl<T: Clone + Debug> Gen for BoxedGen<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        self.inner.dyn_generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        self.inner.dyn_shrink(value)
    }
}

/// Generator built from a closure; the `from_fn` escape hatch.
pub struct FnGen<T, F> {
    f: F,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Clone + Debug, F: Fn(&mut Rng) -> T> Gen for FnGen<T, F> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(rng)
    }
}

/// Wraps an arbitrary closure as a (non-shrinking) generator.
pub fn from_fn<T: Clone + Debug, F: Fn(&mut Rng) -> T>(f: F) -> FnGen<T, F> {
    FnGen {
        f,
        _marker: std::marker::PhantomData,
    }
}

/// Always produces `value`.
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
#[derive(Clone)]
pub struct Just<T>(T);

impl<T: Clone + Debug> Gen for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Uniform `bool`; shrinks `true` to `false`.
pub fn bools() -> Bools {
    Bools
}

/// See [`bools`].
pub struct Bools;

impl Gen for Bools {
    type Value = bool;

    fn generate(&self, rng: &mut Rng) -> bool {
        rng.bool()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! int_gen {
    ($(#[$doc:meta])* $fn_name:ident, $ty_name:ident, $ty:ty) => {
        $(#[$doc])*
        pub fn $fn_name() -> $ty_name {
            $ty_name
        }

        #[doc = concat!("See [`", stringify!($fn_name), "`].")]
        pub struct $ty_name;

        impl Gen for $ty_name {
            type Value = $ty;

            fn generate(&self, rng: &mut Rng) -> $ty {
                rng.next_u64() as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                let v = *value;
                [0 as $ty, v / 2, v / 16]
                    .into_iter()
                    .filter(|c| *c != v)
                    .collect()
            }
        }
    };
}

int_gen!(
    /// Uniform `u64` over the full range; shrinks toward 0.
    u64s, U64s, u64
);
int_gen!(
    /// Uniform `i64` over the full range; shrinks toward 0.
    i64s, I64s, i64
);
int_gen!(
    /// Uniform `u8` over the full range; shrinks toward 0.
    u8s, U8s, u8
);

/// Uniform `u64` in `[lo, hi)`; shrinks toward `lo`.
pub fn range_u64(lo: u64, hi: u64) -> RangeU64 {
    assert!(lo < hi, "empty range {lo}..{hi}");
    RangeU64 { lo, hi }
}

/// See [`range_u64`].
pub struct RangeU64 {
    lo: u64,
    hi: u64,
}

impl Gen for RangeU64 {
    type Value = u64;

    fn generate(&self, rng: &mut Rng) -> u64 {
        rng.range_u64(self.lo, self.hi)
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        [self.lo, self.lo + (v - self.lo) / 2]
            .into_iter()
            .filter(|c| *c != v)
            .collect()
    }
}

/// Uniform `usize` in `[lo, hi)`; shrinks toward `lo`.
pub fn range_usize(lo: usize, hi: usize) -> impl Gen<Value = usize> {
    range_u64(lo as u64, hi as u64).map(|v| v as usize)
}

/// Uniform `u32` in `[lo, hi)`; shrinks toward `lo`.
pub fn range_u32(lo: u32, hi: u32) -> impl Gen<Value = u32> {
    range_u64(u64::from(lo), u64::from(hi)).map(|v| v as u32)
}

/// Uniform `u8` in `[lo, hi)`; shrinks toward `lo`.
pub fn range_u8(lo: u8, hi: u8) -> impl Gen<Value = u8> {
    range_u64(u64::from(lo), u64::from(hi)).map(|v| v as u8)
}

/// Uniform `f64` in `[lo, hi)`; shrinks toward `lo` and whole numbers.
pub fn range_f64(lo: f64, hi: f64) -> RangeF64 {
    assert!(lo < hi, "empty range {lo}..{hi}");
    RangeF64 { lo, hi }
}

/// See [`range_f64`].
pub struct RangeF64 {
    lo: f64,
    hi: f64,
}

impl Gen for RangeF64 {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        [self.lo, self.lo + (v - self.lo) / 2.0, v.trunc()]
            .into_iter()
            .filter(|c| *c != v && (self.lo..self.hi).contains(c))
            .collect()
    }
}

/// "Any" `f64`: uniform bit patterns, so NaNs, infinities, subnormals and
/// both zeros all occur. Shrinks toward `0.0`.
pub fn f64_bits() -> F64Bits {
    F64Bits
}

/// See [`f64_bits`].
pub struct F64Bits;

impl Gen for F64Bits {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        f64::from_bits(rng.next_u64())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        [0.0f64, 1.0, v / 2.0]
            .into_iter()
            .filter(|c| c.to_bits() != v.to_bits())
            .collect()
    }
}

/// Adversarial `f64`s for codec tests: a weighted mix of arbitrary bit
/// patterns, moderate reals, and the special values every float coder must
/// survive — `NaN`, `±∞`, `±0.0`, subnormals, and extreme magnitudes.
pub fn f64_payloads() -> BoxedGen<f64> {
    weighted(vec![
        (4, f64_bits().boxed()),
        (3, range_f64(-1e3, 1e3).boxed()),
        (1, just(0.0f64).boxed()),
        (1, just(-0.0f64).boxed()),
        (1, just(f64::NAN).boxed()),
        (1, just(f64::INFINITY).boxed()),
        (1, just(f64::NEG_INFINITY).boxed()),
        (1, just(5e-324f64).boxed()), // smallest positive subnormal
        (1, just(-1e-308f64).boxed()),
        (1, just(1.797e308f64).boxed()),
    ])
}

/// Vectors of values from `element`, with length uniform in `len`.
///
/// Shrinks by truncating toward the minimum length, deleting single
/// elements, and shrinking individual elements in place.
pub fn vecs<G: Gen>(element: G, len: std::ops::Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "empty length range");
    VecGen {
        element,
        min: len.start,
        max: len.end,
    }
}

/// See [`vecs`].
pub struct VecGen<G> {
    element: G,
    min: usize,
    max: usize,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let len = rng.range_usize(self.min, self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // Halve toward the minimum length.
        if len > self.min {
            let half = self.min.max(len / 2);
            out.push(value[..half].to_vec());
            out.push(value[len - half..].to_vec());
            // Drop single elements at a few spread positions.
            for k in 0..len.min(4) {
                let idx = k * len / len.min(4);
                let mut v = value.clone();
                v.remove(idx.min(len - 1));
                out.push(v);
            }
        }
        // Shrink a few individual elements.
        for k in 0..len.min(3) {
            let idx = k * len / len.min(3);
            for cand in self.element.shrink(&value[idx.min(len - 1)]) {
                let mut v = value.clone();
                v[idx.min(len - 1)] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// Picks one of `choices` uniformly per draw.
pub fn one_of<T: Clone + Debug + 'static>(choices: Vec<BoxedGen<T>>) -> OneOf<T> {
    assert!(!choices.is_empty(), "one_of needs at least one generator");
    OneOf { choices }
}

/// See [`one_of`].
pub struct OneOf<T> {
    choices: Vec<BoxedGen<T>>,
}

impl<T: Clone + Debug + 'static> Gen for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let idx = rng.range_usize(0, self.choices.len());
        self.choices[idx].generate(rng)
    }
}

/// Picks among `choices` with the given integer weights.
pub fn weighted<T: Clone + Debug + 'static>(choices: Vec<(u32, BoxedGen<T>)>) -> BoxedGen<T> {
    assert!(!choices.is_empty(), "weighted needs at least one generator");
    let total: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "total weight must be positive");
    from_fn(move |rng| {
        let mut pick = rng.below(total);
        for (w, g) in &choices {
            let w = u64::from(*w);
            if pick < w {
                return g.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    })
    .boxed()
}

macro_rules! tuple_gen {
    ($($g:ident / $v:ident : $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A / a: 0);
tuple_gen!(A / a: 0, B / b: 1);
tuple_gen!(A / a: 0, B / b: 1, C / c: 2);
tuple_gen!(A / a: 0, B / b: 1, C / c: 2, D / d: 3);
tuple_gen!(A / a: 0, B / b: 1, C / c: 2, D / d: 3, E / e: 4);
tuple_gen!(A / a: 0, B / b: 1, C / c: 2, D / d: 3, E / e: 4, F / f: 5);

/// Sparse square-matrix coordinate sets: `(n, coords)` with `n` in
/// `n_range` and up to `max_extra` off-pattern coordinates (duplicates
/// allowed, diagonal not guaranteed) — feed into a triplet builder.
pub fn sparse_coords(
    n_range: std::ops::Range<usize>,
    max_extra: usize,
) -> impl Gen<Value = (usize, Vec<(usize, usize)>)> {
    from_fn(move |rng| {
        let n = rng.range_usize(n_range.start, n_range.end);
        let extra = rng.range_usize(0, max_extra + 1);
        let coords = (0..extra)
            .map(|_| (rng.range_usize(0, n), rng.range_usize(0, n)))
            .collect();
        (n, coords)
    })
}

/// Random SPICE decks over the device classes the parser supports: a pulse
/// or sine source driving a ladder of R/C/diode sections with a `.tran`
/// card. Every produced deck parses and has a DC operating point (each
/// internal node keeps a resistive path to ground).
pub fn netlists(max_sections: usize) -> impl Gen<Value = String> {
    assert!(max_sections >= 1);
    from_fn(move |rng| {
        let sections = rng.range_usize(1, max_sections + 1);
        let mut deck = String::from("testkit generated deck\n");
        if rng.bool() {
            let va = rng.range_f64(0.5, 5.0);
            deck.push_str(&format!("V1 n0 0 SIN(0 {va:.3} 1e6)\n"));
        } else {
            let v = rng.range_f64(0.5, 5.0);
            deck.push_str(&format!("V1 n0 0 PULSE(0 {v:.3} 0 20n 20n 400n 1u)\n"));
        }
        for s in 0..sections {
            let r = rng.range_f64(100.0, 1e5);
            deck.push_str(&format!("R{s} n{s} n{} {r:.1}\n", s + 1));
            let c = rng.range_f64(1e-13, 1e-11);
            deck.push_str(&format!("C{s} n{} 0 {c:.3e}\n", s + 1));
            if rng.chance(0.3) {
                deck.push_str(&format!("D{s} n{} 0 IS=1e-14 CJ0=2p\n", s + 1));
            }
            // Keep a DC path to ground from every internal node.
            deck.push_str(&format!("RG{s} n{} 0 1e6\n", s + 1));
        }
        deck.push_str(".tran 10n 1u\n.end\n");
        deck
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_bounds() {
        let g = vecs(u8s(), 2..7);
        let mut rng = Rng::new(1);
        for _ in 0..200 {
            let v = g.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn vec_shrink_never_goes_below_min() {
        let g = vecs(u8s(), 3..10);
        let mut rng = Rng::new(2);
        let v = g.generate(&mut rng);
        for cand in g.shrink(&v) {
            assert!(cand.len() >= 3, "shrunk below min: {cand:?}");
        }
    }

    #[test]
    fn weighted_only_draws_from_choices() {
        let g = weighted(vec![(3, just(1u8).boxed()), (1, just(2u8).boxed())]);
        let mut rng = Rng::new(3);
        let mut ones = 0;
        for _ in 0..400 {
            match g.generate(&mut rng) {
                1 => ones += 1,
                2 => {}
                other => panic!("unexpected value {other}"),
            }
        }
        // 3:1 weighting: expect ~300 ones.
        assert!((200..400).contains(&ones), "{ones}");
    }

    #[test]
    fn f64_payloads_hit_special_values() {
        let g = f64_payloads();
        let mut rng = Rng::new(4);
        let draws: Vec<f64> = (0..2000).map(|_| g.generate(&mut rng)).collect();
        assert!(draws.iter().any(|v| v.is_nan()));
        assert!(draws.iter().any(|v| v.is_infinite()));
        assert!(draws.iter().any(|v| *v == 0.0 && v.is_sign_negative()));
        assert!(draws.iter().any(|v| v.is_subnormal()));
    }

    #[test]
    fn tuple_shrink_changes_one_component() {
        let g = (range_u64(0, 100), range_u64(0, 100));
        let value = (40u64, 80u64);
        for (a, b) in g.shrink(&value) {
            assert!((a, b) != value);
            assert!(a == 40 || b == 80, "only one side shrinks at a time");
        }
    }

    #[test]
    fn sparse_coords_in_bounds() {
        let g = sparse_coords(2..9, 20);
        let mut rng = Rng::new(5);
        for _ in 0..100 {
            let (n, coords) = g.generate(&mut rng);
            assert!((2..9).contains(&n));
            for (r, c) in coords {
                assert!(r < n && c < n);
            }
        }
    }

    #[test]
    fn netlists_have_required_cards() {
        let g = netlists(5);
        let mut rng = Rng::new(6);
        for _ in 0..50 {
            let deck = g.generate(&mut rng);
            assert!(deck.contains("V1 n0 0 "));
            assert!(deck.contains(".tran"));
            assert!(deck.ends_with(".end\n"));
        }
    }
}
