//! Deterministic interleaving explorer: a virtual scheduler over
//! instrumented mutex/condvar/channel shims.
//!
//! The R6–R8 lint rules (masc-lint) police concurrency discipline
//! *statically*; this module backs them *dynamically*. A model — a small
//! extraction of a real coordination core, written against the
//! [`Sched`] shims instead of `std::sync` — is executed many times,
//! each time under a different, fully deterministic thread interleaving:
//!
//! - exactly **one virtual thread runs at a time**; every shim operation
//!   is a scheduling point where a seeded PCG32 choice picks the next
//!   runnable thread (bounded by a **preemption budget**, which is what
//!   makes enumeration tractable);
//! - blocking is virtual: a thread waiting on a mutex, condvar, channel,
//!   or [`Sched::join_all`] is simply not schedulable until the
//!   corresponding wake arrives. **If every live thread is blocked, the
//!   schedule deadlocked** — which is exactly how a lost wakeup
//!   manifests — and the explorer reports it with the schedule seed;
//! - assertion panics inside a model are caught per-thread and reported
//!   the same way;
//! - a failing schedule is **replayed from its seed alone**
//!   (`MASC_SCHED_REPRO=<hex>`, mirroring `MASC_PROP_REPRO`) and
//!   **shrunk**: the recorded decision trace is greedily canonicalized
//!   toward the no-preemption schedule while the failure persists, so
//!   the report shows a minimal preemption pattern, not a random one.
//!
//! # Soundness limits
//!
//! The explorer checks the *model*, not the production code: fidelity is
//! by construction of the extraction (the model harnesses live in
//! `masc-conform` next to the mutation hooks they must catch). Schedule
//! coverage is bounded — seeded sampling under a preemption bound, not
//! exhaustive model checking — and the shims impose stronger fairness
//! than real hardware (no weak-memory reorderings). Shared flags must be
//! modeled as shim mutexes, never raw atomics: atomic operations are
//! invisible to the virtual scheduler, so races on them cannot be
//! explored. A green run bounds the bug classes R6–R8 describe; it is
//! not a proof.
//!
//! # Example
//!
//! ```
//! use masc_testkit::sched::Explorer;
//!
//! let report = Explorer::default().explore(|s| {
//!     let m = s.mutex(0u32);
//!     let m2 = m.clone();
//!     s.spawn(move || {
//!         *m2.lock() += 1;
//!     });
//!     s.join_all();
//!     let v = *m.lock();
//!     assert_eq!(v, 1);
//! });
//! assert!(report.failure.is_none());
//! ```

use crate::rng::Rng;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, PoisonError};
use std::time::{Duration, Instant};

thread_local! {
    /// Virtual-thread id of the calling OS thread within its kernel.
    static TID: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Payload used to unwind virtual threads when a schedule is aborted
/// (deadlock detected elsewhere, or another thread already failed).
struct AbortSchedule;

/// Scheduling status of one virtual thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Schedulable.
    Runnable,
    /// Virtually blocked; not schedulable until unparked.
    Blocked,
    /// Exited (normally or by unwinding).
    Done,
}

/// Why a schedule failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// Every live virtual thread was blocked — a deadlock or lost wakeup.
    Deadlock {
        /// The virtual-thread ids that were blocked.
        blocked: Vec<usize>,
    },
    /// A virtual thread panicked (assertion failure in the model).
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The schedule exceeded the per-run step cap without finishing.
    Livelock,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Deadlock { blocked } => {
                write!(f, "deadlock: virtual threads {blocked:?} all blocked")
            }
            FailureKind::Panic { message } => write!(f, "model panic: {message}"),
            FailureKind::Livelock => write!(f, "livelock: step cap exceeded"),
        }
    }
}

/// One failing schedule, minimized and replayable.
#[derive(Debug, Clone)]
pub struct ScheduleFailure {
    /// Schedule seed; `MASC_SCHED_REPRO=<seed as hex>` replays it.
    pub seed: u64,
    /// What went wrong.
    pub kind: FailureKind,
    /// Minimized decision trace (indices into the sorted runnable set at
    /// each free scheduling choice).
    pub trace: Vec<u32>,
    /// Preemptions in the minimized failing schedule.
    pub preemptions: usize,
}

impl fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [seed {:#018x}, {} preemption(s), {} decision(s); \
             rerun with MASC_SCHED_REPRO={:x}]",
            self.kind,
            self.seed,
            self.preemptions,
            self.trace.len(),
            self.seed,
        )
    }
}

/// Result of an exploration.
#[derive(Debug)]
pub struct Exploration {
    /// Schedules actually executed (shrink replays not counted).
    pub schedules: usize,
    /// First failing schedule, if any, after minimization.
    pub failure: Option<ScheduleFailure>,
}

/// Scheduler state shared by every virtual thread of one schedule run.
struct KState {
    threads: Vec<Status>,
    /// Wake permits (token-parking): an unpark of a non-blocked thread
    /// is remembered, so shim wakes never race registration.
    permits: Vec<bool>,
    current: usize,
    /// Threads blocked in [`Sched::join_all`], woken on any completion.
    join_waiters: Vec<usize>,
    /// Recorded free scheduling choices.
    decisions: Vec<u32>,
    /// Forced prefix of decisions (shrink replays); tail comes from rng.
    replay: Vec<u32>,
    pos: usize,
    rng: Rng,
    preemptions: usize,
    max_preemptions: usize,
    steps: usize,
    max_steps: usize,
    aborted: bool,
    failure: Option<FailureKind>,
}

/// The virtual scheduler for one schedule run.
struct Kernel {
    state: OsMutex<KState>,
    cv: OsCondvar,
    handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
    next_tid: AtomicUsize,
}

type KGuard<'a> = std::sync::MutexGuard<'a, KState>;

impl Kernel {
    fn new(seed: u64, replay: Vec<u32>, max_preemptions: usize, max_steps: usize) -> Kernel {
        Kernel {
            state: OsMutex::new(KState {
                threads: vec![Status::Runnable],
                permits: vec![false],
                current: 0,
                join_waiters: Vec::new(),
                decisions: Vec::new(),
                replay,
                pos: 0,
                rng: Rng::with_stream(seed, 0x5ced),
                preemptions: 0,
                max_preemptions,
                steps: 0,
                max_steps,
                aborted: false,
                failure: None,
            }),
            cv: OsCondvar::new(),
            handles: OsMutex::new(Vec::new()),
            next_tid: AtomicUsize::new(1),
        }
    }

    fn lock_state(&self) -> KGuard<'_> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Sorted runnable thread ids.
    fn runnable(st: &KState) -> Vec<usize> {
        (0..st.threads.len())
            .filter(|&t| st.threads[t] == Status::Runnable)
            .collect()
    }

    /// Records a free choice among `n` candidates.
    fn choose(st: &mut KState, n: usize) -> usize {
        let v = if st.pos < st.replay.len() {
            st.replay[st.pos] as usize % n
        } else {
            st.rng.below(n as u64) as usize
        };
        st.pos += 1;
        st.decisions.push(v as u32);
        v
    }

    /// Marks the schedule failed and releases every thread.
    fn fail(&self, st: &mut KGuard<'_>, kind: FailureKind) {
        if st.failure.is_none() {
            st.failure = Some(kind);
        }
        st.aborted = true;
        self.cv.notify_all();
    }

    /// Aborts the calling thread if the schedule is being torn down.
    fn bail_if_aborted(st: &KState) {
        if st.aborted {
            std::panic::panic_any(AbortSchedule);
        }
    }

    /// Accounts one scheduling step; converts runaway runs to livelock.
    fn step(&self, st: &mut KGuard<'_>) {
        st.steps += 1;
        if st.steps > st.max_steps {
            self.fail(st, FailureKind::Livelock);
            std::panic::panic_any(AbortSchedule);
        }
    }

    /// Scheduling point for a thread that stays runnable: maybe switch.
    fn yield_now(&self) {
        let tid = TID.with(|c| c.get());
        let mut st = self.lock_state();
        Self::bail_if_aborted(&st);
        self.step(&mut st);
        let runnable = Self::runnable(&st);
        let next = if runnable.len() <= 1 || st.preemptions >= st.max_preemptions {
            tid
        } else {
            runnable[Self::choose(&mut st, runnable.len())]
        };
        if next != tid {
            st.preemptions += 1;
            st.current = next;
            self.cv.notify_all();
            self.wait_for_turn(st, tid);
        }
    }

    /// Virtually blocks the calling thread until a permit arrives.
    fn park(&self) {
        let tid = TID.with(|c| c.get());
        let mut st = self.lock_state();
        Self::bail_if_aborted(&st);
        self.step(&mut st);
        if st.permits[tid] {
            st.permits[tid] = false;
            return;
        }
        st.threads[tid] = Status::Blocked;
        self.reschedule(&mut st);
        st = self.wait_until(st, |st| {
            st.threads[tid] == Status::Runnable && st.current == tid
        });
        st.permits[tid] = false;
    }

    /// Hands a wake permit to `tid`, making it schedulable if blocked.
    /// Never panics — safe to call from `Drop` during unwinding.
    fn unpark(st: &mut KState, tid: usize) {
        if st.threads[tid] == Status::Blocked {
            st.threads[tid] = Status::Runnable;
            st.permits[tid] = true;
        } else if st.threads[tid] == Status::Runnable {
            st.permits[tid] = true;
        }
    }

    /// Picks a new current thread after the caller blocked or finished.
    fn reschedule(&self, st: &mut KGuard<'_>) {
        let runnable = Self::runnable(st);
        if runnable.is_empty() {
            let blocked: Vec<usize> = (0..st.threads.len())
                .filter(|&t| st.threads[t] == Status::Blocked)
                .collect();
            if !blocked.is_empty() {
                self.fail(st, FailureKind::Deadlock { blocked });
            }
            return;
        }
        let next = if runnable.len() == 1 {
            runnable[0]
        } else {
            runnable[Self::choose(st, runnable.len())]
        };
        st.current = next;
        self.cv.notify_all();
    }

    /// Waits (OS-level) until it is `tid`'s turn to run.
    fn wait_for_turn<'a>(&'a self, st: KGuard<'a>, tid: usize) {
        let _st = self.wait_until(st, |st| st.current == tid);
    }

    /// Non-panicking wait for a freshly spawned thread's first turn.
    /// Returns `false` when the schedule aborted before it ever ran.
    fn wait_first(&self, tid: usize) -> bool {
        let mut st = self.lock_state();
        loop {
            if st.aborted {
                return false;
            }
            if st.current == tid {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Condvar wait loop with abort propagation.
    fn wait_until<'a>(&'a self, mut st: KGuard<'a>, ready: impl Fn(&KState) -> bool) -> KGuard<'a> {
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(AbortSchedule);
            }
            if ready(&st) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks the calling thread finished and schedules a successor.
    /// Never panics — runs on every exit path, aborts included.
    fn thread_done(&self) {
        let tid = TID.with(|c| c.get());
        let mut st = self.lock_state();
        st.threads[tid] = Status::Done;
        let joiners: Vec<usize> = st.join_waiters.drain(..).collect();
        for j in joiners {
            Self::unpark(&mut st, j);
        }
        if !st.aborted {
            self.reschedule(&mut st);
        } else {
            self.cv.notify_all();
        }
    }

    /// Records a model panic and tears the schedule down.
    fn report_panic(&self, message: String) {
        let mut st = self.lock_state();
        self.fail(&mut st, FailureKind::Panic { message });
    }
}

/// Depth of active explorations; while non-zero the process panic hook
/// stays quiet, because schedule teardown and caught model assertions
/// panic by design and would otherwise flood stderr.
static QUIET_DEPTH: AtomicUsize = AtomicUsize::new(0);
static QUIET_HOOK: std::sync::Once = std::sync::Once::new();

/// RAII guard silencing the panic hook for the span of one schedule run.
struct QuietPanics;

impl QuietPanics {
    fn enter() -> QuietPanics {
        QUIET_HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if QUIET_DEPTH.load(Ordering::SeqCst) == 0 {
                    prev(info);
                }
            }));
        });
        QUIET_DEPTH.fetch_add(1, Ordering::SeqCst);
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        QUIET_DEPTH.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Handle to the virtual scheduler, passed to the model and cloned into
/// spawned virtual threads via the shim objects.
#[derive(Clone)]
pub struct Sched {
    kernel: Arc<Kernel>,
}

impl Sched {
    /// Spawns a virtual thread. There is no handle: failures surface
    /// through the schedule report, completion through [`Sched::join_all`].
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        let tid = self.kernel.next_tid.fetch_add(1, Ordering::SeqCst);
        {
            let mut st = self.kernel.lock_state();
            Kernel::bail_if_aborted(&st);
            debug_assert_eq!(st.threads.len(), tid);
            st.threads.push(Status::Runnable);
            st.permits.push(false);
        }
        let kernel = Arc::clone(&self.kernel);
        let handle = std::thread::Builder::new()
            .name(format!("masc-sched-{tid}"))
            .spawn(move || {
                TID.with(|c| c.set(tid));
                // Do not run the body until scheduled (and never run it
                // at all if the schedule aborts first).
                if kernel.wait_first(tid) {
                    match catch_unwind(AssertUnwindSafe(f)) {
                        Ok(()) => {}
                        Err(payload) => {
                            if payload.downcast_ref::<AbortSchedule>().is_none() {
                                kernel.report_panic(panic_message(payload.as_ref()));
                            }
                        }
                    }
                }
                kernel.thread_done();
            })
            .expect("spawn virtual thread");
        self.kernel
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
        // Spawning is a scheduling point: the child may run first.
        self.kernel.yield_now();
    }

    /// Explicit interleaving point, for model code between shim calls.
    pub fn yield_now(&self) {
        self.kernel.yield_now();
    }

    /// Blocks until every *other* virtual thread has finished.
    pub fn join_all(&self) {
        let tid = TID.with(|c| c.get());
        loop {
            {
                let mut st = self.kernel.lock_state();
                Kernel::bail_if_aborted(&st);
                let others_done =
                    (0..st.threads.len()).all(|t| t == tid || st.threads[t] == Status::Done);
                if others_done {
                    return;
                }
                st.join_waiters.push(tid);
            }
            self.kernel.park();
        }
    }

    /// Creates an instrumented mutex owned by this schedule.
    pub fn mutex<T: Send>(&self, value: T) -> Mutex<T> {
        Mutex {
            core: Arc::new(MutexCore {
                kernel: Arc::clone(&self.kernel),
                state: OsMutex::new(MutexState {
                    held: false,
                    waiters: Vec::new(),
                }),
            }),
            data: Arc::new(OsMutex::new(value)),
        }
    }

    /// Creates an instrumented condition variable.
    pub fn condvar(&self) -> CondvarShim {
        CondvarShim {
            kernel: Arc::clone(&self.kernel),
            state: Arc::new(OsMutex::new(CvState {
                waiters: Vec::new(),
            })),
        }
    }

    /// Creates an instrumented bounded channel with capacity `cap`.
    pub fn channel<T: Send>(&self, cap: usize) -> (Sender<T>, Receiver<T>) {
        let core = Arc::new(ChannelCore {
            kernel: Arc::clone(&self.kernel),
            state: OsMutex::new(ChannelState {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                rx_alive: true,
                send_waiters: Vec::new(),
                recv_waiters: Vec::new(),
            }),
        });
        (
            Sender {
                core: Arc::clone(&core),
            },
            Receiver { core },
        )
    }
}

// ---------------------------------------------------------------------------
// Mutex shim

struct MutexState {
    held: bool,
    waiters: Vec<usize>,
}

struct MutexCore {
    kernel: Arc<Kernel>,
    state: OsMutex<MutexState>,
}

impl MutexCore {
    fn acquire(&self) {
        let tid = TID.with(|c| c.get());
        self.kernel.yield_now();
        loop {
            {
                let mut ms = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                if !ms.held {
                    ms.held = true;
                    return;
                }
                if !ms.waiters.contains(&tid) {
                    ms.waiters.push(tid);
                }
            }
            self.kernel.park();
        }
    }

    /// Releases the virtual lock and wakes every waiter. Never panics —
    /// runs from guard `Drop`, possibly during an abort unwind.
    fn release(&self) {
        let waiters: Vec<usize> = {
            let mut ms = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            ms.held = false;
            ms.waiters.drain(..).collect()
        };
        let mut st = self.kernel.lock_state();
        for w in waiters {
            Kernel::unpark(&mut st, w);
        }
        self.kernel.cv.notify_all();
    }
}

/// Instrumented mutex: same role as [`std::sync::Mutex`], but lock
/// acquisition order is decided by the virtual scheduler. Clones share
/// the lock (the usual `Arc<Mutex<…>>` is built in).
pub struct Mutex<T> {
    core: Arc<MutexCore>,
    data: Arc<OsMutex<T>>,
}

impl<T> Clone for Mutex<T> {
    fn clone(&self) -> Self {
        Mutex {
            core: Arc::clone(&self.core),
            data: Arc::clone(&self.data),
        }
    }
}

impl<T: Send> Mutex<T> {
    /// Acquires the virtual lock, blocking this virtual thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.core.acquire();
        MutexGuard {
            lock: self,
            inner: Some(self.data.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

/// Guard returned by [`Mutex::lock`]; releases on drop.
pub struct MutexGuard<'a, T: Send> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: Send> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: Send> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: Send> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        self.lock.core.release();
    }
}

// ---------------------------------------------------------------------------
// Condvar shim

struct CvState {
    waiters: Vec<usize>,
}

/// Instrumented condition variable with **strict wakeup semantics**: a
/// notify wakes only threads already registered in the wait set. A
/// thread that reaches its wait *after* the notify sleeps until the next
/// one — which is exactly the lost-wakeup behavior the explorer exists
/// to surface. (Named `CondvarShim` to avoid shadowing
/// [`std::sync::Condvar`] in models that import both.)
#[derive(Clone)]
pub struct CondvarShim {
    kernel: Arc<Kernel>,
    state: Arc<OsMutex<CvState>>,
}

impl CondvarShim {
    /// Atomically releases `guard` and waits for a notification, then
    /// reacquires the lock. As with the real primitive, callers must
    /// re-check their predicate in a loop: wakes can be concurrent with
    /// other state changes.
    pub fn wait<'a, T: Send>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let tid = TID.with(|c| c.get());
        let lock: &'a Mutex<T> = guard.lock;
        // Scheduling point *before* registering: this is the window in
        // which a notify not synchronized with the caller's predicate
        // can be lost — the bug class this shim exists to surface.
        // Registration, mutex release, and park are then atomic with
        // respect to the virtual scheduler, matching the real primitive.
        self.kernel.yield_now();
        {
            let mut cs = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            cs.waiters.push(tid);
        }
        drop(guard); // releases the virtual mutex; wakes lock waiters
        self.kernel.park();
        lock.lock()
    }

    /// Wakes one registered waiter (the longest-waiting).
    pub fn notify_one(&self) {
        let woken = {
            let mut cs = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if cs.waiters.is_empty() {
                None
            } else {
                Some(cs.waiters.remove(0))
            }
        };
        if let Some(w) = woken {
            let mut st = self.kernel.lock_state();
            Kernel::unpark(&mut st, w);
            self.kernel.cv.notify_all();
        }
        self.kernel.yield_now();
    }

    /// Wakes every registered waiter.
    pub fn notify_all(&self) {
        let woken: Vec<usize> = {
            let mut cs = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            cs.waiters.drain(..).collect()
        };
        if !woken.is_empty() {
            let mut st = self.kernel.lock_state();
            for w in woken {
                Kernel::unpark(&mut st, w);
            }
            self.kernel.cv.notify_all();
        }
        self.kernel.yield_now();
    }
}

// ---------------------------------------------------------------------------
// Bounded channel shim

struct ChannelState<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    rx_alive: bool,
    send_waiters: Vec<usize>,
    recv_waiters: Vec<usize>,
}

struct ChannelCore<T> {
    kernel: Arc<Kernel>,
    state: OsMutex<ChannelState<T>>,
}

impl<T> ChannelCore<T> {
    fn wake(&self, waiters: Vec<usize>) {
        if waiters.is_empty() {
            return;
        }
        let mut st = self.kernel.lock_state();
        for w in waiters {
            Kernel::unpark(&mut st, w);
        }
        self.kernel.cv.notify_all();
    }
}

/// Sending half of an instrumented bounded channel.
pub struct Sender<T> {
    core: Arc<ChannelCore<T>>,
}

/// Receiving half of an instrumented bounded channel.
pub struct Receiver<T> {
    core: Arc<ChannelCore<T>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone; carries
/// the unsent value like [`std::sync::mpsc::SendError`].
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl<T: Send> Sender<T> {
    /// Sends `value`, virtually blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] with the value when the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let tid = TID.with(|c| c.get());
        self.core.kernel.yield_now();
        let mut slot = Some(value);
        loop {
            let wake = {
                let mut cs = self
                    .core
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if !cs.rx_alive {
                    return Err(SendError(slot.take().expect("value present")));
                }
                if cs.queue.len() < cs.cap {
                    cs.queue.push_back(slot.take().expect("value present"));
                    cs.recv_waiters.drain(..).collect()
                } else {
                    if !cs.send_waiters.contains(&tid) {
                        cs.send_waiters.push(tid);
                    }
                    Vec::new()
                }
            };
            if slot.is_none() {
                self.core.wake(wake);
                return Ok(());
            }
            // Queue full and the value is still ours; park until space.
            self.core.kernel.park();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        {
            let mut cs = self
                .core
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            cs.senders += 1;
        }
        Sender {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let wake = {
            let mut cs = self
                .core
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            cs.senders -= 1;
            if cs.senders == 0 {
                cs.recv_waiters.drain(..).collect()
            } else {
                Vec::new()
            }
        };
        self.core.wake(wake);
    }
}

impl<T: Send> Receiver<T> {
    /// Receives a value, virtually blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let tid = TID.with(|c| c.get());
        self.core.kernel.yield_now();
        loop {
            let (got, wake) = {
                let mut cs = self
                    .core
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if let Some(v) = cs.queue.pop_front() {
                    let wake: Vec<usize> = cs.send_waiters.drain(..).collect();
                    (Some(Ok(v)), wake)
                } else if cs.senders == 0 {
                    (Some(Err(RecvError)), Vec::new())
                } else {
                    if !cs.recv_waiters.contains(&tid) {
                        cs.recv_waiters.push(tid);
                    }
                    (None, Vec::new())
                }
            };
            match got {
                Some(r) => {
                    self.core.wake(wake);
                    return r;
                }
                None => self.core.kernel.park(),
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let wake = {
            let mut cs = self
                .core
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            cs.rx_alive = false;
            cs.send_waiters.drain(..).collect()
        };
        self.core.wake(wake);
    }
}

// ---------------------------------------------------------------------------
// Explorer

/// Environment variable replaying one schedule seed, mirroring
/// `MASC_PROP_REPRO`.
pub const SCHED_REPRO_ENV: &str = "MASC_SCHED_REPRO";

/// Schedule-enumeration driver. `Default` gives a CI-friendly budget.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Base seed; schedule `i` derives its seed from `(seed, i)`.
    pub seed: u64,
    /// Maximum schedules to run.
    pub schedules: usize,
    /// Preemption bound per schedule (free context switches away from a
    /// runnable thread).
    pub max_preemptions: usize,
    /// Step cap per schedule; exceeding it reports a livelock.
    pub max_steps: usize,
    /// Optional wall-clock budget for the whole exploration.
    pub time_budget: Option<Duration>,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            seed: 0x6D61_7363_5F73_6368, // "masc_sch"
            schedules: 400,
            max_preemptions: 6,
            max_steps: 20_000,
            time_budget: None,
        }
    }
}

/// Outcome of one schedule run.
struct RunOutcome {
    failure: Option<FailureKind>,
    decisions: Vec<u32>,
    preemptions: usize,
}

/// Runs the model once under the schedule derived from `seed`, forcing
/// the decision prefix `replay` (tail decisions come from the seed).
fn run_one<F: Fn(&Sched)>(
    seed: u64,
    replay: &[u32],
    max_preemptions: usize,
    max_steps: usize,
    model: &F,
) -> RunOutcome {
    let _quiet = QuietPanics::enter();
    let kernel = Arc::new(Kernel::new(
        seed,
        replay.to_vec(),
        max_preemptions,
        max_steps,
    ));
    let sched = Sched {
        kernel: Arc::clone(&kernel),
    };
    TID.with(|c| c.set(0));
    match catch_unwind(AssertUnwindSafe(|| model(&sched))) {
        Ok(()) => {}
        Err(payload) => {
            if payload.downcast_ref::<AbortSchedule>().is_none() {
                kernel.report_panic(panic_message(payload.as_ref()));
            }
        }
    }
    kernel.thread_done();
    let handles: Vec<_> = kernel
        .handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let st = kernel.lock_state();
    RunOutcome {
        failure: st.failure.clone(),
        decisions: st.decisions.clone(),
        preemptions: st.preemptions,
    }
}

impl Explorer {
    /// Runs `model` under up to [`Explorer::schedules`] distinct seeded
    /// schedules (or the single `MASC_SCHED_REPRO` seed when set). Stops
    /// at the first failure, which is shrunk before reporting.
    pub fn explore<F: Fn(&Sched)>(&self, model: F) -> Exploration {
        if let Ok(v) = std::env::var(SCHED_REPRO_ENV) {
            if let Ok(seed) = u64::from_str_radix(v.trim().trim_start_matches("0x"), 16) {
                let run = run_one(seed, &[], self.max_preemptions, self.max_steps, &model);
                return Exploration {
                    schedules: 1,
                    failure: run.failure.map(|kind| ScheduleFailure {
                        seed,
                        kind,
                        trace: run.decisions,
                        preemptions: run.preemptions,
                    }),
                };
            }
        }
        let start = Instant::now();
        let mut executed = 0usize;
        for i in 0..self.schedules {
            if let Some(budget) = self.time_budget {
                if start.elapsed() >= budget && executed > 0 {
                    break;
                }
            }
            let seed = derive_seed(self.seed, i as u64);
            executed += 1;
            let run = run_one(seed, &[], self.max_preemptions, self.max_steps, &model);
            if run.failure.is_some() {
                let failure = self.shrink(seed, run, &model);
                return Exploration {
                    schedules: executed,
                    failure: Some(failure),
                };
            }
        }
        Exploration {
            schedules: executed,
            failure: None,
        }
    }

    /// Greedy minimization: canonicalize each decision toward 0 (the
    /// lowest-numbered runnable thread — the no-preemption direction)
    /// while the schedule still fails.
    fn shrink<F: Fn(&Sched)>(&self, seed: u64, first: RunOutcome, model: &F) -> ScheduleFailure {
        let mut best_trace = first.decisions;
        let mut best_kind = first.failure.clone().unwrap_or(FailureKind::Livelock);
        let mut best_preemptions = first.preemptions;
        let mut budget = 200usize;
        let mut improved = true;
        while improved && budget > 0 {
            improved = false;
            let mut i = 0;
            // A successful shrink can replace the trace with a shorter
            // one, so the bound is re-read every step.
            while i < best_trace.len() && budget > 0 {
                if best_trace[i] != 0 {
                    let mut cand = best_trace.clone();
                    cand[i] = 0;
                    budget -= 1;
                    let run = run_one(seed, &cand, self.max_preemptions, self.max_steps, model);
                    if let Some(kind) = run.failure {
                        best_trace = run.decisions;
                        best_kind = kind;
                        best_preemptions = run.preemptions;
                        improved = true;
                    }
                }
                i += 1;
            }
        }
        ScheduleFailure {
            seed,
            kind: best_kind,
            trace: best_trace,
            preemptions: best_preemptions,
        }
    }

    /// Replays one specific schedule seed; `Some` is the (unshrunk)
    /// failure it reproduces.
    pub fn replay<F: Fn(&Sched)>(&self, seed: u64, model: F) -> Option<ScheduleFailure> {
        let run = run_one(seed, &[], self.max_preemptions, self.max_steps, &model);
        run.failure.map(|kind| ScheduleFailure {
            seed,
            kind,
            trace: run.decisions,
            preemptions: run.preemptions,
        })
    }
}

/// Mixes the base seed and schedule index into a schedule seed.
fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
