//! Deterministic property-test runner with fixed-seed reproduction and
//! bounded shrinking.
//!
//! [`check`] draws `cases` values from a generator and runs the property on
//! each. Case seeds are derived from a per-test base seed (a hash of the
//! test name mixed with a workspace-wide constant), so runs are fully
//! deterministic: the same binary always tests the same values. A failure
//! report prints the exact case seed; re-run just that case with
//!
//! ```text
//! MASC_PROP_REPRO=<hex seed> cargo test -p <crate> <test_name>
//! ```
//!
//! `MASC_PROP_SEED=<u64>` re-seeds the whole suite (for soak runs) and
//! `MASC_PROP_CASES=<n>` overrides the case count.
//!
//! Properties signal failure by panicking — `assert!`/`unwrap` work as-is;
//! the [`prop_assert!`](crate::prop_assert) aliases exist for ports from
//! `proptest`. After a failure the runner spends a bounded number of extra
//! executions retrying generator-proposed simplifications and reports the
//! smallest value that still fails.

use crate::gen::Gen;
use crate::rng::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Workspace-wide default base seed ("MASCTEST" in ASCII, truncated).
const DEFAULT_SEED: u64 = 0x4D41_5343_5445_5354;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; per-case seeds derive from it and the test name.
    pub seed: u64,
    /// Max extra property executions spent shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("MASC_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128);
        let seed = std::env::var("MASC_PROP_SEED")
            .ok()
            .and_then(|v| parse_u64(&v))
            .unwrap_or(DEFAULT_SEED);
        Self {
            cases,
            seed,
            max_shrink_iters: 256,
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// FNV-1a, used to give every test its own seed stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

enum CaseResult {
    Pass,
    Fail(String),
}

fn run_case<V, P>(prop: &P, value: &V) -> CaseResult
where
    P: Fn(&V),
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => CaseResult::Pass,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            CaseResult::Fail(msg)
        }
    }
}

/// Runs `prop` on `config.cases` values drawn from `gen`.
///
/// # Panics
///
/// Panics with a reproduction report if any case fails (after bounded
/// shrinking).
pub fn check<G, P>(name: &str, config: &Config, gen: G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value),
{
    let base = config.seed ^ fnv1a(name.as_bytes());
    if let Some(repro) = std::env::var("MASC_PROP_REPRO")
        .ok()
        .and_then(|v| parse_u64(&v))
    {
        run_one(name, config, &gen, &prop, repro, 0);
        return;
    }
    for case in 0..config.cases {
        let case_seed = base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        run_one(name, config, &gen, &prop, case_seed, case);
    }
}

fn run_one<G, P>(name: &str, config: &Config, gen: &G, prop: &P, case_seed: u64, case: u32)
where
    G: Gen,
    P: Fn(&G::Value),
{
    let mut rng = Rng::new(case_seed);
    let value = gen.generate(&mut rng);
    let failure = match run_case(prop, &value) {
        CaseResult::Pass => return,
        CaseResult::Fail(msg) => msg,
    };
    // Bounded greedy shrinking: keep any candidate that still fails.
    let mut current = value;
    let mut current_msg = failure;
    let mut budget = config.max_shrink_iters;
    let mut shrunk = false;
    'outer: while budget > 0 {
        for cand in gen.shrink(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let CaseResult::Fail(msg) = run_case(prop, &cand) {
                current = cand;
                current_msg = msg;
                shrunk = true;
                continue 'outer;
            }
        }
        break;
    }
    panic!(
        "[testkit] property '{name}' failed at case {case}/{cases}\n\
         \x20 argument{shrunk_note}: {current:?}\n\
         \x20 failure: {current_msg}\n\
         \x20 reproduce this case: MASC_PROP_REPRO={case_seed:#x} cargo test {name}",
        cases = config.cases,
        shrunk_note = if shrunk { " (shrunk)" } else { "" },
    );
}

/// Applies one `#![key = value]` block attribute from [`prop!`](crate::prop!).
///
/// Recognized keys: `cases`, `seed`, `max_shrink_iters`.
///
/// # Panics
///
/// Panics on an unknown key.
pub fn apply_config(config: &mut Config, key: &str, value: u64) {
    match key {
        "cases" => config.cases = value as u32,
        "seed" => config.seed = value,
        "max_shrink_iters" => config.max_shrink_iters = value as u32,
        other => panic!("[testkit] unknown prop! config key '{other}'"),
    }
}

/// Defines deterministic property tests.
///
/// Each `fn` becomes a `#[test]`. Arguments use `pattern in generator`
/// syntax; values are drawn from the generator per case and passed by
/// value. Optional inner attributes `#![cases = N]` and `#![seed = N]`
/// configure every test in the block.
///
/// ```
/// use masc_testkit::{gen, prop};
///
/// prop! {
///     #![cases = 64]
///     fn addition_commutes(a in gen::u64s(), b in gen::u64s()) {
///         assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop {
    // Accumulator: munch leading `#![key = value]` block attributes into a
    // bracketed token list, then hand off to `@tests` (macro_rules cannot
    // cross-product two independent repetitions).
    (@acc [ $($cfg:tt)* ] #![$cfg_key:ident = $cfg_val:expr] $($rest:tt)*) => {
        $crate::prop!(@acc [ $($cfg)* ($cfg_key, $cfg_val) ] $($rest)*);
    };
    (@acc [ $($cfg:tt)* ] $($rest:tt)*) => {
        $crate::prop!(@tests [ $($cfg)* ] $($rest)*);
    };
    // `$cfg:tt` captures the whole bracketed config list as one token
    // tree, so it can be repeated per generated test below.
    (@tests $cfg:tt
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $gen:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                #[allow(unused_mut)]
                let mut config = $crate::prop::Config::default();
                $crate::prop!(@config config, $cfg);
                let gen = ($($gen,)+);
                $crate::prop::check(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    gen,
                    |args| {
                        let ($($pat,)+) = ::core::clone::Clone::clone(args);
                        $body
                    },
                );
            }
        )*
    };
    (@config $config:ident, [ ]) => {};
    (@config $config:ident, [ ($key:ident, $value:expr) $($rest:tt)* ]) => {
        $crate::prop::apply_config(&mut $config, stringify!($key), $value as u64);
        $crate::prop!(@config $config, [ $($rest)* ]);
    };
    // Entry point.
    ($($tokens:tt)*) => {
        $crate::prop!(@acc [ ] $($tokens)*);
    };
}

/// `proptest`-compatible assertion alias.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::core::assert!($($tt)*) };
}

/// `proptest`-compatible assertion alias.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::core::assert_eq!($($tt)*) };
}

/// `proptest`-compatible assertion alias.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::core::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_runs_all_cases() {
        let config = Config {
            cases: 50,
            seed: 1,
            max_shrink_iters: 10,
        };
        let count = std::cell::Cell::new(0u32);
        check("passes", &config, gen::u64s(), |_| {
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 50);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let config = Config {
            cases: 50,
            seed: 2,
            max_shrink_iters: 200,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("fails", &config, gen::vecs(gen::u64s(), 0..40), |v| {
                assert!(v.len() < 3, "too long");
            });
        }));
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(p) => *p.downcast::<String>().expect("string payload"),
        };
        assert!(msg.contains("MASC_PROP_REPRO="), "{msg}");
        assert!(msg.contains("(shrunk)"), "{msg}");
        // Greedy shrinking must reach a minimal 3-element counterexample.
        assert!(msg.contains("failed at case"), "{msg}");
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let config = Config {
            cases: 20,
            seed: 3,
            max_shrink_iters: 0,
        };
        let a = std::cell::RefCell::new(Vec::new());
        check("det", &config, gen::u64s(), |v| a.borrow_mut().push(*v));
        let b = std::cell::RefCell::new(Vec::new());
        check("det", &config, gen::u64s(), |v| b.borrow_mut().push(*v));
        assert_eq!(a.into_inner(), b.into_inner());
    }

    prop! {
        #![cases = 32]
        fn macro_smoke(a in gen::range_u64(0, 10), mut v in gen::vecs(gen::bools(), 0..5)) {
            v.push(a < 10);
            assert!(v.last() == Some(&true));
        }
    }
}
