//! Minimal wall-clock micro-benchmark harness (criterion stand-in).
//!
//! Each benchmark is warmed up, then timed over `sample_size` samples of
//! auto-calibrated iteration batches; the report shows the **median**
//! per-iteration time (robust to scheduler noise) plus min/max, and
//! throughput when the group declares a per-iteration byte count.
//!
//! Bench targets use `harness = false` and call [`Bench::from_args`] in
//! `main`. CLI/env controls:
//!
//! - a positional argument filters benchmarks by substring (cargo's
//!   `cargo bench -- <filter>` convention);
//! - `MASC_BENCH_FAST=1` (or `--fast`) runs one short sample per bench —
//!   a smoke mode that keeps bench binaries testable in CI.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-sample target duration for iteration-count calibration.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Warm-up duration before sampling.
const WARMUP: Duration = Duration::from_millis(50);

/// Top-level bench runner; owns the filter and reporting.
pub struct Bench {
    filter: Option<String>,
    fast: bool,
    ran: usize,
}

impl Bench {
    /// Builds a runner from `std::env::args` (see module docs).
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut fast = std::env::var("MASC_BENCH_FAST").is_ok_and(|v| v != "0");
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--fast" => fast = true,
                // Flags cargo-bench passes through to harnesses.
                "--bench" | "--test" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self {
            filter,
            fast,
            ran: 0,
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            name: name.to_string(),
            throughput_bytes: None,
            sample_size: 20,
        }
    }

    /// Prints the closing summary. Call at the end of `main`.
    pub fn finish(self) {
        println!("\n{} benchmark(s) run", self.ran);
    }
}

/// A group of benchmarks sharing a name prefix and throughput settings.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    throughput_bytes: Option<u64>,
    sample_size: usize,
}

impl Group<'_> {
    /// Declares that one iteration processes `bytes` bytes; the report
    /// then includes GiB/s.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Sets the number of timed samples (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f`, reporting under `group/id`.
    pub fn bench<R, F: FnMut() -> R>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.bench.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        self.bench.ran += 1;
        if self.bench.fast {
            let start = Instant::now();
            black_box(f());
            let t = start.elapsed();
            println!(
                "{full:<48} {:>12}/iter  (fast mode, 1 iter)",
                fmt_ns(t.as_nanos() as f64)
            );
            return;
        }

        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let iters_per_sample = ((SAMPLE_TARGET.as_nanos() as f64 / est_ns) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = *samples_ns.last().expect("at least one sample");

        let mut line = format!(
            "{full:<48} {:>12}/iter  [min {}, max {}]",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max)
        );
        if let Some(bytes) = self.throughput_bytes {
            let gib_s = bytes as f64 / median / 1.073_741_824;
            line.push_str(&format!("  {gib_s:>8.3} GiB/s"));
        }
        println!("{line}");
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_bench() -> Bench {
        Bench {
            filter: None,
            fast: true,
            ran: 0,
        }
    }

    #[test]
    fn fast_mode_runs_each_bench_once() {
        let mut bench = fast_bench();
        let mut calls = 0;
        {
            let mut group = bench.group("g");
            group.bench("a", || calls += 1);
            group.bench("b", || calls += 1);
        }
        assert_eq!(calls, 2);
        assert_eq!(bench.ran, 2);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut bench = Bench {
            filter: Some("match_me".to_string()),
            fast: true,
            ran: 0,
        };
        let mut calls = 0;
        {
            let mut group = bench.group("g");
            group.bench("match_me", || calls += 1);
            group.bench("other", || calls += 1);
        }
        assert_eq!(calls, 1);
        assert_eq!(bench.ran, 1);
    }

    #[test]
    fn slow_path_produces_samples() {
        // Not fast mode, but a trivial body: should complete quickly since
        // iteration batches are capped by sample count.
        let mut bench = Bench {
            filter: None,
            fast: false,
            ran: 0,
        };
        let mut group = bench.group("g");
        group.sample_size(2).throughput_bytes(8);
        group.bench("trivial", || black_box(1u64 + 1));
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).contains(" s"));
    }
}
