//! Scheduler-shim coverage for `masc_testkit::sched`.
//!
//! CI runs this suite with `--test-threads=1`: each exploration gates
//! its own virtual threads, and serializing the tests keeps the quiet
//! panic hook from masking unrelated test output.

use masc_testkit::sched::{Explorer, FailureKind};

fn small_explorer() -> Explorer {
    Explorer {
        schedules: 120,
        ..Explorer::default()
    }
}

#[test]
fn mutex_provides_mutual_exclusion() {
    // Three incrementing threads; a non-atomic read-modify-write through
    // the shim mutex must still total 3 on every schedule.
    let report = small_explorer().explore(|s| {
        let counter = s.mutex(0u32);
        for _ in 0..3 {
            let c = counter.clone();
            let s2 = s.clone();
            s.spawn(move || {
                let read = *c.lock();
                s2.yield_now(); // widen the race window on purpose
                *c.lock() = read + 1;
            });
        }
        s.join_all();
        let total = *counter.lock();
        assert_eq!(total, 3, "lost increment under some interleaving");
    });
    // The yield between read and write makes the data race real: the
    // explorer must expose at least one schedule where an increment is
    // lost, proving it actually interleaves critical sections.
    let failure = report
        .failure
        .expect("explorer must expose the read-modify-write race");
    assert!(matches!(failure.kind, FailureKind::Panic { .. }));
}

#[test]
fn mutex_guarded_increment_is_safe() {
    // Same shape but the whole read-modify-write is under one guard:
    // no schedule may fail.
    let report = small_explorer().explore(|s| {
        let counter = s.mutex(0u32);
        for _ in 0..3 {
            let c = counter.clone();
            s.spawn(move || {
                let mut g = c.lock();
                *g += 1;
            });
        }
        s.join_all();
        let total = *counter.lock();
        assert_eq!(total, 3);
    });
    assert!(report.failure.is_none(), "unexpected: {:?}", report.failure);
}

#[test]
fn self_deadlock_is_detected() {
    let report = small_explorer().explore(|s| {
        let m = s.mutex(());
        let _g1 = m.lock();
        let _g2 = m.lock(); // blocks forever; every thread blocked
    });
    match report.failure.expect("double lock must deadlock").kind {
        FailureKind::Deadlock { blocked } => assert_eq!(blocked, vec![0]),
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn condvar_while_loop_pattern_is_clean() {
    // The disciplined pattern R6 mandates: predicate re-checked in a
    // while loop, notify after the guarded write. No schedule may hang.
    let report = small_explorer().explore(|s| {
        let state = s.mutex(false);
        let cv = s.condvar();
        let (st2, cv2) = (state.clone(), cv.clone());
        s.spawn(move || {
            let mut g = st2.lock();
            *g = true;
            drop(g);
            cv2.notify_all();
        });
        let mut g = state.lock();
        while !*g {
            g = cv.wait(g);
        }
        drop(g);
        s.join_all();
    });
    assert!(report.failure.is_none(), "unexpected: {:?}", report.failure);
}

#[test]
fn lost_wakeup_is_found_shrunk_and_seed_replayable() {
    // The R6/PR-8 bug class, dynamic edition: the producer flips the
    // flag *outside* the mutex the waiter's predicate is guarded by, so
    // on schedules where the notify lands before the waiter registers,
    // the waiter sleeps forever.
    let model = |s: &masc_testkit::sched::Sched| {
        let state = s.mutex(false);
        let cv = s.condvar();
        let flag = s.mutex(0usize); // foreign flag: NOT the condvar's mutex
        let (cv2, flag2) = (cv.clone(), flag.clone());
        s.spawn(move || {
            // BUG: the write is not under the waiter's mutex, so the
            // notify can land between the waiter's predicate check and
            // its wait registration — and is then lost.
            *flag2.lock() = 1;
            cv2.notify_all();
        });
        let mut g = state.lock();
        while *flag.lock() == 0 {
            g = cv.wait(g);
        }
        drop(g);
        s.join_all();
    };

    let explorer = small_explorer();
    let report = explorer.explore(model);
    let failure = report.failure.expect("lost wakeup must be exposed");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "lost wakeup should manifest as deadlock, got {}",
        failure.kind
    );

    // Seed replay: the same failure reproduces from the seed alone.
    let replayed = explorer
        .replay(failure.seed, model)
        .expect("seed replay must reproduce the failure");
    assert_eq!(replayed.kind, failure.kind);

    // Determinism: replaying twice gives bit-identical traces.
    let replayed2 = explorer.replay(failure.seed, model).expect("replay again");
    assert_eq!(replayed.trace, replayed2.trace);
    assert_eq!(replayed.preemptions, replayed2.preemptions);
}

#[test]
fn channel_transfers_everything_in_order() {
    let report = small_explorer().explore(|s| {
        let (tx, rx) = s.channel::<u32>(2);
        s.spawn(move || {
            for i in 0..5 {
                tx.send(i).expect("receiver alive");
            }
            // Sender dropped here ends the stream.
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        s.join_all();
    });
    assert!(report.failure.is_none(), "unexpected: {:?}", report.failure);
}

#[test]
fn channel_send_errors_after_receiver_drop() {
    let report = small_explorer().explore(|s| {
        let (tx, rx) = s.channel::<u8>(1);
        drop(rx);
        let err = tx.send(7).expect_err("receiver is gone");
        assert_eq!(err.0, 7);
        s.join_all();
    });
    assert!(report.failure.is_none(), "unexpected: {:?}", report.failure);
}

#[test]
fn bounded_channel_blocks_producer_until_drained() {
    // Capacity-1 rendezvous: producer outpaces consumer; both finish on
    // every schedule and the consumer sees every item.
    let report = small_explorer().explore(|s| {
        let (tx, rx) = s.channel::<u32>(1);
        let seen = s.mutex(Vec::new());
        let seen2 = seen.clone();
        s.spawn(move || {
            while let Ok(v) = rx.recv() {
                seen2.lock().push(v);
            }
        });
        for i in 0..4 {
            tx.send(i).expect("receiver alive");
        }
        drop(tx);
        s.join_all();
        let got = seen.lock().clone();
        assert_eq!(got, vec![0, 1, 2, 3]);
    });
    assert!(report.failure.is_none(), "unexpected: {:?}", report.failure);
}

#[test]
fn exploration_is_deterministic_across_runs() {
    // Two full explorations of the same failing model agree on the
    // failing seed and the minimized trace.
    let model = |s: &masc_testkit::sched::Sched| {
        let m = s.mutex(0u32);
        let m2 = m.clone();
        let s2 = s.clone();
        s.spawn(move || {
            let read = *m2.lock();
            s2.yield_now();
            *m2.lock() = read + 1;
        });
        let read = *m.lock();
        s.yield_now();
        *m.lock() = read + 1;
        s.join_all();
        let total = *m.lock();
        assert_eq!(total, 2);
    };
    let a = small_explorer().explore(model);
    let b = small_explorer().explore(model);
    let (fa, fb) = (
        a.failure.expect("race found"),
        b.failure.expect("race found"),
    );
    assert_eq!(fa.seed, fb.seed);
    assert_eq!(fa.trace, fb.trace);
    assert_eq!(a.schedules, b.schedules);
}

#[test]
fn join_all_with_no_threads_returns() {
    let report = small_explorer().explore(|s| {
        s.join_all();
    });
    assert!(report.failure.is_none());
    assert!(report.schedules > 0);
}
