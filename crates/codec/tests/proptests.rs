//! Property-based round-trip tests for every coder in `masc-codec`.

use masc_codec::{huffman, lzss, range, rans, rle, transform};
use proptest::prelude::*;

/// Byte vectors biased toward compressible content (runs + text + noise).
fn data_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..2000),
        proptest::collection::vec(0u8..4, 0..2000),
        (0u8..=255, 0usize..3000).prop_map(|(b, n)| vec![b; n]),
        proptest::collection::vec(any::<f64>(), 0..256)
            .prop_map(|fs| fs.iter().flat_map(|f| f.to_le_bytes()).collect()),
    ]
}

proptest! {
    #[test]
    fn huffman_round_trip(data in data_strategy()) {
        let packed = huffman::encode(&data);
        prop_assert_eq!(huffman::decode(&packed).unwrap(), data);
    }

    #[test]
    fn rans_round_trip(data in data_strategy()) {
        let packed = rans::encode(&data);
        prop_assert_eq!(rans::decode(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_round_trip(data in data_strategy()) {
        let tokens = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&tokens).unwrap(), data);
    }

    #[test]
    fn range_coder_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..4000)) {
        let mut model = range::BitModel::new();
        let mut enc = range::RangeEncoder::new();
        for &b in &bits {
            enc.encode_bit(&mut model, b);
        }
        let bytes = enc.finish();
        let mut model = range::BitModel::new();
        let mut dec = range::RangeDecoder::new(&bytes).unwrap();
        for &b in &bits {
            prop_assert_eq!(dec.decode_bit(&mut model).unwrap(), b);
        }
    }

    #[test]
    fn range_tree_round_trip(values in proptest::collection::vec(0u32..256, 0..1000)) {
        let mut models = vec![range::BitModel::new(); 255];
        let mut enc = range::RangeEncoder::new();
        for &v in &values {
            enc.encode_bits_tree(&mut models, 8, v);
        }
        let bytes = enc.finish();
        let mut models = vec![range::BitModel::new(); 255];
        let mut dec = range::RangeDecoder::new(&bytes).unwrap();
        for &v in &values {
            prop_assert_eq!(dec.decode_bits_tree(&mut models, 8).unwrap(), v);
        }
    }

    #[test]
    fn rle_round_trip(words in proptest::collection::vec(
        prop_oneof![Just(0u64), any::<u64>()], 0..2000)) {
        let packed = rle::encode_words(&words);
        prop_assert_eq!(rle::decode_words(&packed).unwrap(), words);
    }

    #[test]
    fn xor_transform_round_trip(words in proptest::collection::vec(any::<u64>(), 0..500)) {
        let mut w = words.clone();
        transform::xor_previous(&mut w);
        transform::undo_xor_previous(&mut w);
        prop_assert_eq!(w, words);
    }

    #[test]
    fn delta_transform_round_trip(words in proptest::collection::vec(any::<u64>(), 0..500)) {
        let mut w = words.clone();
        transform::delta_previous(&mut w);
        transform::undo_delta_previous(&mut w);
        prop_assert_eq!(w, words);
    }

    #[test]
    fn transpose_involution(words in proptest::collection::vec(any::<u64>(), 64)) {
        let mut w = words.clone();
        transform::transpose_bits(&mut w);
        transform::transpose_bits(&mut w);
        prop_assert_eq!(w, words);
    }
}
