//! Property-based round-trip tests for every coder in `masc-codec`
//! (masc-testkit), plus adversarial fixed inputs: empty streams,
//! single-symbol and all-equal payloads, and special-float byte images.

// Tests may assert with unwrap/expect; the crate's clippy.toml bans them
// in shipping code only (masc-lint rule R1).
#![allow(clippy::disallowed_methods)]

use masc_codec::{huffman, lzss, range, rans, rle, transform};
use masc_testkit::gen::{self, Gen};
use masc_testkit::{prop, prop_assert_eq};

/// Byte vectors biased toward compressible content (runs + low-entropy +
/// float images + noise).
fn datas() -> impl Gen<Value = Vec<u8>> {
    gen::one_of(vec![
        gen::vecs(gen::u8s(), 0..2000).boxed(),
        gen::vecs(gen::range_u8(0, 4), 0..2000).boxed(),
        gen::from_fn(|rng| {
            let b = rng.next_u32() as u8;
            let n = rng.range_usize(0, 3000);
            vec![b; n]
        })
        .boxed(),
        gen::vecs(gen::f64_payloads(), 0..256)
            .map(|fs| fs.iter().flat_map(|f| f.to_le_bytes()).collect())
            .boxed(),
    ])
}

prop! {
    fn huffman_round_trip(data in datas()) {
        let packed = huffman::encode(&data);
        prop_assert_eq!(huffman::decode(&packed).unwrap(), data);
    }

    fn rans_round_trip(data in datas()) {
        let packed = rans::encode(&data);
        prop_assert_eq!(rans::decode(&packed).unwrap(), data);
    }

    fn lzss_round_trip(data in datas()) {
        let tokens = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&tokens).unwrap(), data);
    }

    fn range_coder_round_trip(bits in gen::vecs(gen::bools(), 0..4000)) {
        let mut model = range::BitModel::new();
        let mut enc = range::RangeEncoder::new();
        for &b in &bits {
            enc.encode_bit(&mut model, b);
        }
        let bytes = enc.finish();
        let mut model = range::BitModel::new();
        let mut dec = range::RangeDecoder::new(&bytes).unwrap();
        for &b in &bits {
            prop_assert_eq!(dec.decode_bit(&mut model).unwrap(), b);
        }
    }

    fn range_tree_round_trip(values in gen::vecs(gen::range_u32(0, 256), 0..1000)) {
        let mut models = vec![range::BitModel::new(); 255];
        let mut enc = range::RangeEncoder::new();
        for &v in &values {
            enc.encode_bits_tree(&mut models, 8, v);
        }
        let bytes = enc.finish();
        let mut models = vec![range::BitModel::new(); 255];
        let mut dec = range::RangeDecoder::new(&bytes).unwrap();
        for &v in &values {
            prop_assert_eq!(dec.decode_bits_tree(&mut models, 8).unwrap(), v);
        }
    }

    fn rle_round_trip(words in gen::vecs(
        gen::weighted(vec![
            (1, gen::just(0u64).boxed()),
            (1, gen::u64s().boxed()),
        ]),
        0..2000,
    )) {
        let packed = rle::encode_words(&words);
        prop_assert_eq!(rle::decode_words(&packed).unwrap(), words);
    }

    fn xor_transform_round_trip(words in gen::vecs(gen::u64s(), 0..500)) {
        let mut w = words.clone();
        transform::xor_previous(&mut w);
        transform::undo_xor_previous(&mut w);
        prop_assert_eq!(w, words);
    }

    fn delta_transform_round_trip(words in gen::vecs(gen::u64s(), 0..500)) {
        let mut w = words.clone();
        transform::delta_previous(&mut w);
        transform::undo_delta_previous(&mut w);
        prop_assert_eq!(w, words);
    }

    fn transpose_involution(words in gen::vecs(gen::u64s(), 64..65)) {
        let mut w = words.clone();
        transform::transpose_bits(&mut w);
        transform::transpose_bits(&mut w);
        prop_assert_eq!(w, words);
    }
}

/// The adversarial payload matrix every byte coder must survive: empty
/// input, a single symbol, long all-equal runs, a two-symbol alternation,
/// every byte value once, and the byte images of special floats
/// (`NaN`, `±0.0`, infinities, subnormals).
fn adversarial_payloads() -> Vec<(&'static str, Vec<u8>)> {
    let specials = [
        f64::NAN,
        -f64::NAN,
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        5e-324,                // smallest positive subnormal
        -2.2250738585072e-308, // near the subnormal boundary
        f64::MAX,
        f64::MIN_POSITIVE,
    ];
    vec![
        ("empty", Vec::new()),
        ("single_symbol", vec![0xA5]),
        ("all_equal_short", vec![0u8; 7]),
        ("all_equal_long", vec![0xFF; 4096]),
        (
            "two_symbol_alternation",
            (0..2048).map(|i| (i % 2) as u8 * 0x5A).collect(),
        ),
        ("every_byte_once", (0..=255u8).collect()),
        (
            "special_floats",
            specials.iter().flat_map(|f| f.to_le_bytes()).collect(),
        ),
        (
            "special_floats_repeated",
            std::iter::repeat_with(|| specials.iter().flat_map(|f| f.to_le_bytes()))
                .take(64)
                .flatten()
                .collect(),
        ),
    ]
}

#[test]
fn huffman_survives_adversarial_inputs() {
    for (name, data) in adversarial_payloads() {
        let packed = huffman::encode(&data);
        assert_eq!(huffman::decode(&packed).unwrap(), data, "{name}");
    }
}

#[test]
fn rans_survives_adversarial_inputs() {
    for (name, data) in adversarial_payloads() {
        let packed = rans::encode(&data);
        assert_eq!(rans::decode(&packed).unwrap(), data, "{name}");
    }
}

#[test]
fn lzss_survives_adversarial_inputs() {
    for (name, data) in adversarial_payloads() {
        let tokens = lzss::compress(&data);
        assert_eq!(lzss::decompress(&tokens).unwrap(), data, "{name}");
    }
}

#[test]
fn rle_survives_adversarial_word_streams() {
    let cases: Vec<(&str, Vec<u64>)> = vec![
        ("empty", Vec::new()),
        ("single_word", vec![u64::MAX]),
        ("all_zero", vec![0; 3000]),
        ("all_equal", vec![0xDEAD_BEEF; 513]),
        (
            "special_float_bits",
            [f64::NAN, -0.0, 0.0, f64::INFINITY, 5e-324]
                .iter()
                .map(|f| f.to_bits())
                .collect(),
        ),
    ];
    for (name, words) in cases {
        let packed = rle::encode_words(&words);
        assert_eq!(rle::decode_words(&packed).unwrap(), words, "{name}");
    }
}

#[test]
fn range_coder_survives_degenerate_bit_streams() {
    for bits in [
        Vec::new(),
        vec![true],
        vec![false],
        vec![true; 5000],
        vec![false; 5000],
        (0..5000).map(|i| i % 2 == 0).collect::<Vec<_>>(),
    ] {
        let mut model = range::BitModel::new();
        let mut enc = range::RangeEncoder::new();
        for &b in &bits {
            enc.encode_bit(&mut model, b);
        }
        let bytes = enc.finish();
        let mut model = range::BitModel::new();
        let mut dec = range::RangeDecoder::new(&bytes).unwrap();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut model).unwrap(), b);
        }
    }
}

#[test]
fn decoders_reject_empty_or_garbage_headers() {
    assert!(huffman::decode(&[]).is_err() || huffman::decode(&[]).unwrap().is_empty());
    assert!(rans::decode(&[]).is_err() || rans::decode(&[]).unwrap().is_empty());
    assert!(rle::decode_words(&[]).is_err() || rle::decode_words(&[]).unwrap().is_empty());
}
