//! Adaptive binary range coder (arithmetic-coding family).
//!
//! This is the carry-less binary range coder used by LZMA-style compressors:
//! a 32-bit range, 11-bit adaptive probabilities, and byte-wise
//! renormalization. `masc-baselines` uses it for the FPZIP-style compressor
//! (predictive coding + arithmetic entropy stage) and the SpiceMate-style
//! lossy coder.
//!
//! # Examples
//!
//! ```
//! use masc_codec::range::{BitModel, RangeDecoder, RangeEncoder};
//!
//! # fn main() -> Result<(), masc_codec::CodecError> {
//! let bits = [true, true, false, true, true, true, false, true];
//! let mut model = BitModel::new();
//! let mut enc = RangeEncoder::new();
//! for &b in &bits {
//!     enc.encode_bit(&mut model, b);
//! }
//! let bytes = enc.finish();
//!
//! let mut model = BitModel::new();
//! let mut dec = RangeDecoder::new(&bytes)?;
//! for &b in &bits {
//!     assert_eq!(dec.decode_bit(&mut model)?, b);
//! }
//! # Ok(())
//! # }
//! ```

use crate::CodecError;

/// Number of probability bits (LZMA convention).
const PROB_BITS: u32 = 11;
const PROB_ONE: u16 = 1 << PROB_BITS;
/// Adaptation shift: larger = slower adaptation.
const ADAPT_SHIFT: u32 = 5;
const TOP: u32 = 1 << 24;

/// An adaptive probability estimate for a single binary context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitModel {
    /// Probability of a zero bit, in 1/2048 units.
    p0: u16,
}

impl Default for BitModel {
    fn default() -> Self {
        Self::new()
    }
}

impl BitModel {
    /// Creates a model with a 50/50 initial estimate.
    pub fn new() -> Self {
        Self { p0: PROB_ONE / 2 }
    }

    #[inline]
    fn update(&mut self, bit: bool) {
        if bit {
            self.p0 -= self.p0 >> ADAPT_SHIFT;
        } else {
            self.p0 += (PROB_ONE - self.p0) >> ADAPT_SHIFT;
        }
    }
}

/// Encoder half of the range coder.
#[derive(Debug, Clone, Default)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl RangeEncoder {
    /// Creates a fresh encoder.
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000u64 || self.low > u64::from(u32::MAX) {
            let carry = (self.low >> 32) as u8;
            let mut first = true;
            while self.cache_size > 0 {
                let byte = if first {
                    self.cache.wrapping_add(carry)
                } else {
                    0xFFu8.wrapping_add(carry)
                };
                self.out.push(byte);
                first = false;
                self.cache_size -= 1;
            }
            self.cache = ((self.low >> 24) & 0xFF) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encodes one bit under the given adaptive model.
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: bool) {
        let bound = (self.range >> PROB_BITS) * u32::from(model.p0);
        if bit {
            self.low += u64::from(bound);
            self.range -= bound;
        } else {
            self.range = bound;
        }
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encodes the low `n` bits of `value` (MSB first) through a tree of
    /// per-position contexts.
    ///
    /// # Panics
    ///
    /// Panics if `models.len() < (1 << n) - 1` or `n > 16`.
    pub fn encode_bits_tree(&mut self, models: &mut [BitModel], n: u32, value: u32) {
        assert!(n <= 16);
        let mut ctx = 1usize;
        for i in (0..n).rev() {
            let bit = (value >> i) & 1 != 0;
            self.encode_bit(&mut models[ctx - 1], bit);
            ctx = (ctx << 1) | usize::from(bit);
        }
    }

    /// Encodes `n` bits of `value` (MSB first) at fixed probability ½ —
    /// no model, ~1 output bit per input bit. Used for incompressible
    /// mantissa tails.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn encode_direct_bits(&mut self, value: u32, n: u32) {
        assert!(n <= 32);
        for i in (0..n).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit != 0 {
                self.low += u64::from(self.range);
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flushes the coder and returns the compressed bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Decoder half of the range coder.
#[derive(Debug, Clone)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Creates a decoder over bytes produced by [`RangeEncoder::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] if fewer than 5 bytes are present.
    pub fn new(input: &'a [u8]) -> Result<Self, CodecError> {
        if input.len() < 5 {
            return Err(CodecError::Truncated);
        }
        let mut code = 0u32;
        // The first byte is always zero (encoder cache priming); skip it.
        for &b in &input[1..5] {
            code = (code << 8) | u32::from(b);
        }
        Ok(Self {
            code,
            range: u32::MAX,
            input,
            pos: 5,
        })
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reading past the flushed tail is well-defined: zeros.
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decodes one bit under the given adaptive model.
    ///
    /// # Errors
    ///
    /// This method itself cannot fail mid-stream (the encoder's flush pads
    /// the tail), but it is fallible for interface symmetry and future
    /// validation.
    pub fn decode_bit(&mut self, model: &mut BitModel) -> Result<bool, CodecError> {
        let bound = (self.range >> PROB_BITS) * u32::from(model.p0);
        let bit = if self.code < bound {
            self.range = bound;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            true
        };
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            let byte = self.next_byte();
            self.code = (self.code << 8) | u32::from(byte);
        }
        Ok(bit)
    }

    /// Decodes `n` bits written by [`RangeEncoder::encode_bits_tree`].
    ///
    /// # Errors
    ///
    /// Propagates [`CodecError`] from bit decoding.
    ///
    /// # Panics
    ///
    /// Panics if `models.len() < (1 << n) - 1` or `n > 16`.
    pub fn decode_bits_tree(&mut self, models: &mut [BitModel], n: u32) -> Result<u32, CodecError> {
        assert!(n <= 16);
        let mut ctx = 1usize;
        for _ in 0..n {
            let bit = self.decode_bit(&mut models[ctx - 1])?;
            ctx = (ctx << 1) | usize::from(bit);
        }
        Ok((ctx as u32) - (1 << n))
    }

    /// Decodes `n` bits written by [`RangeEncoder::encode_direct_bits`].
    ///
    /// # Errors
    ///
    /// Infallible in practice (flush padding); fallible for symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn decode_direct_bits(&mut self, n: u32) -> Result<u32, CodecError> {
        assert!(n <= 32);
        let mut value = 0u32;
        for _ in 0..n {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                true
            } else {
                false
            };
            value = (value << 1) | u32::from(bit);
            while self.range < TOP {
                self.range <<= 8;
                let byte = self.next_byte();
                self.code = (self.code << 8) | u32::from(byte);
            }
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_bits(bits: &[bool]) {
        let mut model = BitModel::new();
        let mut enc = RangeEncoder::new();
        for &b in bits {
            enc.encode_bit(&mut model, b);
        }
        let bytes = enc.finish();
        let mut model = BitModel::new();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.decode_bit(&mut model).unwrap(), b, "bit {i}");
        }
    }

    #[test]
    fn empty_stream() {
        let enc = RangeEncoder::new();
        let bytes = enc.finish();
        RangeDecoder::new(&bytes).unwrap();
    }

    #[test]
    fn alternating_bits() {
        let bits: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        round_trip_bits(&bits);
    }

    #[test]
    fn mostly_zero_bits_compress() {
        let bits: Vec<bool> = (0..100_000).map(|i| i % 100 == 0).collect();
        let mut model = BitModel::new();
        let mut enc = RangeEncoder::new();
        for &b in &bits {
            enc.encode_bit(&mut model, b);
        }
        let bytes = enc.finish();
        // 100k bits = 12.5 kB raw; skewed stream should be ≪ that.
        assert!(
            bytes.len() < 3000,
            "range coder produced {} bytes",
            bytes.len()
        );
        let mut model = BitModel::new();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut model).unwrap(), b);
        }
    }

    #[test]
    fn long_one_runs_exercise_carry() {
        // Long runs of ones drive `low` toward the carry path.
        let mut bits = vec![true; 5000];
        bits.extend(vec![false; 7]);
        bits.extend(vec![true; 5000]);
        round_trip_bits(&bits);
    }

    #[test]
    fn tree_coded_values_round_trip() {
        let values: Vec<u32> = (0..2000u32).map(|i| (i * 37) % 256).collect();
        let mut models = vec![BitModel::new(); 255];
        let mut enc = RangeEncoder::new();
        for &v in &values {
            enc.encode_bits_tree(&mut models, 8, v);
        }
        let bytes = enc.finish();
        let mut models = vec![BitModel::new(); 255];
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &v in &values {
            assert_eq!(dec.decode_bits_tree(&mut models, 8).unwrap(), v);
        }
    }

    #[test]
    fn truncated_header_is_error() {
        assert!(RangeDecoder::new(&[1, 2, 3]).is_err());
    }

    #[test]
    fn direct_bits_round_trip() {
        let mut enc = RangeEncoder::new();
        let values = [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 7, 1 << 31];
        for &v in &values {
            enc.encode_direct_bits(v, 32);
        }
        enc.encode_direct_bits(0b101, 3);
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &v in &values {
            assert_eq!(dec.decode_direct_bits(32).unwrap(), v);
        }
        assert_eq!(dec.decode_direct_bits(3).unwrap(), 0b101);
    }

    #[test]
    fn direct_bits_interleave_with_modeled_bits() {
        let mut model = BitModel::new();
        let mut enc = RangeEncoder::new();
        for i in 0..500u32 {
            enc.encode_bit(&mut model, i % 3 == 0);
            enc.encode_direct_bits(i & 0x3F, 6);
        }
        let bytes = enc.finish();
        let mut model = BitModel::new();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for i in 0..500u32 {
            assert_eq!(dec.decode_bit(&mut model).unwrap(), i % 3 == 0);
            assert_eq!(dec.decode_direct_bits(6).unwrap(), i & 0x3F);
        }
    }

    #[test]
    fn separate_contexts_beat_single_context() {
        // Position-dependent bias: even positions ~always 1, odd ~always 0.
        let bits: Vec<bool> = (0..50_000).map(|i| i % 2 == 0).collect();
        // Single context: adapts to 50/50 → ~1 bit/bit.
        let mut one = BitModel::new();
        let mut enc1 = RangeEncoder::new();
        for &b in &bits {
            enc1.encode_bit(&mut one, b);
        }
        let single = enc1.finish().len();
        // Two contexts: each becomes deterministic → ≪ 1 bit/bit.
        let mut two = [BitModel::new(), BitModel::new()];
        let mut enc2 = RangeEncoder::new();
        for (i, &b) in bits.iter().enumerate() {
            enc2.encode_bit(&mut two[i % 2], b);
        }
        let dual = enc2.finish().len();
        assert!(dual * 4 < single, "dual {dual} vs single {single}");
    }
}
