//! Order-0 range Asymmetric Numeral Systems (rANS) byte coder.
//!
//! ANS is the modern entropy coder the paper's background section highlights:
//! "ANS efficiently compresses data by assigning shorter codes to more
//! frequent symbols" with compression close to arithmetic coding at Huffman-
//! like speed. This is a classic 32-bit rANS with byte-wise renormalization
//! and a 12-bit quantized frequency table stored in the header.
//!
//! Symbols are encoded in reverse and decoded forward, as usual for rANS.
//!
//! # Examples
//!
//! ```
//! use masc_codec::rans;
//!
//! # fn main() -> Result<(), masc_codec::CodecError> {
//! let data = b"mississippi mississippi mississippi";
//! let packed = rans::encode(data);
//! assert_eq!(rans::decode(&packed)?, data);
//! # Ok(())
//! # }
//! ```

use crate::CodecError;
use masc_bitio::varint;

/// log2 of the total frequency scale.
const SCALE_BITS: u32 = 12;
const SCALE: u32 = 1 << SCALE_BITS;

/// Upper bound on a stream's claimed decompressed size.
///
/// A constant-symbol frequency table legitimately decodes unbounded output
/// from a few input bytes, so the claim in the header cannot be bounded by
/// the input length; cap it instead so an adversarial header cannot demand
/// unbounded allocation and decode work.
pub const MAX_DECODE_BYTES: u64 = 1 << 26;
/// Lower bound of the rANS state before renormalization.
const RANS_L: u32 = 1 << 23;

/// Quantizes raw counts to a table summing exactly to `SCALE`.
///
/// Every present symbol keeps a non-zero slot so it stays encodable.
fn quantize_freqs(raw: &[u64; 256]) -> [u32; 256] {
    let total: u64 = raw.iter().sum();
    let mut freqs = [0u32; 256];
    if total == 0 {
        return freqs;
    }
    let mut assigned: u32 = 0;
    let mut max_sym = 0usize;
    let mut max_freq = 0u32;
    for s in 0..256 {
        if raw[s] == 0 {
            continue;
        }
        let f = ((raw[s] as u128 * SCALE as u128) / total as u128) as u32;
        let f = f.max(1);
        freqs[s] = f;
        assigned += f;
        if f > max_freq {
            max_freq = f;
            max_sym = s;
        }
    }
    // Push the rounding error onto the most frequent symbol.
    if assigned > SCALE {
        let excess = assigned - SCALE;
        debug_assert!(freqs[max_sym] > excess);
        freqs[max_sym] -= excess;
    } else {
        freqs[max_sym] += SCALE - assigned;
    }
    freqs
}

/// Compresses `data` with order-0 rANS.
///
/// Stream layout: varint original length; 256 varint frequencies; varint
/// payload length; payload bytes (rANS words, emitted back-to-front).
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut raw = [0u64; 256];
    for &b in data {
        raw[b as usize] += 1;
    }
    let freqs = quantize_freqs(&raw);
    // Cumulative table.
    let mut cum = [0u32; 257];
    for s in 0..256 {
        cum[s + 1] = cum[s] + freqs[s];
    }

    let mut out = Vec::with_capacity(data.len() / 2 + 520);
    varint::write_u64(&mut out, data.len() as u64);
    for &f in &freqs {
        varint::write_u64(&mut out, u64::from(f));
    }

    // Encode in reverse; bytes are pushed then reversed so the decoder
    // reads forward.
    let mut payload: Vec<u8> = Vec::with_capacity(data.len() / 2 + 8);
    let mut state: u32 = RANS_L;
    for &sym in data.iter().rev() {
        let f = freqs[sym as usize];
        debug_assert!(f > 0);
        // Renormalize: keep state < (RANS_L >> SCALE_BITS << 8) * f.
        let x_max = ((RANS_L >> SCALE_BITS) << 8) * f;
        while state >= x_max {
            payload.push((state & 0xFF) as u8);
            state >>= 8;
        }
        state = ((state / f) << SCALE_BITS) | ((state % f) + cum[sym as usize]);
    }
    // Flush the final 32-bit state.
    for _ in 0..4 {
        payload.push((state & 0xFF) as u8);
        state >>= 8;
    }
    payload.reverse();
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decompresses a stream produced by [`encode`].
///
/// # Errors
///
/// Returns [`CodecError`] if the stream is truncated or the frequency table
/// is inconsistent.
pub fn decode(packed: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let (orig_len, used) = varint::read_u64(&packed[pos..])?;
    pos += used;
    let mut freqs = [0u32; 256];
    let mut total: u64 = 0;
    for f in freqs.iter_mut() {
        let (v, used) = varint::read_u64(&packed[pos..])?;
        pos += used;
        *f = u32::try_from(v).map_err(|_| CodecError::Corrupt("frequency too large"))?;
        total += v;
    }
    if orig_len == 0 {
        return Ok(Vec::new());
    }
    if orig_len > MAX_DECODE_BYTES {
        return Err(CodecError::Corrupt("implausible decompressed length"));
    }
    if total != u64::from(SCALE) {
        return Err(CodecError::Corrupt(
            "rans frequency table does not sum to scale",
        ));
    }
    let mut cum = [0u32; 257];
    for s in 0..256 {
        cum[s + 1] = cum[s] + freqs[s];
    }
    // Slot → symbol lookup.
    let mut slot_to_sym = vec![0u8; SCALE as usize];
    for s in 0..256usize {
        for slot in cum[s]..cum[s + 1] {
            slot_to_sym[slot as usize] = s as u8;
        }
    }

    let (payload_len, used) = varint::read_u64(&packed[pos..])?;
    pos += used;
    let payload_end = pos
        .checked_add(payload_len as usize)
        .ok_or(CodecError::Truncated)?;
    let payload = packed.get(pos..payload_end).ok_or(CodecError::Truncated)?;
    if payload.len() < 4 {
        return Err(CodecError::Truncated);
    }

    let mut cursor = 0usize;
    let mut state: u32 = 0;
    for _ in 0..4 {
        state = (state << 8) | u32::from(payload[cursor]);
        cursor += 1;
    }
    let mut out = Vec::with_capacity(orig_len as usize);
    for _ in 0..orig_len {
        let slot = state & (SCALE - 1);
        let sym = slot_to_sym[slot as usize];
        let f = freqs[sym as usize];
        state = f * (state >> SCALE_BITS) + slot - cum[sym as usize];
        while state < RANS_L {
            let byte = payload.get(cursor).copied().ok_or(CodecError::Truncated)?;
            state = (state << 8) | u32::from(byte);
            cursor += 1;
        }
        out.push(sym);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trip() {
        let packed = encode(&[]);
        assert_eq!(decode(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_byte_round_trip() {
        let packed = encode(&[99]);
        assert_eq!(decode(&packed).unwrap(), vec![99]);
    }

    #[test]
    fn uniform_data_round_trip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let packed = encode(&data);
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn skewed_data_compresses_well() {
        let mut data = vec![0u8; 50_000];
        for i in (0..data.len()).step_by(100) {
            data[i] = 7;
        }
        let packed = encode(&data);
        // ~0.08 bits/byte entropy; header dominates but the whole thing
        // must still be far below the input size.
        assert!(
            packed.len() < data.len() / 10,
            "packed {} of {}",
            packed.len(),
            data.len()
        );
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn quantized_freqs_sum_to_scale() {
        let mut raw = [0u64; 256];
        raw[0] = 1;
        raw[1] = 1_000_000_000;
        raw[200] = 3;
        let q = quantize_freqs(&raw);
        assert_eq!(
            q.iter().map(|&f| u64::from(f)).sum::<u64>(),
            u64::from(SCALE)
        );
        assert!(q[0] >= 1 && q[200] >= 1);
    }

    #[test]
    fn all_256_symbols_present() {
        let mut raw = [0u64; 256];
        for (i, r) in raw.iter_mut().enumerate() {
            *r = (i as u64 % 17) + 1;
        }
        let q = quantize_freqs(&raw);
        assert_eq!(
            q.iter().map(|&f| u64::from(f)).sum::<u64>(),
            u64::from(SCALE)
        );
        assert!(q.iter().all(|&f| f >= 1));
    }

    #[test]
    fn truncated_payload_is_error() {
        let data = vec![3u8; 1000];
        let mut packed = encode(&data);
        packed.truncate(packed.len() - 2);
        assert!(decode(&packed).is_err());
    }

    #[test]
    fn bad_frequency_table_is_error() {
        let data = vec![1u8, 2, 3];
        let packed = encode(&data);
        // Recode the header with a broken frequency for symbol 1.
        let (len, l0) = varint::read_u64(&packed).unwrap();
        assert_eq!(len, 3);
        let mut broken = packed[..l0].to_vec();
        let (f0, u0) = varint::read_u64(&packed[l0..]).unwrap();
        varint::write_u64(&mut broken, f0 + 1); // perturb symbol 0's freq
        broken.extend_from_slice(&packed[l0 + u0..]);
        assert!(matches!(decode(&broken), Err(CodecError::Corrupt(_))));
    }
}
