//! Zero-run-length coding for sparse word streams.
//!
//! The NDZIP-style baseline transposes residual bit planes into 64-bit
//! words, most of which are all-zero after decorrelation. This module packs
//! such streams as (zero-run, literal-run) pairs: runs of zero words are
//! replaced by a varint count, runs of non-zero words are stored verbatim
//! with a varint count prefix.
//!
//! # Examples
//!
//! ```
//! use masc_codec::rle;
//!
//! # fn main() -> Result<(), masc_codec::CodecError> {
//! let words = [0u64, 0, 0, 5, 6, 0, 0, 0, 0, 7];
//! let packed = rle::encode_words(&words);
//! assert_eq!(rle::decode_words(&packed)?, words);
//! # Ok(())
//! # }
//! ```

use crate::CodecError;
use masc_bitio::{bounded, varint};

/// Upper bound on a stream's claimed decompressed word count.
///
/// Zero runs decode to arbitrarily many output words from a few input
/// bytes, so the header's claim cannot be bounded by the input length; cap
/// it so an adversarial header cannot demand unbounded allocation.
pub const MAX_DECODE_WORDS: u64 = 1 << 24;

/// Encodes a `u64` word stream as alternating zero/literal runs.
///
/// Layout: varint word count, then repeated `[varint zero_run][varint
/// lit_run][lit_run × 8-byte LE words]` until all words are covered.
pub fn encode_words(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() + 8);
    varint::write_u64(&mut out, words.len() as u64);
    let mut i = 0usize;
    while i < words.len() {
        let zero_start = i;
        while i < words.len() && words[i] == 0 {
            i += 1;
        }
        varint::write_u64(&mut out, (i - zero_start) as u64);
        let lit_start = i;
        while i < words.len() && words[i] != 0 {
            i += 1;
        }
        varint::write_u64(&mut out, (i - lit_start) as u64);
        for &w in &words[lit_start..i] {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    out
}

/// Decodes a stream produced by [`encode_words`].
///
/// # Errors
///
/// Returns [`CodecError`] on truncation or if runs overshoot the declared
/// word count.
pub fn decode_words(packed: &[u8]) -> Result<Vec<u64>, CodecError> {
    let (count, mut pos) = varint::read_u64(packed)?;
    // Zero runs mean the word count is not bounded by the input length;
    // cap it so an adversarial header cannot demand unbounded allocation.
    if count > MAX_DECODE_WORDS {
        return Err(CodecError::Corrupt("implausible word count"));
    }
    let count = count as usize;
    let mut out = bounded::bounded_capacity("rle word buffer", count, MAX_DECODE_WORDS as usize)
        .map_err(|_| CodecError::Corrupt("implausible word count"))?;
    while out.len() < count {
        let (zeros, used) = varint::read_u64(&packed[pos..])?;
        pos += used;
        if zeros > (count - out.len()) as u64 {
            return Err(CodecError::Corrupt("zero run overshoots word count"));
        }
        out.resize(out.len() + zeros as usize, 0);
        let (lits, used) = varint::read_u64(&packed[pos..])?;
        pos += used;
        if lits > (count - out.len()) as u64 {
            return Err(CodecError::Corrupt("literal run overshoots word count"));
        }
        for _ in 0..lits {
            let bytes: [u8; 8] = packed
                .get(pos..pos + 8)
                .and_then(|s| s.try_into().ok())
                .ok_or(CodecError::Truncated)?;
            out.push(u64::from_le_bytes(bytes));
            pos += 8;
        }
        if zeros == 0 && lits == 0 && out.len() < count {
            return Err(CodecError::Corrupt("empty run pair"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let packed = encode_words(&[]);
        assert_eq!(decode_words(&packed).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn all_zero_is_tiny() {
        let words = vec![0u64; 100_000];
        let packed = encode_words(&words);
        assert!(
            packed.len() < 16,
            "all-zero packed to {} bytes",
            packed.len()
        );
        assert_eq!(decode_words(&packed).unwrap(), words);
    }

    #[test]
    fn all_nonzero_has_small_overhead() {
        let words: Vec<u64> = (1..=1000u64).collect();
        let packed = encode_words(&words);
        assert!(packed.len() <= words.len() * 8 + 16);
        assert_eq!(decode_words(&packed).unwrap(), words);
    }

    #[test]
    fn mixed_runs() {
        let mut words = Vec::new();
        for block in 0..50u64 {
            words.extend(std::iter::repeat_n(0, (block % 7) as usize));
            words.extend((0..block % 5).map(|i| i + 1));
        }
        let packed = encode_words(&words);
        assert_eq!(decode_words(&packed).unwrap(), words);
    }

    #[test]
    fn leading_and_trailing_literals() {
        let words = [9u64, 0, 0, 9];
        let packed = encode_words(&words);
        assert_eq!(decode_words(&packed).unwrap(), words);
    }

    #[test]
    fn truncated_literal_is_error() {
        let words = [1u64, 2, 3];
        let mut packed = encode_words(&words);
        packed.truncate(packed.len() - 3);
        assert!(decode_words(&packed).is_err());
    }

    #[test]
    fn overshooting_run_is_error() {
        // Hand-craft: count=1, zero_run=5.
        let mut packed = Vec::new();
        varint::write_u64(&mut packed, 1);
        varint::write_u64(&mut packed, 5);
        assert!(matches!(decode_words(&packed), Err(CodecError::Corrupt(_))));
    }
}
