//! General-purpose lossless coders built from scratch.
//!
//! The MASC paper compares its spatiotemporal compressor against
//! general-purpose baselines (GZIP = LZ77 + Huffman) and discusses both
//! dictionary coding (LZ77/LZW) and entropy coding (Huffman, ANS) in its
//! background section. This crate provides from-scratch implementations of
//! those building blocks so the `masc-baselines` crate can assemble faithful
//! comparator compressors without any third-party compression dependency:
//!
//! - [`huffman`] — canonical Huffman coding over byte alphabets.
//! - [`rans`] — range asymmetric numeral systems (rANS), order-0.
//! - [`range`] — an adaptive binary range coder (arithmetic-coding family).
//! - [`lzss`] — LZ77-family dictionary compression with greedy hash-chain
//!   matching.
//! - [`rle`] — zero-run-length coding for sparse bit-plane data.
//! - [`transform`] — delta / XOR decorrelation transforms.
//!
//! # Examples
//!
//! ```
//! use masc_codec::huffman;
//!
//! # fn main() -> Result<(), masc_codec::CodecError> {
//! let data = b"abracadabra abracadabra";
//! let packed = huffman::encode(data);
//! assert_eq!(huffman::decode(&packed)?, data);
//! # Ok(())
//! # }
//! ```

// Unit tests may assert with unwrap/expect; shipping code may not (see
// clippy.toml and masc-lint rule R1).
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod huffman;
pub mod lzss;
pub mod range;
pub mod rans;
pub mod rle;
pub mod transform;

use core::fmt;

/// Error produced when decoding a corrupt or truncated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before decoding finished.
    Truncated,
    /// The stream contents are inconsistent (bad header, invalid symbol, …).
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed stream truncated"),
            CodecError::Corrupt(what) => write!(f, "compressed stream corrupt: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<masc_bitio::BitReadError> for CodecError {
    fn from(_: masc_bitio::BitReadError) -> Self {
        CodecError::Truncated
    }
}

impl From<masc_bitio::varint::VarintError> for CodecError {
    fn from(e: masc_bitio::varint::VarintError) -> Self {
        match e {
            masc_bitio::varint::VarintError::Truncated => CodecError::Truncated,
            masc_bitio::varint::VarintError::Overflow => CodecError::Corrupt("varint overflow"),
        }
    }
}
