//! Decorrelation transforms for floating-point streams.
//!
//! Every floating-point compressor in this workspace follows the same
//! two-stage shape the paper describes: *decorrelate* (prediction /
//! differencing), then *encode* (entropy or bit packing). These helpers
//! implement the value-domain decorrelation primitives shared by the
//! baselines:
//!
//! - XOR against the previous value (Gorilla/Chimp family).
//! - Integer delta of the raw IEEE-754 bit patterns (FPZIP-style, using the
//!   monotone-bits property of same-sign floats).
//! - Bit-plane transposition of 64-value blocks (NDZIP-style "shuffle").
//!
//! All transforms are exact involutions (or have exact inverses) on the bit
//! patterns, so lossless round-trips hold for every `f64`, including NaNs,
//! infinities and signed zeros.

/// XORs each word with its predecessor (first word kept verbatim).
///
/// Applied to IEEE-754 bit patterns of a slowly-varying series, the output
/// is mostly leading zeros. In-place; the inverse is [`undo_xor_previous`].
pub fn xor_previous(words: &mut [u64]) {
    let mut prev = 0u64;
    for w in words.iter_mut() {
        let cur = *w;
        *w = cur ^ prev;
        prev = cur;
    }
}

/// Inverse of [`xor_previous`].
pub fn undo_xor_previous(words: &mut [u64]) {
    let mut prev = 0u64;
    for w in words.iter_mut() {
        *w ^= prev;
        prev = *w;
    }
}

/// Wrapping integer delta of consecutive words (first kept verbatim).
///
/// The inverse is [`undo_delta_previous`]. Wrapping arithmetic makes the
/// transform exact for every bit pattern.
pub fn delta_previous(words: &mut [u64]) {
    let mut prev = 0u64;
    for w in words.iter_mut() {
        let cur = *w;
        *w = cur.wrapping_sub(prev);
        prev = cur;
    }
}

/// Inverse of [`delta_previous`].
pub fn undo_delta_previous(words: &mut [u64]) {
    let mut prev = 0u64;
    for w in words.iter_mut() {
        *w = w.wrapping_add(prev);
        prev = *w;
    }
}

/// Number of words per transposition block.
pub const BLOCK: usize = 64;

/// Transposes a 64×64 bit matrix: output word `i` holds bit `i` of every
/// input word.
///
/// After decorrelation most high-order bit planes are all-zero; transposing
/// gathers them into all-zero words that [`crate::rle`] erases. Exact
/// involution: applying it twice restores the input.
///
/// # Panics
///
/// Panics if `block.len() != 64`.
pub fn transpose_bits(block: &mut [u64]) {
    assert_eq!(
        block.len(),
        BLOCK,
        "bit transposition needs exactly 64 words"
    );
    let mut out = [0u64; BLOCK];
    for (i, &w) in block.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            out[bit] |= 1u64 << i;
            w &= w - 1;
        }
    }
    block.copy_from_slice(&out);
}

/// Splits a float slice into its raw bit patterns.
pub fn to_bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Reassembles floats from raw bit patterns.
pub fn from_bits(words: &[u64]) -> Vec<f64> {
    words.iter().map(|&w| f64::from_bits(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weird_words() -> Vec<u64> {
        vec![
            0,
            u64::MAX,
            f64::NAN.to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            (-0.0f64).to_bits(),
            1.0f64.to_bits(),
            f64::MIN_POSITIVE.to_bits(),
            0x0123_4567_89AB_CDEF,
        ]
    }

    #[test]
    fn xor_round_trip() {
        let mut words = weird_words();
        let original = words.clone();
        xor_previous(&mut words);
        undo_xor_previous(&mut words);
        assert_eq!(words, original);
    }

    #[test]
    fn xor_of_similar_values_has_leading_zeros() {
        let a = 1.000000001f64.to_bits();
        let b = 1.000000002f64.to_bits();
        let mut words = vec![a, b];
        xor_previous(&mut words);
        assert!(words[1].leading_zeros() >= 30);
    }

    #[test]
    fn delta_round_trip() {
        let mut words = weird_words();
        let original = words.clone();
        delta_previous(&mut words);
        undo_delta_previous(&mut words);
        assert_eq!(words, original);
    }

    #[test]
    fn delta_wraps_cleanly() {
        let mut words = vec![0u64, u64::MAX, 0, 1];
        let original = words.clone();
        delta_previous(&mut words);
        undo_delta_previous(&mut words);
        assert_eq!(words, original);
    }

    #[test]
    fn transpose_is_involution() {
        let mut block: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let original = block.clone();
        transpose_bits(&mut block);
        assert_ne!(block, original);
        transpose_bits(&mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn transpose_moves_bit_planes() {
        // All words have only bit 5 set → after transpose, word 5 is all
        // ones and every other word is zero.
        let mut block = vec![1u64 << 5; 64];
        transpose_bits(&mut block);
        for (i, &w) in block.iter().enumerate() {
            if i == 5 {
                assert_eq!(w, u64::MAX);
            } else {
                assert_eq!(w, 0);
            }
        }
    }

    #[test]
    fn float_bits_round_trip() {
        let values = vec![0.0, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE, -2.75e300];
        let round = from_bits(&to_bits(&values));
        for (a, b) in values.iter().zip(&round) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
