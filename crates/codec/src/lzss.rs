//! LZSS dictionary compression (LZ77 family) with hash-chain matching.
//!
//! This is the dictionary half of the GZIP-style baseline: a 32 KiB sliding
//! window, minimum match length 3, maximum 258 (DEFLATE's limits), greedy
//! parsing with a bounded hash-chain search. Tokens are emitted as a flat
//! token stream; the `masc-baselines` GZIP-style compressor entropy-codes
//! that stream with Huffman, mirroring DEFLATE's architecture.
//!
//! # Examples
//!
//! ```
//! use masc_codec::lzss;
//!
//! # fn main() -> Result<(), masc_codec::CodecError> {
//! let data = b"a long string with a long string repeated".to_vec();
//! let tokens = lzss::compress(&data);
//! assert_eq!(lzss::decompress(&tokens)?, data);
//! # Ok(())
//! # }
//! ```

use crate::CodecError;

/// Sliding-window size (32 KiB, as in DEFLATE).
pub const WINDOW_SIZE: usize = 1 << 15;
/// Minimum back-reference length worth emitting.
pub const MIN_MATCH: usize = 3;
/// Maximum back-reference length.
pub const MAX_MATCH: usize = 258;
/// Hash-chain search depth (quality/speed trade-off).
const MAX_CHAIN: usize = 64;
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZSS token: either a literal byte or a back-reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte copied verbatim.
    Literal(u8),
    /// Copy `len` bytes starting `dist` bytes back from the current output
    /// position. `1 <= dist <= WINDOW_SIZE`, `MIN_MATCH <= len <= MAX_MATCH`.
    Match {
        /// Backwards distance in bytes.
        dist: u32,
        /// Match length in bytes.
        len: u32,
    },
}

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    debug_assert!(pos + 2 < data.len(), "hash3 reads 3 bytes at pos");
    let h = u32::from(data[pos])
        .wrapping_mul(506_832_829)
        .wrapping_add(u32::from(data[pos + 1]).wrapping_mul(2_654_435_761))
        .wrapping_add(u32::from(data[pos + 2]).wrapping_mul(40_503));
    (h >> (32 - HASH_BITS)) as usize & (HASH_SIZE - 1)
}

/// Greedy LZSS parse of `data` into a token stream.
pub fn compress(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 4 + 16);
    if data.len() < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i % WINDOW] = chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW_SIZE];
    let mut pos = 0usize;
    while pos < data.len() {
        if pos + MIN_MATCH > data.len() {
            tokens.push(Token::Literal(data[pos]));
            pos += 1;
            continue;
        }
        let h = hash3(data, pos);
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut candidate = head[h];
        let mut chain = 0usize;
        let limit = (data.len() - pos).min(MAX_MATCH);
        while candidate != usize::MAX && chain < MAX_CHAIN {
            let dist = pos - candidate;
            if dist > WINDOW_SIZE {
                break;
            }
            // Quick reject using the current best's tail byte.
            if best_len == 0 || data[candidate + best_len] == data[pos + best_len] {
                let mut l = 0usize;
                while l < limit && data[candidate + l] == data[pos + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l == limit {
                        break;
                    }
                }
            }
            candidate = prev[candidate % WINDOW_SIZE];
            chain += 1;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                dist: best_dist as u32,
                len: best_len as u32,
            });
            // Insert every covered position into the hash chains.
            let end = (pos + best_len).min(data.len() - MIN_MATCH + 1);
            for p in pos..end {
                let h = hash3(data, p);
                prev[p % WINDOW_SIZE] = head[h];
                head[h] = p;
            }
            pos += best_len;
        } else {
            tokens.push(Token::Literal(data[pos]));
            prev[pos % WINDOW_SIZE] = head[h];
            head[h] = pos;
            pos += 1;
        }
    }
    tokens
}

/// Expands a token stream back into bytes.
///
/// # Errors
///
/// Returns [`CodecError::Corrupt`] if a match refers before the start of the
/// output or has an out-of-range distance/length.
pub fn decompress(tokens: &[Token]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(tokens.len() * 2);
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { dist, len } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > WINDOW_SIZE || dist > out.len() {
                    return Err(CodecError::Corrupt("lzss distance out of range"));
                }
                if !(MIN_MATCH..=MAX_MATCH).contains(&len) {
                    return Err(CodecError::Corrupt("lzss length out of range"));
                }
                // Byte-by-byte copy: overlapping matches (dist < len) must
                // replicate already-written bytes, RLE-style.
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<Token> {
        let tokens = compress(data);
        assert_eq!(decompress(&tokens).unwrap(), data, "round trip failed");
        tokens
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn no_repetition_all_literals() {
        let data: Vec<u8> = (0u16..256).map(|i| i as u8).collect();
        let tokens = round_trip(&data);
        assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
    }

    #[test]
    fn repeated_text_finds_matches() {
        let data = b"the quick brown fox. the quick brown fox. the quick brown fox.".to_vec();
        let tokens = round_trip(&data);
        let matched: u32 = tokens
            .iter()
            .filter_map(|t| match t {
                Token::Match { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        // The two repeats (2 × 21 bytes) should be covered by matches.
        assert!(matched >= 40, "expected back-references, got {tokens:?}");
    }

    #[test]
    fn run_of_identical_bytes_overlapping_match() {
        let data = vec![0xAAu8; 10_000];
        let tokens = round_trip(&data);
        // A run compresses to a literal plus overlapping matches.
        assert!(
            tokens.len() < 60,
            "runs should compress, got {} tokens",
            tokens.len()
        );
    }

    #[test]
    fn long_distance_within_window() {
        let mut data = b"unique-prefix-block".to_vec();
        data.extend(vec![b'x'; WINDOW_SIZE - 100]);
        data.extend_from_slice(b"unique-prefix-block");
        round_trip(&data);
    }

    #[test]
    fn repeats_beyond_window_are_not_matched_wrongly() {
        let mut data = b"needle".to_vec();
        data.extend((0..WINDOW_SIZE + 500).map(|i| (i % 251) as u8));
        data.extend_from_slice(b"needle");
        round_trip(&data);
    }

    #[test]
    fn max_match_cap_respected() {
        let data = vec![7u8; MAX_MATCH * 5];
        let tokens = compress(&data);
        for t in &tokens {
            if let Token::Match { len, .. } = t {
                assert!(*len as usize <= MAX_MATCH);
            }
        }
        assert_eq!(decompress(&tokens).unwrap(), data);
    }

    #[test]
    fn corrupt_distance_rejected() {
        let tokens = [Token::Match { dist: 5, len: 4 }];
        assert!(decompress(&tokens).is_err());
        let tokens = [Token::Literal(1), Token::Match { dist: 0, len: 4 }];
        assert!(decompress(&tokens).is_err());
    }

    #[test]
    fn corrupt_length_rejected() {
        let tokens = [
            Token::Literal(1),
            Token::Literal(2),
            Token::Match { dist: 1, len: 2 },
        ];
        assert!(decompress(&tokens).is_err());
        let tokens = [
            Token::Literal(1),
            Token::Match {
                dist: 1,
                len: MAX_MATCH as u32 + 1,
            },
        ];
        assert!(decompress(&tokens).is_err());
    }

    #[test]
    fn float_like_binary_data_round_trips() {
        // Slowly-varying doubles, like a Jacobian value stream.
        let mut data = Vec::new();
        let mut x = 1.0f64;
        for _ in 0..4000 {
            x += 1e-9;
            data.extend_from_slice(&x.to_le_bytes());
        }
        round_trip(&data);
    }
}
