//! Canonical Huffman coding over the byte alphabet.
//!
//! Code lengths are limited to [`MAX_CODE_LEN`] bits (package-merge style
//! length limiting via frequency flattening), and only the 256 code lengths
//! are stored in the header — codes are reconstructed canonically on decode,
//! exactly as DEFLATE does.
//!
//! # Examples
//!
//! ```
//! use masc_codec::huffman;
//!
//! # fn main() -> Result<(), masc_codec::CodecError> {
//! let data = vec![7u8; 1000];
//! let packed = huffman::encode(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(huffman::decode(&packed)?, data);
//! # Ok(())
//! # }
//! ```

use crate::CodecError;
use masc_bitio::{varint, BitReader, BitWriter};

/// Maximum Huffman code length in bits.
pub const MAX_CODE_LEN: u32 = 15;

/// Computes Huffman code lengths for the given symbol frequencies.
///
/// Returns one length per symbol; zero-frequency symbols get length 0.
/// Lengths are capped at [`MAX_CODE_LEN`] by iteratively flattening the
/// frequency distribution and rebuilding the tree.
pub fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let mut freqs = freqs.to_vec();
    loop {
        let lengths = unrestricted_code_lengths(&freqs);
        if lengths.iter().all(|&l| l <= MAX_CODE_LEN) {
            return lengths;
        }
        // Flatten: halving (and clamping at 1) shrinks the dynamic range,
        // which shortens the deepest leaves.
        for f in freqs.iter_mut().filter(|f| **f > 0) {
            *f = (*f / 2).max(1);
        }
    }
}

/// Plain Huffman tree construction producing code lengths (no length cap).
fn unrestricted_code_lengths(freqs: &[u64]) -> Vec<u32> {
    #[derive(Clone, Copy)]
    struct Node {
        // Index of left/right child in the arena, or usize::MAX for leaves.
        left: usize,
        right: usize,
        symbol: usize,
    }

    let mut arena: Vec<Node> = Vec::new();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    for (sym, &f) in freqs.iter().enumerate() {
        if f > 0 {
            arena.push(Node {
                left: usize::MAX,
                right: usize::MAX,
                symbol: sym,
            });
            heap.push(std::cmp::Reverse((f, arena.len() - 1)));
        }
    }
    let mut lengths = vec![0u32; freqs.len()];
    match heap.len() {
        0 => return lengths,
        1 => {
            // A single distinct symbol still needs a 1-bit code.
            if let Some(std::cmp::Reverse((_, idx))) = heap.pop() {
                lengths[arena[idx].symbol] = 1;
            }
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let (Some(std::cmp::Reverse((fa, a))), Some(std::cmp::Reverse((fb, b)))) =
            (heap.pop(), heap.pop())
        else {
            break;
        };
        arena.push(Node {
            left: a,
            right: b,
            symbol: usize::MAX,
        });
        heap.push(std::cmp::Reverse((fa + fb, arena.len() - 1)));
    }
    let Some(std::cmp::Reverse((_, root))) = heap.pop() else {
        return lengths;
    };
    // Iterative DFS assigning depths.
    let mut stack = vec![(root, 0u32)];
    while let Some((idx, depth)) = stack.pop() {
        let node = arena[idx];
        if node.left == usize::MAX {
            lengths[node.symbol] = depth;
        } else {
            stack.push((node.left, depth + 1));
            stack.push((node.right, depth + 1));
        }
    }
    lengths
}

/// Assigns canonical codes from code lengths.
///
/// Symbols are ordered by (length, symbol value); codes are consecutive
/// integers within each length, shifted as length increases.
pub fn canonical_codes(lengths: &[u32]) -> Vec<u64> {
    // Every in-repo caller caps lengths at MAX_CODE_LEN first; clamp here
    // too so hostile lengths fed directly to this pub fn cannot size the
    // per-length tables at up to u32::MAX entries.
    let max_len = lengths.iter().copied().max().unwrap_or(0).min(MAX_CODE_LEN);
    let mut bl_count = vec![0u64; max_len as usize + 1];
    for &l in lengths {
        // Lengths beyond the clamp get no code (they are invalid input).
        if l > 0 && l <= max_len {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u64; max_len as usize + 2];
    let mut code = 0u64;
    for bits in 1..=max_len as usize {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    let mut codes = vec![0u64; lengths.len()];
    for (sym, &l) in lengths.iter().enumerate() {
        if l > 0 && l <= max_len {
            codes[sym] = next_code[l as usize];
            next_code[l as usize] += 1;
        }
    }
    codes
}

/// A decoding table for canonical Huffman codes.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `(first_code, first_index, count)` per code length 1..=max.
    per_len: Vec<(u64, usize, u64)>,
    /// Symbols ordered by (length, symbol).
    symbols: Vec<u16>,
}

impl Decoder {
    /// Builds a decoder from per-symbol code lengths.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] if the lengths do not form a valid
    /// prefix code (oversubscribed Kraft sum).
    pub fn from_lengths(lengths: &[u32]) -> Result<Self, CodecError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len > MAX_CODE_LEN {
            return Err(CodecError::Corrupt("huffman code length too long"));
        }
        let mut order: Vec<u16> = (0..lengths.len() as u16)
            .filter(|&s| lengths[s as usize] > 0)
            .collect();
        order.sort_by_key(|&s| (lengths[s as usize], s));
        let codes = canonical_codes(lengths);
        // Kraft inequality check.
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_CODE_LEN - l))
            .sum();
        if kraft > 1 << MAX_CODE_LEN {
            return Err(CodecError::Corrupt("oversubscribed huffman code"));
        }
        let mut per_len = Vec::with_capacity(max_len as usize);
        let mut idx = 0usize;
        for bits in 1..=max_len {
            let count = order
                .iter()
                .skip(idx)
                .take_while(|&&s| lengths[s as usize] == bits)
                .count() as u64;
            let first_code = if count > 0 {
                codes[order[idx] as usize]
            } else {
                0
            };
            per_len.push((first_code, idx, count));
            idx += count as usize;
        }
        Ok(Self {
            per_len,
            symbols: order,
        })
    }

    /// Decodes one symbol from the reader.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] on stream exhaustion,
    /// [`CodecError::Corrupt`] if no code matches.
    pub fn decode_symbol(&self, reader: &mut BitReader<'_>) -> Result<u16, CodecError> {
        let mut code = 0u64;
        for (first_code, first_index, count) in self.per_len.iter().copied() {
            code = (code << 1) | u64::from(reader.read_bit()?);
            if count > 0 && code >= first_code && code < first_code + count {
                return Ok(self.symbols[first_index + (code - first_code) as usize]);
            }
        }
        Err(CodecError::Corrupt("invalid huffman code"))
    }
}

/// Compresses `data` with a one-shot canonical Huffman code.
///
/// Stream layout: varint original length; 256 code lengths packed two per
/// byte (4 bits each, lengths ≤ 15); then the bit-packed payload.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut freqs = [0u64; 256];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths);

    let mut header = Vec::with_capacity(8 + 128);
    varint::write_u64(&mut header, data.len() as u64);
    let mut w = BitWriter::with_capacity(data.len() / 2 + 160);
    for chunk in lengths.chunks(2) {
        let hi = chunk[0] as u64;
        let lo = *chunk.get(1).unwrap_or(&0) as u64;
        w.write_bits((hi << 4) | lo, 8);
    }
    for &b in data {
        w.write_bits(codes[b as usize], lengths[b as usize]);
    }
    header.extend_from_slice(&w.into_bytes());
    header
}

/// Decompresses a stream produced by [`encode`].
///
/// # Errors
///
/// Returns [`CodecError`] if the stream is truncated or inconsistent.
pub fn decode(packed: &[u8]) -> Result<Vec<u8>, CodecError> {
    let (orig_len, used) = varint::read_u64(packed)?;
    let mut reader = BitReader::new(&packed[used..]);
    let mut lengths = vec![0u32; 256];
    for i in 0..128 {
        let byte = reader.read_bits(8)?;
        lengths[2 * i] = (byte >> 4) as u32;
        lengths[2 * i + 1] = (byte & 0xF) as u32;
    }
    if orig_len == 0 {
        return Ok(Vec::new());
    }
    // Every symbol costs at least one payload bit, so a claimed length
    // beyond the remaining bits cannot be satisfied; reject it before
    // trusting it with an allocation.
    let payload_bits = ((packed.len() - used).saturating_sub(128) as u64).saturating_mul(8);
    if orig_len > payload_bits {
        return Err(CodecError::Truncated);
    }
    let decoder = Decoder::from_lengths(&lengths)?;
    let mut out = Vec::with_capacity(orig_len as usize);
    for _ in 0..orig_len {
        out.push(decoder.decode_symbol(&mut reader)? as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trip() {
        let packed = encode(&[]);
        assert_eq!(decode(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_symbol_round_trip() {
        let data = vec![42u8; 500];
        let packed = encode(&data);
        // 500 symbols at 1 bit each ≈ 63 bytes payload + 129-byte header.
        assert!(packed.len() < 250, "packed {} bytes", packed.len());
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn two_symbols_round_trip() {
        let mut data = vec![0u8; 100];
        data.extend(vec![255u8; 300]);
        let packed = encode(&data);
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn all_bytes_round_trip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let packed = encode(&data);
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90 % zeros, 10 % mixed — entropy well below 8 bits/byte.
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            if i % 10 == 0 {
                data.push((i % 251) as u8);
            } else {
                data.push(0);
            }
        }
        let packed = encode(&data);
        assert!(
            packed.len() < data.len() / 2,
            "packed {} of {}",
            packed.len(),
            data.len()
        );
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn lengths_respect_cap() {
        // Exponential frequencies would produce very deep trees uncapped.
        let freqs: Vec<u64> = (0..64u32).map(|i| 1u64 << i.min(62)).collect();
        let lengths = code_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l <= MAX_CODE_LEN));
        // Still a valid prefix code.
        Decoder::from_lengths(&lengths).unwrap();
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = [5u64, 9, 12, 13, 16, 45];
        let lengths = code_lengths(&freqs);
        let codes = canonical_codes(&lengths);
        for a in 0..freqs.len() {
            for b in 0..freqs.len() {
                if a == b {
                    continue;
                }
                let (la, lb) = (lengths[a], lengths[b]);
                if la <= lb {
                    // code a must not be a prefix of code b
                    assert_ne!(codes[a], codes[b] >> (lb - la), "{a} prefixes {b}");
                }
            }
        }
    }

    #[test]
    fn truncated_stream_is_error() {
        let data = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut packed = encode(&data);
        packed.truncate(packed.len() - 1);
        assert!(decode(&packed).is_err());
    }

    #[test]
    fn corrupt_header_is_error() {
        // Claim a huge length with an empty payload.
        let mut packed = Vec::new();
        varint::write_u64(&mut packed, 1_000_000);
        packed.extend(vec![0u8; 128]); // all-zero lengths: no valid code
        assert!(decode(&packed).is_err());
    }
}
