//! Registry and cache conformance: name lookups, bit-exact generator
//! determinism (the benchmarks' numbers must be reproducible), and the
//! cache's corrupt-entry fallback.

use masc_datasets::cache::{dataset_to_bytes, load_or_generate};
use masc_datasets::{table1_circuits, table2_datasets};

#[test]
fn registry_names_are_unique_and_resolvable() {
    // A name may appear in both tables (the paper reuses circuits across
    // Table 1 and Table 2) but must be unique within each table.
    for (table, specs) in [("table1", table1_circuits()), ("table2", table2_datasets())] {
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate dataset names in {table}");
    }

    for wanted in ["add20", "ram2k"] {
        assert!(
            table1_circuits()
                .iter()
                .chain(table2_datasets().iter())
                .any(|s| s.name == wanted),
            "registry lost dataset {wanted:?}"
        );
    }
}

#[test]
fn generation_is_bit_deterministic() {
    let spec = &table2_datasets()[0];
    let a = spec.generate(0.05).expect("generate");
    let b = spec.generate(0.05).expect("generate");
    // Compare through the canonical serialization: covers patterns, both
    // series, and step sizes in one shot, bit for bit.
    assert_eq!(
        dataset_to_bytes(&a),
        dataset_to_bytes(&b),
        "{} generation is not deterministic",
        spec.name
    );
}

#[test]
fn cache_misses_then_hits_then_survives_corruption() {
    let dir = std::env::temp_dir().join(format!("masc-ds-conform-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let specs = table2_datasets();
    let spec = &specs[0];
    let make_count = std::cell::Cell::new(0u32);
    let make = || {
        make_count.set(make_count.get() + 1);
        spec.generate(0.03).expect("generate")
    };

    // Miss: first load generates and writes the cache file.
    let first = load_or_generate(&dir, spec.name, 0.03, make).expect("first load");
    assert_eq!(make_count.get(), 1);

    // Hit: second load must not regenerate, and must return the same data.
    let second = load_or_generate(&dir, spec.name, 0.03, || {
        make_count.set(make_count.get() + 1);
        spec.generate(0.03).expect("generate")
    })
    .expect("second load");
    assert_eq!(make_count.get(), 1, "cache hit must not regenerate");
    assert_eq!(dataset_to_bytes(&first), dataset_to_bytes(&second));

    // Corruption: a truncated cache entry silently falls back to
    // regeneration and repairs the file.
    let file = dir.join(format!("{}-{:.4}.masc", spec.name, 0.03));
    let bytes = std::fs::read(&file).expect("cache file exists");
    std::fs::write(&file, &bytes[..bytes.len() / 3]).expect("truncate cache file");
    let third = load_or_generate(&dir, spec.name, 0.03, || {
        make_count.set(make_count.get() + 1);
        spec.generate(0.03).expect("generate")
    })
    .expect("third load");
    assert_eq!(make_count.get(), 2, "corrupt entry must regenerate");
    assert_eq!(dataset_to_bytes(&first), dataset_to_bytes(&third));
    assert_eq!(
        std::fs::read(&file).expect("repaired cache file"),
        dataset_to_bytes(&third),
        "regeneration must repair the cache file"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generate_cached_matches_uncached() {
    let dir = std::env::temp_dir().join(format!("masc-ds-cached-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = &table2_datasets()[1];
    let cached = spec.generate_cached(0.03, &dir);
    let direct = spec.generate(0.03).expect("generate");
    assert_eq!(dataset_to_bytes(&cached), dataset_to_bytes(&direct));
    let _ = std::fs::remove_dir_all(&dir);
}
