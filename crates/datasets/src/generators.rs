//! Parametric circuit generators.
//!
//! The paper's workloads are proprietary (CHIP_xx netlists) or distributed
//! as raw matrices (add20, mem_plus, MOS_Tx). These generators build
//! circuits of the same *element classes* (BJT chips, MOS digital blocks,
//! RC parasitic networks) at configurable sizes, so every experiment runs
//! on data with the right structure: fixed MNA patterns, stamp symmetry,
//! strong temporal correlation, and a linear/nonlinear element mix.

use masc_circuit::devices::{
    Bjt, Capacitor, CurrentSource, Device, Diode, MosPolarity, Mosfet, Resistor, VoltageSource,
};
use masc_circuit::{Circuit, Node, Waveform};

/// Deterministic value jitter so generated elements are not all identical
/// (keeps the compressor honest). Returns a factor in `[1−spread, 1+spread]`.
fn jitter(seed: &mut u64, spread: f64) -> f64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let unit = ((*seed >> 33) as f64) / (1u64 << 31) as f64; // [0, 1)
    1.0 + spread * (2.0 * unit - 1.0)
}

/// A pulse suitable for digital-style drive at the given time scale.
fn clock(period: f64, level: f64) -> Waveform {
    Waveform::Pulse {
        v1: 0.0,
        v2: level,
        td: period * 0.05,
        tr: period * 0.05,
        tf: period * 0.05,
        pw: period * 0.4,
        per: period,
    }
}

/// An RC ladder: `V — (R — node — C)ⁿ`. Pure linear circuit (the `RC_xx`
/// rows of paper Table 1).
pub fn rc_ladder(sections: usize, period: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let mut seed = 0x5EED_0001u64;
    let input = ckt.node("in");
    ckt.add(Device::VoltageSource(VoltageSource::new(
        "V1",
        input.unknown(),
        None,
        clock(period, 1.0),
    )))
    .expect("fresh circuit");
    let mut prev = input;
    for i in 0..sections {
        let node = ckt.node(&format!("n{i}"));
        ckt.add(Device::Resistor(Resistor::new(
            format!("R{i}"),
            prev.unknown(),
            node.unknown(),
            100.0 * jitter(&mut seed, 0.3),
        )))
        .expect("unique name");
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("C{i}"),
            node.unknown(),
            None,
            1e-12 * jitter(&mut seed, 0.3),
        )))
        .expect("unique name");
        prev = node;
    }
    ckt
}

/// An RC mesh: a `w×h` resistor grid with node capacitors, driven at one
/// corner — a parasitic-extraction-style network.
pub fn rc_mesh(w: usize, h: usize, period: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let mut seed = 0x5EED_0002u64;
    let input = ckt.node("in");
    ckt.add(Device::VoltageSource(VoltageSource::new(
        "V1",
        input.unknown(),
        None,
        clock(period, 1.0),
    )))
    .expect("fresh circuit");
    let node = |ckt: &mut Circuit, x: usize, y: usize| ckt.node(&format!("g{x}_{y}"));
    let first = node(&mut ckt, 0, 0);
    ckt.add(Device::Resistor(Resistor::new(
        "Rin",
        input.unknown(),
        first.unknown(),
        50.0,
    )))
    .expect("unique name");
    for y in 0..h {
        for x in 0..w {
            let here = node(&mut ckt, x, y);
            ckt.add(Device::Capacitor(Capacitor::new(
                format!("C{x}_{y}"),
                here.unknown(),
                None,
                0.5e-12 * jitter(&mut seed, 0.4),
            )))
            .expect("unique name");
            if x + 1 < w {
                let right = node(&mut ckt, x + 1, y);
                ckt.add(Device::Resistor(Resistor::new(
                    format!("Rx{x}_{y}"),
                    here.unknown(),
                    right.unknown(),
                    120.0 * jitter(&mut seed, 0.4),
                )))
                .expect("unique name");
            }
            if y + 1 < h {
                let down = node(&mut ckt, x, y + 1);
                ckt.add(Device::Resistor(Resistor::new(
                    format!("Ry{x}_{y}"),
                    here.unknown(),
                    down.unknown(),
                    120.0 * jitter(&mut seed, 0.4),
                )))
                .expect("unique name");
            }
        }
    }
    // Light load to ground at the far corner for a defined DC point.
    let far = node(&mut ckt, w - 1, h - 1);
    ckt.add(Device::Resistor(Resistor::new(
        "Rload",
        far.unknown(),
        None,
        1e4,
    )))
    .expect("unique name");
    ckt
}

/// A diode–resistor "adder-like" cell chain (the `add20` analogue): each
/// cell clips a ramped signal with a diode and feeds the next cell.
pub fn diode_cell_chain(cells: usize, period: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let mut seed = 0x5EED_0003u64;
    let input = ckt.node("in");
    ckt.add(Device::VoltageSource(VoltageSource::new(
        "V1",
        input.unknown(),
        None,
        Waveform::Sin {
            vo: 0.4,
            va: 0.5,
            freq: 1.0 / period,
            td: 0.0,
            theta: 0.0,
        },
    )))
    .expect("fresh circuit");
    let mut prev = input;
    for i in 0..cells {
        let mid = ckt.node(&format!("m{i}"));
        let node = ckt.node(&format!("d{i}"));
        ckt.add(Device::Resistor(Resistor::new(
            format!("R{i}"),
            prev.unknown(),
            mid.unknown(),
            500.0 * jitter(&mut seed, 0.2),
        )))
        .expect("unique name");
        // Series diode between two internal nodes: its stamp is a varying
        // symmetric 2×2 block — the structure the paper's matrix-stamp
        // predictor exploits.
        let mut d = Diode::new(format!("D{i}"), mid.unknown(), node.unknown());
        d.cj0 = 2e-12 * jitter(&mut seed, 0.3);
        ckt.add(Device::Diode(d)).expect("unique name");
        ckt.add(Device::Resistor(Resistor::new(
            format!("Rb{i}"),
            node.unknown(),
            None,
            5e3,
        )))
        .expect("unique name");
        prev = node;
    }
    ckt
}

/// A chain of resistively-loaded BJT common-emitter stages with diffusion
/// capacitance (the `CHIP_xx` BJT analogue).
pub fn bjt_amp_chain(stages: usize, period: f64) -> Circuit {
    // Cap the cascade depth: each stage has gain, and the small-signal
    // chain gain (hence DC conditioning) grows exponentially with depth.
    const MAX_DEPTH: usize = 6;
    let mut ckt = Circuit::new();
    let mut seed = 0x5EED_0004u64;
    let vcc = ckt.node("vcc");
    ckt.add(Device::VoltageSource(VoltageSource::new(
        "VCC",
        vcc.unknown(),
        None,
        Waveform::Dc(5.0),
    )))
    .expect("fresh circuit");
    // Reassigned at i = 0 before first use (i % MAX_DEPTH == 0).
    let mut drive = Node::GROUND;
    for i in 0..stages {
        if i % MAX_DEPTH == 0 {
            let input = ckt.node(&format!("in{i}"));
            ckt.add(Device::VoltageSource(VoltageSource::new(
                format!("VIN{i}"),
                input.unknown(),
                None,
                Waveform::Sin {
                    vo: 0.65,
                    va: 0.005,
                    freq: (2.0 + (i % 5) as f64) / period,
                    td: period * 0.02 * (i % 7) as f64,
                    theta: 0.0,
                },
            )))
            .expect("unique name");
            drive = input;
        }
        let b = ckt.node(&format!("b{i}"));
        let c = ckt.node(&format!("c{i}"));
        ckt.add(Device::Resistor(Resistor::new(
            format!("RB{i}"),
            drive.unknown(),
            b.unknown(),
            1e3 * jitter(&mut seed, 0.2),
        )))
        .expect("unique name");
        ckt.add(Device::Resistor(Resistor::new(
            format!("RC{i}"),
            vcc.unknown(),
            c.unknown(),
            2e3 * jitter(&mut seed, 0.2),
        )))
        .expect("unique name");
        let q = Bjt::new(format!("Q{i}"), c.unknown(), b.unknown(), None)
            .with_transit_times(0.5e-9, 5e-9);
        ckt.add(Device::Bjt(q)).expect("unique name");
        // Level-shift the collector down for the next base through a
        // divider so every stage stays in forward-active.
        let shifted = ckt.node(&format!("s{i}"));
        ckt.add(Device::Resistor(Resistor::new(
            format!("RS{i}"),
            c.unknown(),
            shifted.unknown(),
            20e3,
        )))
        .expect("unique name");
        ckt.add(Device::Resistor(Resistor::new(
            format!("RG{i}"),
            shifted.unknown(),
            None,
            4e3,
        )))
        .expect("unique name");
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("CL{i}"),
            c.unknown(),
            None,
            1e-12 * jitter(&mut seed, 0.3),
        )))
        .expect("unique name");
        drive = shifted;
    }
    ckt
}

/// NMOS inverter logic (the `MOS_Tx` / `smult20` digital analogue).
///
/// `stages` inverters are arranged as parallel chains of at most 24
/// stages, each chain driven by its own phase-shifted clock. Bounding the
/// depth matters physically: a very deep chain's DC bias converges along
/// its length to the metastable mid-rail point, where the small-signal
/// gain — and the Jacobian's condition number — grows exponentially with
/// depth. Real digital blocks are wide, not thousands of gates deep.
pub fn mos_inverter_chain(stages: usize, period: f64) -> Circuit {
    const MAX_DEPTH: usize = 24;
    let mut ckt = Circuit::new();
    let mut seed = 0x5EED_0005u64;
    let vdd = ckt.node("vdd");
    ckt.add(Device::VoltageSource(VoltageSource::new(
        "VDD",
        vdd.unknown(),
        None,
        Waveform::Dc(3.3),
    )))
    .expect("fresh circuit");
    let chains = stages.div_ceil(MAX_DEPTH);
    let mut built = 0usize;
    for chain in 0..chains {
        let input = ckt.node(&format!("in{chain}"));
        ckt.add(Device::VoltageSource(VoltageSource::new(
            format!("VIN{chain}"),
            input.unknown(),
            None,
            Waveform::Pulse {
                v1: 0.0,
                v2: 3.3,
                td: period * 0.05 + period * (chain % 9) as f64 / 9.0,
                tr: period * 0.05,
                tf: period * 0.05,
                pw: period * 0.4,
                per: period,
            },
        )))
        .expect("unique name");
        let mut drive = input;
        let depth = MAX_DEPTH.min(stages - built);
        for _ in 0..depth {
            let i = built;
            built += 1;
            let out = ckt.node(&format!("o{i}"));
            ckt.add(Device::Resistor(Resistor::new(
                format!("RL{i}"),
                vdd.unknown(),
                out.unknown(),
                8e3 * jitter(&mut seed, 0.2),
            )))
            .expect("unique name");
            let mut m = Mosfet::new(
                format!("M{i}"),
                out.unknown(),
                drive.unknown(),
                None,
                MosPolarity::Nmos,
            );
            m.kp = 1.5e-4 * jitter(&mut seed, 0.2);
            m.cgs = 20e-15 * jitter(&mut seed, 0.3);
            m.cgd = 8e-15 * jitter(&mut seed, 0.3);
            ckt.add(Device::Mosfet(m)).expect("unique name");
            ckt.add(Device::Capacitor(Capacitor::new(
                format!("CW{i}"),
                out.unknown(),
                None,
                30e-15,
            )))
            .expect("unique name");
            drive = out;
        }
    }
    ckt
}

/// A RAM-like array (the `ram2k`/`mem_plus` analogue): `cells` bit cells,
/// each an NMOS pass transistor + storage cap on a shared bitline,
/// selected by staggered wordline pulses.
pub fn ram_array(cells: usize, period: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let mut seed = 0x5EED_0006u64;
    let bitline = ckt.node("bl");
    ckt.add(Device::VoltageSource(VoltageSource::new(
        "VBL",
        bitline.unknown(),
        None,
        clock(period, 3.3),
    )))
    .expect("fresh circuit");
    ckt.add(Device::Resistor(Resistor::new(
        "RBL",
        bitline.unknown(),
        None,
        50e3,
    )))
    .expect("unique name");
    for i in 0..cells {
        let wl = ckt.node(&format!("wl{i}"));
        let cell = ckt.node(&format!("cell{i}"));
        // Staggered wordline drive.
        ckt.add(Device::VoltageSource(VoltageSource::new(
            format!("VW{i}"),
            wl.unknown(),
            None,
            Waveform::Pulse {
                v1: 0.0,
                v2: 3.3,
                td: period * (i % 7) as f64 / 7.0,
                tr: period * 0.02,
                tf: period * 0.02,
                pw: period * 0.2,
                per: period,
            },
        )))
        .expect("unique name");
        let mut m = Mosfet::new(
            format!("MP{i}"),
            bitline.unknown(),
            wl.unknown(),
            cell.unknown(),
            MosPolarity::Nmos,
        );
        m.cgs = 5e-15;
        m.cgd = 5e-15;
        m.kp = 1e-4 * jitter(&mut seed, 0.2);
        ckt.add(Device::Mosfet(m)).expect("unique name");
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("CS{i}"),
            cell.unknown(),
            None,
            25e-15 * jitter(&mut seed, 0.2),
        )))
        .expect("unique name");
        ckt.add(Device::Resistor(Resistor::new(
            format!("RLK{i}"),
            cell.unknown(),
            None,
            1e7,
        )))
        .expect("unique name");
    }
    ckt
}

/// A multiplier-like MOS array (the `smult20` analogue): a `rows×cols`
/// grid of inverting stages with row/column interconnect resistance.
pub fn mos_mult_array(rows: usize, cols: usize, period: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let mut seed = 0x5EED_0007u64;
    let vdd = ckt.node("vdd");
    ckt.add(Device::VoltageSource(VoltageSource::new(
        "VDD",
        vdd.unknown(),
        None,
        Waveform::Dc(3.3),
    )))
    .expect("fresh circuit");
    // Row drive signals with different phases.
    let mut drives = Vec::new();
    for r in 0..rows {
        let d = ckt.node(&format!("row{r}"));
        ckt.add(Device::VoltageSource(VoltageSource::new(
            format!("VR{r}"),
            d.unknown(),
            None,
            Waveform::Pulse {
                v1: 0.0,
                v2: 3.3,
                td: period * r as f64 / rows as f64 / 2.0,
                tr: period * 0.03,
                tf: period * 0.03,
                pw: period * 0.35,
                per: period,
            },
        )))
        .expect("unique name");
        drives.push(d);
    }
    for r in 0..rows {
        let mut gate = drives[r];
        for c in 0..cols {
            // Re-drive the gate chain periodically: unbounded logic depth
            // makes the DC bias exponentially ill-conditioned (see
            // `mos_inverter_chain`).
            if c > 0 && c % 8 == 0 {
                gate = drives[(r + c / 8) % rows];
            }
            let out = ckt.node(&format!("m{r}_{c}"));
            ckt.add(Device::Resistor(Resistor::new(
                format!("RL{r}_{c}"),
                vdd.unknown(),
                out.unknown(),
                10e3 * jitter(&mut seed, 0.25),
            )))
            .expect("unique name");
            let mut m = Mosfet::new(
                format!("M{r}_{c}"),
                out.unknown(),
                gate.unknown(),
                None,
                MosPolarity::Nmos,
            );
            m.kp = 1.2e-4 * jitter(&mut seed, 0.25);
            m.cgs = 15e-15;
            m.cgd = 6e-15;
            ckt.add(Device::Mosfet(m)).expect("unique name");
            // Column coupling to the neighbor row's same column.
            if r + 1 < rows {
                let below = ckt.node(&format!("m{}_{c}", r + 1));
                ckt.add(Device::Capacitor(Capacitor::new(
                    format!("CC{r}_{c}"),
                    out.unknown(),
                    below.unknown(),
                    2e-15,
                )))
                .expect("unique name");
            }
            ckt.add(Device::Capacitor(Capacitor::new(
                format!("CG{r}_{c}"),
                out.unknown(),
                None,
                20e-15,
            )))
            .expect("unique name");
            gate = out;
        }
    }
    // A small current-source load models static leakage paths.
    let corner = ckt.node(&format!("m{}_{}", rows - 1, cols - 1));
    ckt.add(Device::CurrentSource(CurrentSource::new(
        "ILK",
        corner.unknown(),
        None,
        Waveform::Dc(1e-9),
    )))
    .expect("unique name");
    ckt
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_circuit::transient::{transient, NullSink, TranOptions};

    fn smoke(mut ckt: Circuit, period: f64) {
        let mut sys = ckt.elaborate().expect("elaborates");
        let opts = TranOptions::new(period, period / 40.0);
        let result = transient(&ckt, &mut sys, &opts, &mut NullSink).expect("transient runs");
        assert_eq!(result.stats.steps, 40);
        // All states finite.
        for x in &result.states {
            assert!(x.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn rc_ladder_runs() {
        smoke(rc_ladder(20, 1e-6), 1e-6);
    }

    #[test]
    fn rc_mesh_runs() {
        smoke(rc_mesh(5, 4, 1e-6), 1e-6);
    }

    #[test]
    fn diode_chain_runs() {
        smoke(diode_cell_chain(10, 1e-5), 1e-5);
    }

    #[test]
    fn bjt_chain_runs() {
        smoke(bjt_amp_chain(5, 1e-5), 1e-5);
    }

    #[test]
    fn mos_inverter_chain_runs() {
        smoke(mos_inverter_chain(10, 1e-6), 1e-6);
    }

    #[test]
    fn ram_array_runs() {
        smoke(ram_array(8, 1e-6), 1e-6);
    }

    #[test]
    fn mos_mult_array_runs() {
        smoke(mos_mult_array(3, 4, 1e-6), 1e-6);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = rc_ladder(5, 1e-6);
        let b = rc_ladder(5, 1e-6);
        assert_eq!(a.devices().len(), b.devices().len());
        for (da, db) in a.devices().iter().zip(b.devices()) {
            assert_eq!(da, db);
        }
    }

    #[test]
    fn element_counts_scale() {
        assert!(rc_ladder(100, 1e-6).devices().len() > rc_ladder(10, 1e-6).devices().len());
        let mesh = rc_mesh(10, 10, 1e-6);
        // ~3 devices per grid node.
        assert!(mesh.devices().len() > 250);
    }
}
