//! Synthetic workload generation for the MASC evaluation.
//!
//! The paper evaluates on proprietary netlists and locally-generated
//! matrix dumps; neither is available. This crate substitutes parametric
//! circuit [`generators`] of the same element classes (BJT chips, MOS
//! digital blocks, RAM arrays, RC networks), a [`dataset`] capture step
//! that runs the real simulator and extracts the `G`/`C` Jacobian tensors,
//! and a [`registry`] mapping each paper dataset/circuit name to a scaled
//! analogue (see `DESIGN.md` §5 for the substitution rationale).
//!
//! # Examples
//!
//! ```
//! use masc_datasets::registry::table2_datasets;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = &table2_datasets()[0]; // add20 analogue
//! let dataset = spec.generate(0.05)?; // tiny scale for the doctest
//! assert!(dataset.s_nz_bytes() > 0);
//! assert_eq!(dataset.g_series.len(), dataset.c_series.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dataset;
pub mod generators;
pub mod registry;

pub use dataset::{capture, Dataset};
pub use registry::{table1_circuits, table2_datasets, DatasetSpec, Family};
