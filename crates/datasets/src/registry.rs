//! The dataset registry: scaled analogues of the paper's evaluation
//! workloads.
//!
//! Paper Table 2 evaluates on seven datasets (add20, smult20, mem_plus,
//! MOS_T5/7/8/10: 5 k–900 k elements, 8 k–43 k steps, 9–208 GB tensors);
//! Table 1 on thirteen circuits (BJT chips up to 316 k elements, MOS and RC
//! networks). Those sizes target a 512 GB server; this reproduction runs on
//! a laptop-class box, so every spec here has the same *shape* (element
//! class, relative size ordering, step counts) at a configurable scale.
//! Ratios — compression ratios, time ratios, predictor selection rates —
//! are the quantities compared, not absolute byte counts.

use crate::dataset::{capture, Dataset};
use crate::generators;
use masc_circuit::transient::{TranError, TranOptions};
use masc_circuit::Circuit;

/// The circuit family a spec instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Diode–resistor cell chain (`add20`-like).
    DiodeChain,
    /// MOS multiplier-like array (`smult20`-like).
    MosMult,
    /// RAM-like pass-transistor array (`mem_plus`/`ram2k`-like).
    Ram,
    /// NMOS inverter chain (`MOS_Tx`-like).
    MosChain,
    /// BJT amplifier chain (`CHIP_xx`-like).
    BjtChain,
    /// RC ladder (`RC_xx`-like).
    RcLadder,
    /// RC mesh.
    RcMesh,
}

/// A generatable dataset specification.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Paper-style dataset name.
    pub name: &'static str,
    /// Circuit family.
    pub family: Family,
    /// Family-specific size knob (sections / stages / cells).
    pub size: usize,
    /// Transient step count.
    pub steps: usize,
}

impl DatasetSpec {
    /// Builds the circuit for this spec at scale factor `scale`
    /// (`1.0` = registry default; smaller for quick tests).
    pub fn build_circuit(&self, scale: f64) -> (Circuit, TranOptions) {
        let size = ((self.size as f64 * scale).round() as usize).max(2);
        let steps = ((self.steps as f64 * scale).round() as usize).max(10);
        let period = 1e-6;
        // Drive the circuits at 4 cycles per run so the Jacobians keep
        // switching — with a single slow edge the temporal predictor is
        // trivially perfect, which the paper's busy workloads are not.
        let drive_period = period / 4.0;
        let circuit = match self.family {
            Family::DiodeChain => generators::diode_cell_chain(size, drive_period),
            Family::MosMult => {
                let rows = (size as f64).sqrt().round() as usize;
                generators::mos_mult_array(rows.max(2), (size / rows.max(2)).max(2), drive_period)
            }
            Family::Ram => generators::ram_array(size, drive_period),
            Family::MosChain => generators::mos_inverter_chain(size, drive_period),
            Family::BjtChain => generators::bjt_amp_chain(size, drive_period),
            Family::RcLadder => generators::rc_ladder(size, drive_period),
            Family::RcMesh => {
                let w = (size as f64).sqrt().round() as usize;
                generators::rc_mesh(w.max(2), (size / w.max(2)).max(2), drive_period)
            }
        };
        // Adaptive stepping (like the paper's runs): `steps` sets the
        // *initial* resolution; the controller grows the step through
        // quiet intervals, so consecutive Jacobians differ meaningfully.
        let mut tran = TranOptions::new(period, period / steps as f64).with_adaptive(4.0, 64.0);
        // Fail fast on hard steps: a Newton failure costs `max_iter`
        // factorizations before the controller halves `h`.
        tran.newton.max_iter = 50;
        (circuit, tran)
    }

    /// Generates the dataset at scale factor `scale`.
    ///
    /// # Errors
    ///
    /// Returns [`TranError`] if the simulation fails (does not happen for
    /// registry specs at supported scales).
    pub fn generate(&self, scale: f64) -> Result<Dataset, TranError> {
        let (circuit, tran) = self.build_circuit(scale);
        capture(self.name, circuit, &tran)
    }

    /// Like [`generate`](Self::generate), but caches the result on disk
    /// under `dir` keyed by `(name, scale)` — full-scale generation costs
    /// minutes of simulation and every experiment binary needs the same
    /// tensors.
    ///
    /// # Panics
    ///
    /// Panics if generation itself fails (registry specs do not) or the
    /// cache directory is unwritable.
    pub fn generate_cached(&self, scale: f64, dir: &std::path::Path) -> Dataset {
        crate::cache::load_or_generate(dir, self.name, scale, || {
            self.generate(scale).expect("registry specs generate")
        })
        .expect("dataset cache writable")
    }
}

/// The seven compression datasets of paper Table 2.
pub fn table2_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "add20",
            family: Family::DiodeChain,
            size: 1200,
            steps: 400,
        },
        DatasetSpec {
            name: "smult20",
            family: Family::MosMult,
            size: 1600,
            steps: 120,
        },
        DatasetSpec {
            name: "mem_plus",
            family: Family::Ram,
            size: 2200,
            steps: 150,
        },
        DatasetSpec {
            name: "MOS_T5",
            family: Family::MosChain,
            size: 2800,
            steps: 100,
        },
        DatasetSpec {
            name: "MOS_T7",
            family: Family::MosChain,
            size: 1000,
            steps: 300,
        },
        DatasetSpec {
            name: "MOS_T8",
            family: Family::MosChain,
            size: 1900,
            steps: 160,
        },
        DatasetSpec {
            name: "MOS_T10",
            family: Family::MosChain,
            size: 1400,
            steps: 250,
        },
    ]
}

/// The thirteen timing circuits of paper Table 1.
pub fn table1_circuits() -> Vec<DatasetSpec> {
    let mut specs = vec![];
    // Nine BJT "chips" of growing size.
    for (i, size) in [12usize, 18, 28, 36, 44, 42, 60, 76, 84].iter().enumerate() {
        specs.push(DatasetSpec {
            name: match i {
                0 => "CHIP_01",
                1 => "CHIP_02",
                2 => "CHIP_03",
                3 => "CHIP_04",
                4 => "CHIP_05",
                5 => "CHIP_06",
                6 => "CHIP_07",
                7 => "CHIP_08",
                _ => "CHIP_09",
            },
            family: Family::BjtChain,
            size: *size,
            steps: [90, 130, 70, 40, 25, 20, 65, 85, 150][i],
        });
    }
    specs.push(DatasetSpec {
        name: "ram2k",
        family: Family::Ram,
        size: 40,
        steps: 60,
    });
    specs.push(DatasetSpec {
        name: "smult20",
        family: Family::MosMult,
        size: 80,
        steps: 150,
    });
    specs.push(DatasetSpec {
        name: "RC_01",
        family: Family::RcMesh,
        size: 300,
        steps: 130,
    });
    specs.push(DatasetSpec {
        name: "RC_02",
        family: Family::RcLadder,
        size: 400,
        steps: 30,
    });
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_sizes_and_names() {
        let t2 = table2_datasets();
        assert_eq!(t2.len(), 7);
        assert_eq!(t2[0].name, "add20");
        let t1 = table1_circuits();
        assert_eq!(t1.len(), 13);
        assert_eq!(t1[9].name, "ram2k");
    }

    #[test]
    fn every_table2_spec_generates_at_tiny_scale() {
        for spec in table2_datasets() {
            let ds = spec.generate(0.1).unwrap_or_else(|e| {
                panic!("{} failed: {e}", spec.name);
            });
            assert!(ds.steps() >= 11, "{}", spec.name);
            assert!(ds.nnz_per_step() > 0, "{}", spec.name);
        }
    }

    #[test]
    fn every_table1_spec_generates_at_tiny_scale() {
        for spec in table1_circuits() {
            let ds = spec.generate(0.1).unwrap_or_else(|e| {
                panic!("{} failed: {e}", spec.name);
            });
            assert!(ds.elements > 0, "{}", spec.name);
        }
    }

    #[test]
    fn scale_changes_size() {
        let spec = &table2_datasets()[0];
        let small = spec.generate(0.05).unwrap();
        let larger = spec.generate(0.2).unwrap();
        assert!(larger.nnz_per_step() > small.nnz_per_step());
        assert!(larger.steps() > small.steps());
    }
}
