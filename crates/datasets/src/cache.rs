//! On-disk dataset caching.
//!
//! Full-scale dataset generation means minutes of transient simulation, and
//! every experiment binary (table2/table3/fig5/fig6) needs the same seven
//! tensors. [`DatasetSpec::generate_cached`] serializes each generated
//! dataset under a cache directory keyed by `(name, scale)` so the
//! simulation runs once per machine.
//!
//! [`DatasetSpec::generate_cached`]: crate::registry::DatasetSpec::generate_cached

use crate::dataset::Dataset;
use masc_bitio::varint;
use masc_sparse::Pattern;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Cache-file magic/version; bump when the layout changes.
const MAGIC: &[u8; 8] = b"MASCDS02";

/// Errors from cache serialization.
#[derive(Debug)]
pub enum CacheError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The cache file is malformed or from an old version.
    Corrupt(&'static str),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "dataset cache I/O: {e}"),
            CacheError::Corrupt(what) => write!(f, "dataset cache corrupt: {what}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

impl From<masc_bitio::varint::VarintError> for CacheError {
    fn from(_: masc_bitio::varint::VarintError) -> Self {
        CacheError::Corrupt("bad varint")
    }
}

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    varint::write_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], CacheError> {
    let (len, used) = varint::read_u64(buf.get(*pos..).ok_or(CacheError::Corrupt("truncated"))?)?;
    *pos += used;
    let end = pos
        .checked_add(len as usize)
        .ok_or(CacheError::Corrupt("truncated"))?;
    let slice = buf.get(*pos..end).ok_or(CacheError::Corrupt("truncated"))?;
    *pos = end;
    Ok(slice)
}

fn write_f64s(out: &mut Vec<u8>, values: &[f64]) {
    varint::write_u64(out, values.len() as u64);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_f64s(buf: &[u8], pos: &mut usize) -> Result<Vec<f64>, CacheError> {
    let (len, used) = varint::read_u64(buf.get(*pos..).ok_or(CacheError::Corrupt("truncated"))?)?;
    *pos += used;
    let end = (len as usize)
        .checked_mul(8)
        .and_then(|b| pos.checked_add(b))
        .ok_or(CacheError::Corrupt("truncated"))?;
    let bytes = buf.get(*pos..end).ok_or(CacheError::Corrupt("truncated"))?;
    *pos = end;
    Ok(bytes
        .chunks_exact(8)
        // chunks_exact yields exactly 8 bytes; the default arm is dead.
        .map(|c| f64::from_le_bytes(c.try_into().unwrap_or_default()))
        .collect())
}

/// Serializes a dataset to bytes.
pub fn dataset_to_bytes(dataset: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    write_bytes(&mut out, dataset.name.as_bytes());
    varint::write_u64(&mut out, dataset.elements as u64);
    write_bytes(&mut out, &dataset.g_pattern.to_compressed_bytes());
    write_bytes(&mut out, &dataset.c_pattern.to_compressed_bytes());
    write_f64s(&mut out, &dataset.hs);
    varint::write_u64(&mut out, dataset.g_series.len() as u64);
    for (g, c) in dataset.g_series.iter().zip(&dataset.c_series) {
        write_f64s(&mut out, g);
        write_f64s(&mut out, c);
    }
    out
}

/// Deserializes a dataset written by [`dataset_to_bytes`].
///
/// # Errors
///
/// Returns [`CacheError::Corrupt`] on malformed input.
pub fn dataset_from_bytes(buf: &[u8]) -> Result<Dataset, CacheError> {
    if buf.get(..8) != Some(MAGIC.as_slice()) {
        return Err(CacheError::Corrupt("bad magic/version"));
    }
    let mut pos = 8usize;
    let name = String::from_utf8(read_bytes(buf, &mut pos)?.to_vec())
        .map_err(|_| CacheError::Corrupt("bad name"))?;
    let (elements, used) =
        varint::read_u64(buf.get(pos..).ok_or(CacheError::Corrupt("truncated"))?)?;
    pos += used;
    let g_pattern = Pattern::from_compressed_bytes(read_bytes(buf, &mut pos)?)
        .map_err(|_| CacheError::Corrupt("bad g pattern"))?;
    let c_pattern = Pattern::from_compressed_bytes(read_bytes(buf, &mut pos)?)
        .map_err(|_| CacheError::Corrupt("bad c pattern"))?;
    let hs = read_f64s(buf, &mut pos)?;
    let (steps, used) = varint::read_u64(buf.get(pos..).ok_or(CacheError::Corrupt("truncated"))?)?;
    pos += used;
    // Every step costs at least two length varints, so a claimed step count
    // beyond the remaining input is truncated garbage; reject it before
    // trusting it with an allocation.
    if steps > buf.len() as u64 {
        return Err(CacheError::Corrupt("truncated"));
    }
    let mut g_series = Vec::with_capacity(steps as usize);
    let mut c_series = Vec::with_capacity(steps as usize);
    for _ in 0..steps {
        g_series.push(read_f64s(buf, &mut pos)?);
        c_series.push(read_f64s(buf, &mut pos)?);
    }
    Ok(Dataset {
        name,
        elements: elements as usize,
        g_pattern: Arc::new(g_pattern),
        c_pattern: Arc::new(c_pattern),
        g_series,
        c_series,
        hs,
    })
}

/// Loads `name@scale` from `dir`, or generates it with `make` and stores
/// it.
///
/// # Errors
///
/// Returns [`CacheError`] only for I/O failures while *writing*; a corrupt
/// or missing cache entry silently falls back to regeneration.
pub fn load_or_generate(
    dir: &Path,
    name: &str,
    scale: f64,
    make: impl FnOnce() -> Dataset,
) -> Result<Dataset, CacheError> {
    std::fs::create_dir_all(dir)?;
    let file = dir.join(format!("{name}-{scale:.4}.masc"));
    if let Ok(mut f) = std::fs::File::open(&file) {
        let mut buf = Vec::new();
        if f.read_to_end(&mut buf).is_ok() {
            if let Ok(dataset) = dataset_from_bytes(&buf) {
                return Ok(dataset);
            }
        }
    }
    let dataset = make();
    let bytes = dataset_to_bytes(&dataset);
    let mut f = std::fs::File::create(&file)?;
    f.write_all(&bytes)?;
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::table2_datasets;

    #[test]
    fn round_trip_bytes() {
        let ds = table2_datasets()[0].generate(0.03).unwrap();
        let bytes = dataset_to_bytes(&ds);
        let back = dataset_from_bytes(&bytes).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.elements, ds.elements);
        assert_eq!(back.g_pattern, ds.g_pattern);
        assert_eq!(back.g_series, ds.g_series);
        assert_eq!(back.c_series, ds.c_series);
        assert_eq!(back.hs, ds.hs);
    }

    #[test]
    fn corrupt_cache_rejected() {
        assert!(dataset_from_bytes(b"garbage").is_err());
        let ds = table2_datasets()[0].generate(0.03).unwrap();
        let mut bytes = dataset_to_bytes(&ds);
        bytes.truncate(bytes.len() / 2);
        assert!(dataset_from_bytes(&bytes).is_err());
    }

    #[test]
    fn load_or_generate_uses_cache() {
        let dir = std::env::temp_dir().join("masc-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut generated = 0;
        for _ in 0..2 {
            let ds = load_or_generate(&dir, "t", 0.03, || {
                generated += 1;
                table2_datasets()[0].generate(0.03).unwrap()
            })
            .unwrap();
            assert!(ds.steps() > 0);
        }
        assert_eq!(generated, 1, "second load must hit the cache");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
