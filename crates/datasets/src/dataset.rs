//! Dataset extraction: run a generated circuit's transient and capture the
//! Jacobian tensors (the paper Table 2 artifacts).

use masc_adjoint::{ForwardRecord, StoreConfig, TensorLayout};
use masc_circuit::transient::{transient, TranError, TranOptions};
use masc_circuit::Circuit;
use masc_sparse::Pattern;
use std::sync::Arc;

/// A captured Jacobian-tensor dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (paper Table 2 row).
    pub name: String,
    /// Number of circuit elements (`#CirElem`).
    pub elements: usize,
    /// The shared sparsity pattern of the `G` tensor.
    pub g_pattern: Arc<Pattern>,
    /// The shared sparsity pattern of the `C` tensor.
    pub c_pattern: Arc<Pattern>,
    /// `G = ∂f/∂x` values per step (compact, over `g_pattern`).
    pub g_series: Vec<Vec<f64>>,
    /// `C = ∂q/∂x` values per step (compact, over `c_pattern`).
    pub c_series: Vec<Vec<f64>>,
    /// Step sizes.
    pub hs: Vec<f64>,
}

impl Dataset {
    /// Number of time points (`#Steps`).
    pub fn steps(&self) -> usize {
        self.g_series.len()
    }

    /// Total non-zeros per step across both tensors.
    pub fn nnz_per_step(&self) -> usize {
        self.g_pattern.nnz() + self.c_pattern.nnz()
    }

    /// Bytes to store every matrix in CSR form, indices included
    /// (`S_CSR`). Without shared indices each step pays for its own copy.
    pub fn s_csr_bytes(&self) -> usize {
        self.steps()
            * (self.g_pattern.index_bytes()
                + self.g_pattern.nnz() * 8
                + self.c_pattern.index_bytes()
                + self.c_pattern.nnz() * 8)
    }

    /// Bytes of the non-zero values alone (`S_NZ`) — the compression
    /// target.
    pub fn s_nz_bytes(&self) -> usize {
        self.steps() * self.nnz_per_step() * 8
    }

    /// The full non-zero value stream (G then C per step, concatenated) as
    /// the pattern-blind baselines see it.
    pub fn value_stream(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.steps() * self.nnz_per_step());
        for (g, c) in self.g_series.iter().zip(&self.c_series) {
            out.extend_from_slice(g);
            out.extend_from_slice(c);
        }
        out
    }
}

/// Runs the circuit's transient and captures both Jacobian tensors.
///
/// # Errors
///
/// Returns [`TranError`] if the simulation fails.
pub fn capture(name: &str, mut circuit: Circuit, tran: &TranOptions) -> Result<Dataset, TranError> {
    let elements = circuit.devices().len();
    let mut system = circuit
        .elaborate()
        .expect("generated circuits always elaborate");
    let mut record = ForwardRecord::new(TensorLayout::of(&system), &StoreConfig::RawMemory)
        .expect("raw store cannot fail");
    let result = transient(&circuit, &mut system, tran, &mut record)?;
    let (g_series, c_series) = {
        let (g, c) = record.raw_matrices().expect("raw store");
        (g.to_vec(), c.to_vec())
    };
    Ok(Dataset {
        name: name.to_string(),
        elements,
        g_pattern: system.g_pattern.clone(),
        c_pattern: system.c_pattern.clone(),
        g_series,
        c_series,
        hs: result.steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rc_ladder;

    #[test]
    fn capture_produces_consistent_tensors() {
        let tran = TranOptions::new(1e-6, 1e-8);
        let ds = capture("test", rc_ladder(10, 1e-6), &tran).unwrap();
        assert_eq!(ds.steps(), 101); // DC + 100 steps
        assert_eq!(ds.g_series.len(), ds.c_series.len());
        for g in &ds.g_series {
            assert_eq!(g.len(), ds.g_pattern.nnz());
        }
        for c in &ds.c_series {
            assert_eq!(c.len(), ds.c_pattern.nnz());
        }
        assert_eq!(ds.value_stream().len(), 101 * ds.nnz_per_step());
        assert!(ds.s_csr_bytes() > ds.s_nz_bytes());
        assert_eq!(ds.elements, 21); // V + 10×(R + C)
    }

    #[test]
    fn linear_circuit_tensors_are_time_constant() {
        // RC ladders are linear: G and C must be identical at every step —
        // the temporal predictor's best case.
        let tran = TranOptions::new(1e-6, 5e-8);
        let ds = capture("test", rc_ladder(5, 1e-6), &tran).unwrap();
        for g in &ds.g_series[1..] {
            assert_eq!(g, &ds.g_series[0]);
        }
        for c in &ds.c_series[1..] {
            assert_eq!(c, &ds.c_series[0]);
        }
    }
}
