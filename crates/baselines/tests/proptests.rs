//! Property-based round-trip tests for every baseline compressor
//! (masc-testkit): the four lossless baselines must be bit-exact on
//! arbitrary value streams (including NaNs, infinities, subnormals, and
//! signed zeros), SpiceMate must respect its error bound, and every
//! decoder must reject arbitrary bytes without panicking.

// Tests may assert with unwrap/expect; the crate's clippy.toml bans them
// in shipping code only (masc-lint rule R1).
#![allow(clippy::disallowed_methods)]

use masc_baselines::{ChimpLike, Compressor, FpzipLike, GzipLike, NdzipLike, SpiceMate};
use masc_testkit::gen::{self, Gen};
use masc_testkit::{prop, prop_assert, prop_assert_eq};

/// Value streams biased toward the regimes the baselines target: smooth
/// simulation-like series, plus raw special-value payloads.
fn streams() -> impl Gen<Value = Vec<f64>> {
    gen::one_of(vec![
        gen::vecs(gen::f64_payloads(), 0..300).boxed(),
        gen::from_fn(|rng| {
            let n = rng.range_usize(0, 400);
            let mut v = rng.range_f64(-1.0, 1.0);
            (0..n)
                .map(|_| {
                    v += rng.range_f64(-1e-3, 1e-3);
                    v
                })
                .collect()
        })
        .boxed(),
    ])
}

fn lossless() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(ChimpLike::new()),
        Box::new(FpzipLike::new()),
        Box::new(NdzipLike::new()),
        Box::new(GzipLike::new()),
    ]
}

fn assert_bit_exact(c: &dyn Compressor, values: &[f64]) {
    let restored = c
        .decompress(&c.compress(values))
        .unwrap_or_else(|e| panic!("{} rejected its own output: {e:?}", c.name()));
    prop_assert_eq!(restored.len(), values.len(), "{} length", c.name());
    for (i, (a, b)) in restored.iter().zip(values).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} not bit-exact at value {i}",
            c.name()
        );
    }
}

prop! {
    fn chimp_round_trip(values in streams()) {
        assert_bit_exact(&ChimpLike::new(), &values);
    }

    fn fpzip_round_trip(values in streams()) {
        assert_bit_exact(&FpzipLike::new(), &values);
    }

    fn ndzip_round_trip(values in streams()) {
        assert_bit_exact(&NdzipLike::new(), &values);
    }

    fn gzip_round_trip(values in streams()) {
        assert_bit_exact(&GzipLike::new(), &values);
    }

    fn spicemate_respects_error_bound(values in streams()) {
        let eb = 1e-6;
        let sm = SpiceMate::new(eb);
        let restored = sm.decompress(&sm.compress(&values)).expect("own output");
        prop_assert_eq!(restored.len(), values.len());
        for (i, (&a, &b)) in restored.iter().zip(&values).enumerate() {
            if b.is_finite() {
                prop_assert!(
                    (a - b).abs() <= eb * (1.0 + 1e-9),
                    "error bound exceeded at value {i}: {a:?} vs {b:?}"
                );
            } else {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "non-finite at value {i}");
            }
        }
    }

    fn decoders_survive_arbitrary_bytes(data in gen::vecs(gen::u8s(), 0..400)) {
        let mut all = lossless();
        all.push(Box::new(SpiceMate::new(1e-6)));
        for c in all {
            // Structured error or success — never a panic.
            let _ = c.decompress(&data);
        }
    }
}
