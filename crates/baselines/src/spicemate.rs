//! SpiceMate-style baseline: error-bounded *lossy* waveform compression
//! from the EDA domain.
//!
//! SpiceMate (Li & Yu, TCAD'21) compresses transient waveforms with an
//! accuracy guarantee. This re-implementation captures that contract with
//! a predictive error-bounded quantizer (the SZ family's core loop): each
//! value is predicted from the previously *reconstructed* value, the
//! prediction error is quantized to `2·eb` bins, and bin indices are
//! entropy-coded with rANS; unpredictable values fall back to exact bits.
//! Decompression reproduces every value within the absolute error bound.
//!
//! The paper's motivation section notes exactly why this family is
//! unsuitable for Jacobian storage: lossy reconstruction feeds cumulative
//! errors back into the adjoint integration — hence MASC's insistence on
//! lossless compression.

use crate::Compressor;
use masc_bitio::varint;
use masc_codec::{rans, CodecError};

/// Quantization codes reserved: 0 = exact fallback; bins are offset by
/// `BIAS` so small signed indices map to small codes.
const BIAS: i64 = 1 << 20;

/// The SpiceMate-style lossy compressor.
#[derive(Debug, Clone, Copy)]
pub struct SpiceMate {
    /// Absolute error bound.
    error_bound: f64,
}

impl SpiceMate {
    /// Creates a compressor with the given absolute error bound.
    ///
    /// # Panics
    ///
    /// Panics if `error_bound <= 0` or is not finite.
    pub fn new(error_bound: f64) -> Self {
        assert!(
            error_bound > 0.0 && error_bound.is_finite(),
            "error bound must be positive and finite"
        );
        Self { error_bound }
    }

    /// The configured error bound.
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }
}

impl Compressor for SpiceMate {
    fn name(&self) -> &'static str {
        "SpiceMate"
    }

    fn is_lossless(&self) -> bool {
        false
    }

    fn max_error(&self) -> f64 {
        self.error_bound
    }

    fn compress(&self, values: &[f64]) -> Vec<u8> {
        let eb = self.error_bound;
        // Quantization-code stream (varint-packed) + exact-value bytes.
        let mut codes = Vec::with_capacity(values.len() * 2);
        let mut exact = Vec::new();
        let mut prev_recon = 0.0f64;
        for &v in values {
            let err = v - prev_recon;
            let bin = (err / (2.0 * eb)).round();
            let recon = prev_recon + bin * 2.0 * eb;
            let quantizable = bin.is_finite()
                && bin.abs() < (BIAS - 1) as f64
                && (v - recon).abs() <= eb
                && recon.is_finite();
            if quantizable {
                let code = (bin as i64) + BIAS;
                debug_assert!(code > 0);
                varint::write_u64(&mut codes, code as u64);
                prev_recon = recon;
            } else {
                varint::write_u64(&mut codes, 0);
                exact.extend_from_slice(&v.to_le_bytes());
                prev_recon = v;
            }
        }
        let packed_codes = rans::encode(&codes);
        let mut out = Vec::with_capacity(packed_codes.len() + exact.len() + 24);
        varint::write_u64(&mut out, values.len() as u64);
        varint::write_u64(&mut out, self.error_bound.to_bits());
        varint::write_u64(&mut out, packed_codes.len() as u64);
        out.extend_from_slice(&packed_codes);
        out.extend_from_slice(&exact);
        out
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
        let mut pos = 0usize;
        let (count, used) = varint::read_u64(bytes)?;
        pos += used;
        let (eb_bits, used) = varint::read_u64(&bytes[pos..])?;
        pos += used;
        let eb = f64::from_bits(eb_bits);
        if !(eb > 0.0 && eb.is_finite()) {
            return Err(CodecError::Corrupt("bad error bound"));
        }
        let (code_len, used) = varint::read_u64(&bytes[pos..])?;
        pos += used;
        let code_end = pos
            .checked_add(code_len as usize)
            .ok_or(CodecError::Truncated)?;
        let codes = rans::decode(bytes.get(pos..code_end).ok_or(CodecError::Truncated)?)?;
        let mut exact = bytes.get(code_end..).ok_or(CodecError::Truncated)?;
        // Every value consumes at least one code byte, so a claimed count
        // beyond the decoded code stream cannot be satisfied; reject it
        // before trusting it with an allocation.
        if count > codes.len() as u64 {
            return Err(CodecError::Truncated);
        }
        let mut out = Vec::with_capacity(count as usize);
        let mut prev = 0.0f64;
        let mut cpos = 0usize;
        for _ in 0..count {
            let (code, used) = varint::read_u64(&codes[cpos..])?;
            cpos += used;
            if code == 0 {
                let raw: [u8; 8] = exact
                    .get(..8)
                    .and_then(|s| s.try_into().ok())
                    .ok_or(CodecError::Truncated)?;
                prev = f64::from_le_bytes(raw);
                exact = exact.get(8..).unwrap_or(&[]);
            } else {
                let bin = code as i64 - BIAS;
                prev += (bin as f64) * 2.0 * eb;
            }
            out.push(prev);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bound(values: &[f64], eb: f64) -> usize {
        let c = SpiceMate::new(eb);
        let packed = c.compress(values);
        let out = c.decompress(&packed).unwrap();
        assert_eq!(out.len(), values.len());
        for (i, (a, b)) in values.iter().zip(&out).enumerate() {
            if a.is_finite() {
                assert!(
                    (a - b).abs() <= eb * (1.0 + 1e-12),
                    "value {i}: {a} vs {b} exceeds bound {eb}"
                );
            }
        }
        packed.len()
    }

    #[test]
    fn error_bound_honored_on_smooth_waveform() {
        let values: Vec<f64> = (0..10_000).map(|i| (i as f64 * 1e-3).sin() * 2.5).collect();
        for eb in [1e-3, 1e-6, 1e-9] {
            check_bound(&values, eb);
        }
    }

    #[test]
    fn loose_bound_compresses_hard() {
        let values: Vec<f64> = (0..10_000).map(|i| (i as f64 * 1e-3).sin() * 2.5).collect();
        let loose = check_bound(&values, 1e-2);
        let tight = check_bound(&values, 1e-10);
        assert!(loose < tight, "loose {loose} should beat tight {tight}");
        assert!(loose * 4 < values.len() * 8);
    }

    #[test]
    fn jumps_fall_back_to_exact() {
        let mut values = vec![0.0; 100];
        values.extend([1e30, -1e30, 1e-30]);
        values.extend(vec![5.0; 100]);
        check_bound(&values, 1e-6);
    }

    #[test]
    fn non_finite_values_pass_through() {
        let values = [1.0, f64::INFINITY, 2.0, f64::NAN, 3.0];
        let c = SpiceMate::new(1e-6);
        let out = c.decompress(&c.compress(&values)).unwrap();
        assert!(out[1].is_infinite());
        assert!(out[3].is_nan());
        assert!((out[4] - 3.0).abs() <= 1e-6);
    }

    #[test]
    fn empty_stream() {
        check_bound(&[], 1e-6);
    }

    #[test]
    fn invalid_bound_panics() {
        assert!(std::panic::catch_unwind(|| SpiceMate::new(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| SpiceMate::new(-1.0)).is_err());
        assert!(std::panic::catch_unwind(|| SpiceMate::new(f64::NAN)).is_err());
    }

    #[test]
    fn truncated_is_error() {
        let c = SpiceMate::new(1e-6);
        let packed = c.compress(&[1.0, 1e40, 3.0]);
        assert!(c.decompress(&packed[..packed.len() - 4]).is_err());
    }

    #[test]
    fn reports_lossy_contract() {
        let c = SpiceMate::new(1e-4);
        assert!(!c.is_lossless());
        assert_eq!(c.max_error(), 1e-4);
        assert_eq!(c.error_bound(), 1e-4);
    }
}
