//! Chimp-style time-series baseline (VLDB'22, cited by the paper as the
//! state of the art in time-series float compression).
//!
//! XOR against the previous value, then a 2-bit control code:
//!
//! ```text
//! 00  residual == 0
//! 01  reuse the previous (lz, sig) window; write sig bits
//! 10  new window: 3-bit lz class + 6-bit significant length − 1 + bits
//! 11  raw 64-bit residual (escape for incompressible values)
//! ```
//!
//! Close cousin of MASC's residual stage — but with only the temporal
//! predictor and no stamp/spatial information, which is exactly the gap
//! the paper's evaluation quantifies.

use crate::Compressor;
use masc_bitio::{varint, BitReader, BitWriter};
use masc_codec::CodecError;

/// The Chimp-style baseline compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChimpLike;

impl ChimpLike {
    /// Creates the compressor.
    pub fn new() -> Self {
        Self
    }
}

impl Compressor for ChimpLike {
    fn name(&self) -> &'static str {
        "ChimpLike"
    }

    fn compress(&self, values: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() * 4 + 8);
        varint::write_u64(&mut out, values.len() as u64);
        let mut w = BitWriter::with_capacity(values.len() * 4);
        let mut prev = 0u64;
        let mut window: Option<(u32, u32)> = None; // (start, len)
        for v in values {
            let bits = v.to_bits();
            let residual = bits ^ prev;
            prev = bits;
            if residual == 0 {
                w.write_bits(0b00, 2);
                continue;
            }
            let lz = residual.leading_zeros();
            let tz = residual.trailing_zeros();
            if let Some((start, len)) = window {
                // Fits inside the previous window?
                if tz >= start && 64 - lz <= start + len {
                    w.write_bits(0b01, 2);
                    w.write_bits(residual >> start, len);
                    continue;
                }
            }
            let class = (lz / 8).min(7);
            let eff_lz = class * 8;
            let sig_len = 64 - eff_lz - tz;
            if sig_len >= 58 {
                // Escape: the window encoding would cost more than raw.
                w.write_bits(0b11, 2);
                w.write_u64(residual);
                window = None;
            } else {
                w.write_bits(0b10, 2);
                w.write_bits(u64::from(class), 3);
                w.write_bits(u64::from(sig_len - 1), 6);
                w.write_bits(residual >> tz, sig_len);
                window = Some((tz, sig_len));
            }
        }
        out.extend_from_slice(&w.into_bytes());
        out
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
        let (count, used) = varint::read_u64(bytes)?;
        // Every value costs at least its 2 control bits, so a claimed count
        // beyond the remaining payload cannot be satisfied; reject it
        // before trusting it with an allocation.
        if count > ((bytes.len() - used) as u64).saturating_mul(4) {
            return Err(CodecError::Truncated);
        }
        let mut r = BitReader::new(&bytes[used..]);
        let mut out = Vec::with_capacity(count as usize);
        let mut prev = 0u64;
        let mut window: Option<(u32, u32)> = None;
        for _ in 0..count {
            let control = r.read_bits(2)?;
            let residual = match control {
                0b00 => 0,
                0b01 => {
                    let (start, len) =
                        window.ok_or(CodecError::Corrupt("window reuse with no window"))?;
                    r.read_bits(len)? << start
                }
                0b10 => {
                    let class = r.read_bits(3)? as u32;
                    let sig_len = r.read_bits(6)? as u32 + 1;
                    let eff_lz = class * 8;
                    if eff_lz + sig_len > 64 {
                        return Err(CodecError::Corrupt("window exceeds 64 bits"));
                    }
                    let start = 64 - eff_lz - sig_len;
                    window = Some((start, sig_len));
                    r.read_bits(sig_len)? << start
                }
                _ => {
                    window = None;
                    r.read_u64()?
                }
            };
            prev ^= residual;
            out.push(f64::from_bits(prev));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[f64]) -> usize {
        let c = ChimpLike::new();
        let packed = c.compress(values);
        let out = c.decompress(&packed).unwrap();
        assert_eq!(out.len(), values.len());
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        packed.len()
    }

    #[test]
    fn empty_and_specials() {
        round_trip(&[]);
        round_trip(&[0.0]);
        round_trip(&[f64::NAN, f64::INFINITY, -0.0, 1e-308]);
    }

    #[test]
    fn constant_stream_is_quarter_bit_per_value() {
        let values = vec![9.81; 40_000];
        let packed = round_trip(&values);
        // 2 bits/value + header.
        assert!(packed <= 40_000 / 4 + 16, "packed {packed}");
    }

    #[test]
    fn stepwise_sensor_data_compresses() {
        // Values that hold for several samples (typical sampled sensor/
        // waveform data): most residuals are zero.
        let values: Vec<f64> = (0..10_000)
            .map(|i| 20.0 + 0.01 * ((i / 10) as f64 * 0.01).sin())
            .collect();
        let packed = round_trip(&values);
        assert!(packed * 4 < values.len() * 8, "packed {packed}");
    }

    #[test]
    fn incompressible_uses_escape_without_blowup() {
        let values: Vec<f64> = (0..4000u64)
            .map(|i| f64::from_bits(i.wrapping_mul(0xD1342543DE82EF95) | 1))
            .collect();
        let packed = round_trip(&values);
        // ≤ 66 bits per value + header.
        assert!(packed <= values.len() * 9 + 16, "packed {packed}");
    }

    #[test]
    fn truncated_is_error() {
        let c = ChimpLike::new();
        let packed = c.compress(&vec![1.5; 100]);
        assert!(c.decompress(&packed[..1]).is_err());
        assert!(c.decompress(&[]).is_err());
    }
}
