//! GZIP-architecture baseline: LZSS dictionary coding + canonical Huffman.
//!
//! DEFLATE's two stages over the raw little-endian bytes of the value
//! stream. Token serialization: groups of 8 tokens share a control byte
//! (bit set = back-reference), literals are 1 byte, matches are 3 bytes
//! (15-bit distance, 8-bit length − 3); the serialized token stream is then
//! Huffman-coded as a whole.

use crate::Compressor;
use masc_bitio::varint;
use masc_codec::lzss::{self, Token};
use masc_codec::{huffman, CodecError};

/// The GZIP-style baseline compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct GzipLike;

impl GzipLike {
    /// Creates the compressor.
    pub fn new() -> Self {
        Self
    }
}

fn serialize_tokens(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tokens.len() * 2);
    varint::write_u64(&mut out, tokens.len() as u64);
    for group in tokens.chunks(8) {
        let mut control = 0u8;
        for (i, t) in group.iter().enumerate() {
            if matches!(t, Token::Match { .. }) {
                control |= 1 << i;
            }
        }
        out.push(control);
        for t in group {
            match *t {
                Token::Literal(b) => out.push(b),
                Token::Match { dist, len } => {
                    debug_assert!(dist <= 1 << 15);
                    debug_assert!((3..=258).contains(&len));
                    out.push((dist & 0xFF) as u8);
                    out.push((dist >> 8) as u8);
                    out.push((len - 3) as u8);
                }
            }
        }
    }
    out
}

fn deserialize_tokens(bytes: &[u8]) -> Result<Vec<Token>, CodecError> {
    let (count, mut pos) = varint::read_u64(bytes)?;
    // Eight tokens cost at least nine serialized bytes (control byte plus
    // one byte each), so a claimed count beyond eight tokens per input byte
    // is truncated garbage; reject it before trusting it with an
    // allocation.
    if count > (bytes.len() as u64).saturating_mul(8) {
        return Err(CodecError::Truncated);
    }
    let mut tokens = Vec::with_capacity(count as usize);
    while (tokens.len() as u64) < count {
        let control = *bytes.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        let in_group = ((count - tokens.len() as u64) as usize).min(8);
        for i in 0..in_group {
            if control & (1 << i) != 0 {
                let raw = bytes.get(pos..pos + 3).ok_or(CodecError::Truncated)?;
                let dist = u32::from(raw[0]) | (u32::from(raw[1]) << 8);
                let len = u32::from(raw[2]) + 3;
                tokens.push(Token::Match { dist, len });
                pos += 3;
            } else {
                tokens.push(Token::Literal(
                    *bytes.get(pos).ok_or(CodecError::Truncated)?,
                ));
                pos += 1;
            }
        }
    }
    Ok(tokens)
}

impl Compressor for GzipLike {
    fn name(&self) -> &'static str {
        "GzipLike"
    }

    fn compress(&self, values: &[f64]) -> Vec<u8> {
        let raw: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let tokens = lzss::compress(&raw);
        huffman::encode(&serialize_tokens(&tokens))
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
        let serialized = huffman::decode(bytes)?;
        let tokens = deserialize_tokens(&serialized)?;
        let raw = lzss::decompress(&tokens)?;
        if raw.len() % 8 != 0 {
            return Err(CodecError::Corrupt("byte count not a multiple of 8"));
        }
        Ok(raw
            .chunks_exact(8)
            // chunks_exact yields exactly 8 bytes; the default arm is dead.
            .map(|c| f64::from_le_bytes(c.try_into().unwrap_or_default()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[f64]) -> usize {
        let c = GzipLike::new();
        let packed = c.compress(values);
        let out = c.decompress(&packed).unwrap();
        assert_eq!(out.len(), values.len());
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        packed.len()
    }

    #[test]
    fn empty_and_single() {
        round_trip(&[]);
        round_trip(&[42.0]);
        round_trip(&[f64::NAN, f64::INFINITY, -0.0]);
    }

    #[test]
    fn repetitive_data_compresses_strongly() {
        let values = vec![1.2345e-6; 10_000];
        let packed = round_trip(&values);
        assert!(
            packed * 20 < values.len() * 8,
            "constant stream should compress > 20x, got {packed} bytes"
        );
    }

    #[test]
    fn periodic_pattern_uses_dictionary() {
        // A repeating 16-value motif: LZSS should find long matches.
        let motif: Vec<f64> = (0..16).map(|i| (i as f64) * 0.37 - 2.0).collect();
        let values: Vec<f64> = motif.iter().cycle().take(8000).copied().collect();
        let packed = round_trip(&values);
        assert!(packed * 10 < values.len() * 8, "got {packed} bytes");
    }

    #[test]
    fn random_like_data_does_not_explode() {
        let values: Vec<f64> = (0..2000u64)
            .map(|i| f64::from_bits(i.wrapping_mul(0x9E3779B97F4A7C15)))
            .collect();
        let packed = round_trip(&values);
        // At worst a few percent overhead.
        assert!(packed < values.len() * 8 + values.len() * 8 / 4 + 1024);
    }

    #[test]
    fn truncated_is_error() {
        let c = GzipLike::new();
        let packed = c.compress(&[1.0, 2.0, 3.0]);
        assert!(c.decompress(&packed[..packed.len() / 2]).is_err());
    }

    #[test]
    fn token_serialization_round_trips() {
        let tokens = vec![
            Token::Literal(7),
            Token::Match { dist: 1, len: 3 },
            Token::Literal(0),
            Token::Match {
                dist: 32768,
                len: 258,
            },
            Token::Literal(255),
            Token::Literal(1),
            Token::Match { dist: 300, len: 17 },
            Token::Literal(2),
            Token::Literal(3), // crosses a control-byte boundary
        ];
        let bytes = serialize_tokens(&tokens);
        assert_eq!(deserialize_tokens(&bytes).unwrap(), tokens);
    }
}
