//! NDZIP-architecture baseline: block decorrelation + bit-plane
//! transposition + zero-word suppression.
//!
//! NDZIP splits the input into fixed hypercubes, applies an integer
//! Lorenzo transform, transposes bits within each block so that the mostly
//! -zero high-order planes become whole zero words, and elides those with
//! a bitmap. This re-implementation uses 64-value blocks, a wrapping
//! integer delta as the 1-D Lorenzo transform, the 64×64 bit transposition
//! from [`masc_codec::transform`], and zero-run coding from
//! [`masc_codec::rle`]. Like NDZIP it is built for *throughput*, not
//! maximum ratio — the paper measures it near 1.0–1.1× on Jacobian data.

use crate::Compressor;
use masc_bitio::varint;
use masc_codec::{rle, transform, CodecError};

/// The NDZIP-style baseline compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct NdzipLike;

impl NdzipLike {
    /// Creates the compressor.
    pub fn new() -> Self {
        Self
    }
}

impl Compressor for NdzipLike {
    fn name(&self) -> &'static str {
        "NdzipLike"
    }

    fn compress(&self, values: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() * 8 + 16);
        varint::write_u64(&mut out, values.len() as u64);
        let mut words = transform::to_bits(values);
        // Delta-decorrelate the whole stream (carry across blocks: the
        // first word of each block still deltas against its predecessor).
        transform::delta_previous(&mut words);
        // Transpose full blocks; the ragged tail stays un-transposed.
        let full = words.len() / transform::BLOCK * transform::BLOCK;
        for block in words[..full].chunks_mut(transform::BLOCK) {
            transform::transpose_bits(block);
        }
        out.extend_from_slice(&rle::encode_words(&words));
        out
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
        let (count, used) = varint::read_u64(bytes)?;
        let mut words = rle::decode_words(&bytes[used..])?;
        if words.len() != count as usize {
            return Err(CodecError::Corrupt("word count mismatch"));
        }
        let full = words.len() / transform::BLOCK * transform::BLOCK;
        for block in words[..full].chunks_mut(transform::BLOCK) {
            transform::transpose_bits(block);
        }
        transform::undo_delta_previous(&mut words);
        Ok(transform::from_bits(&words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[f64]) -> usize {
        let c = NdzipLike::new();
        let packed = c.compress(values);
        let out = c.decompress(&packed).unwrap();
        assert_eq!(out.len(), values.len());
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        packed.len()
    }

    #[test]
    fn empty_small_and_ragged() {
        round_trip(&[]);
        round_trip(&[1.0]);
        round_trip(&vec![2.5; 63]); // below one block
        round_trip(&vec![2.5; 65]); // one block + ragged tail
        round_trip(&[f64::NAN, f64::INFINITY, -0.0]);
    }

    #[test]
    fn constant_stream_collapses() {
        let values = vec![-7.5e3; 64 * 100];
        let packed = round_trip(&values);
        // Deltas all zero after the first → nearly everything elided.
        assert!(packed * 50 < values.len() * 8, "packed {packed}");
    }

    #[test]
    fn linear_ramp_compresses() {
        // Constant bit-pattern deltas in long runs compress via the
        // transposed zero planes.
        let values: Vec<f64> = (0..6400).map(|i| i as f64).collect();
        let packed = round_trip(&values);
        assert!(packed * 2 < values.len() * 8, "packed {packed}");
    }

    #[test]
    fn incompressible_data_bounded_overhead() {
        let values: Vec<f64> = (0..4096u64)
            .map(|i| f64::from_bits(i.wrapping_mul(0x9E3779B97F4A7C15) | 1))
            .collect();
        let packed = round_trip(&values);
        assert!(packed < values.len() * 8 + values.len() / 2 + 64);
    }

    #[test]
    fn truncated_is_error() {
        let c = NdzipLike::new();
        let packed = c.compress(&[1.0, 2.0, 3.0, 4.0]);
        assert!(c.decompress(&packed[..packed.len() - 4]).is_err());
        assert!(c.decompress(&[]).is_err());
    }
}
