//! FPZIP-architecture baseline: predictive decorrelation + arithmetic-family
//! entropy coding.
//!
//! FPZIP predicts each value with a Lorenzo predictor over the sample's
//! neighborhood, XORs the prediction with the truth, and entropy-codes the
//! position of the leading one while storing the remaining mantissa bits
//! verbatim. The entropy stage here is an adaptive binary range coder with
//! a context tree over the 7-bit leading-zero count, with the significant
//! bits sent as direct (uncoded) bits — the same high/low split FPZIP
//! uses.
//!
//! Like the real tool, the caller declares the array shape: with
//! [`FpzipLike::with_row_len`] the stream is treated as a 2-D array (rows =
//! timesteps, columns = matrix positions) and the 2-D Lorenzo predictor
//! `v[i−1,j] + v[i,j−1] − v[i−1,j−1]` applies — which is how the paper's
//! evaluation feeds Jacobian tensors to FPZIP and why FPZIP lands mid-pack
//! there (it gets the temporal correlation but none of the stamp
//! structure). The default is a 1-D stream (previous-value prediction).

use crate::Compressor;
use masc_bitio::varint;
use masc_codec::range::{BitModel, RangeDecoder, RangeEncoder};
use masc_codec::CodecError;

/// The FPZIP-style baseline compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpzipLike {
    /// Row length for 2-D Lorenzo prediction (`0` = 1-D stream).
    row_len: usize,
}

impl FpzipLike {
    /// Creates the compressor in 1-D mode.
    pub fn new() -> Self {
        Self { row_len: 0 }
    }

    /// Declares a 2-D array shape: rows of `row_len` values (e.g. one
    /// Jacobian's non-zeros per timestep) enable the 2-D Lorenzo
    /// predictor.
    pub fn with_row_len(row_len: usize) -> Self {
        Self { row_len }
    }

    /// Lorenzo prediction for element `i` given everything before it.
    #[inline]
    fn predict(&self, values: &[f64], i: usize) -> u64 {
        // On decode `values` holds exactly the `i` already-reconstructed
        // elements; every read below lands strictly before `i`.
        debug_assert!(i <= values.len(), "prediction context must cover i");
        if self.row_len == 0 || i < self.row_len {
            // 1-D / first row: previous value.
            return if i == 0 { 0 } else { values[i - 1].to_bits() };
        }
        let up = values[i - self.row_len];
        if i.is_multiple_of(self.row_len) {
            // First column: same position in the previous row.
            return up.to_bits();
        }
        let left = values[i - 1];
        let diag = values[i - self.row_len - 1];
        (up + left - diag).to_bits()
    }
}

/// Context count for the 7-bit leading-zero tree.
const LZ_TREE: usize = 127;

/// Upper bound on a stream's claimed value count (see `decompress`).
const MAX_DECODE_VALUES: u64 = 1 << 24;

impl Compressor for FpzipLike {
    fn name(&self) -> &'static str {
        "FpzipLike"
    }

    fn compress(&self, values: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() * 4 + 16);
        varint::write_u64(&mut out, values.len() as u64);
        varint::write_u64(&mut out, self.row_len as u64);
        let mut models = vec![BitModel::new(); LZ_TREE];
        let mut enc = RangeEncoder::new();
        for (i, v) in values.iter().enumerate() {
            let bits = v.to_bits();
            let residual = bits ^ self.predict(values, i);
            let lz = residual.leading_zeros(); // 0..=64
            enc.encode_bits_tree(&mut models, 7, lz.min(64));
            if lz < 64 {
                // Everything after the leading one, plus the one itself is
                // implicit: send the remaining 63−lz bits directly.
                let sig = 63 - lz;
                let tail = residual & !(1u64 << (63 - lz));
                if sig > 32 {
                    enc.encode_direct_bits((tail >> 32) as u32, sig - 32);
                    enc.encode_direct_bits(tail as u32, 32);
                } else {
                    enc.encode_direct_bits(tail as u32, sig);
                }
            }
        }
        out.extend_from_slice(&enc.finish());
        out
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
        let mut pos = 0usize;
        let (count, used) = varint::read_u64(bytes)?;
        pos += used;
        // The range decoder zero-pads past the input tail instead of
        // reporting truncation, so the claimed count is not bounded by the
        // input length; cap it so an adversarial header cannot demand
        // unbounded allocation and decode work.
        if count > MAX_DECODE_VALUES {
            return Err(CodecError::Corrupt("implausible value count"));
        }
        let (row_len, used) = varint::read_u64(&bytes[pos..])?;
        pos += used;
        let shape = FpzipLike {
            row_len: row_len as usize,
        };
        let mut models = vec![BitModel::new(); LZ_TREE];
        let mut dec = RangeDecoder::new(&bytes[pos..])?;
        let mut out = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let lz = dec.decode_bits_tree(&mut models, 7)?;
            if lz > 64 {
                return Err(CodecError::Corrupt("leading-zero count out of range"));
            }
            let residual = if lz == 64 {
                0
            } else {
                let sig = 63 - lz;
                let tail = if sig > 32 {
                    let hi = u64::from(dec.decode_direct_bits(sig - 32)?);
                    let lo = u64::from(dec.decode_direct_bits(32)?);
                    (hi << 32) | lo
                } else {
                    u64::from(dec.decode_direct_bits(sig)?)
                };
                (1u64 << (63 - lz)) | tail
            };
            let value = f64::from_bits(shape.predict(&out, i) ^ residual);
            out.push(value);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[f64]) -> usize {
        let c = FpzipLike::new();
        let packed = c.compress(values);
        let out = c.decompress(&packed).unwrap();
        assert_eq!(out.len(), values.len());
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        packed.len()
    }

    #[test]
    fn empty_and_specials() {
        round_trip(&[]);
        round_trip(&[0.0]);
        round_trip(&[f64::NAN, f64::NEG_INFINITY, -0.0, f64::MIN_POSITIVE]);
    }

    #[test]
    fn constant_stream_is_tiny() {
        let values = vec![3.25e-9; 20_000];
        let packed = round_trip(&values);
        // lz=64 every time, strongly-adapted models: well under a bit/value.
        assert!(packed < 2000, "constant stream packed to {packed} bytes");
    }

    #[test]
    fn smooth_stream_beats_half_size() {
        let values: Vec<f64> = (0..20_000)
            .map(|i| 1.0 + 1e-9 * (i as f64 * 0.001).sin())
            .collect();
        let packed = round_trip(&values);
        assert!(
            packed * 2 < values.len() * 8,
            "smooth stream packed to {packed} of {}",
            values.len() * 8
        );
    }

    #[test]
    fn random_data_overhead_is_bounded() {
        let values: Vec<f64> = (0..5000u64)
            .map(|i| f64::from_bits(i.wrapping_mul(0x2545F4914F6CDD1D) | 1))
            .collect();
        let packed = round_trip(&values);
        assert!(packed < values.len() * 9, "packed {packed}");
    }

    #[test]
    fn two_d_mode_round_trips_and_beats_one_d_on_tensors() {
        // A 40×50 "tensor": rows vary slowly in time, columns wiggle.
        let row = 50usize;
        let values: Vec<f64> = (0..40 * row)
            .map(|i| {
                let (t, j) = (i / row, i % row);
                (1.0 + 0.3 * (j as f64)) * (1.0 + 1e-6 * t as f64)
            })
            .collect();
        let flat = FpzipLike::new().compress(&values);
        let c2 = FpzipLike::with_row_len(row);
        let shaped = c2.compress(&values);
        let out = c2.decompress(&shaped).unwrap();
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(
            shaped.len() < flat.len(),
            "2-D Lorenzo {shaped:?} should beat 1-D {flat:?}",
            shaped = shaped.len(),
            flat = flat.len()
        );
    }

    #[test]
    fn truncated_is_error_or_wrong_but_no_panic() {
        let c = FpzipLike::new();
        let packed = c.compress(&[1.0; 100]);
        // Range-coded tails may decode from padding; just require no panic.
        let _ = c.decompress(&packed[..4]);
        assert!(c.decompress(&[]).is_err());
    }
}
