//! Comparator compressors for the MASC evaluation (paper Table 3).
//!
//! The paper compares against GZIP, FPZIP, NDZIP and SpiceMate. None of
//! those is available as a pure-Rust offline dependency, so this crate
//! re-implements each tool's *core algorithm* from scratch on top of
//! [`masc_codec`]:
//!
//! - [`GzipLike`] — LZSS (32 KiB window) + canonical Huffman, DEFLATE's
//!   architecture;
//! - [`FpzipLike`] — predictive coding (1-D Lorenzo = previous value) with
//!   a context-modeled range coder on the XOR residual's magnitude class,
//!   FPZIP's architecture specialized to 1-D streams;
//! - [`NdzipLike`] — block delta transform + bit-plane transposition +
//!   zero-word suppression, NDZIP's fixed-rate pipeline;
//! - [`SpiceMate`] — an *error-bounded lossy* predictive quantizer with an
//!   entropy-coded quantization stream (the EDA-domain waveform compressor
//!   the paper cites);
//! - [`ChimpLike`] — the Chimp time-series XOR coder the paper cites as
//!   the typical time-series approach.
//!
//! All baselines operate on plain `f64` streams (the non-zero value stream
//! `S_NZ` of paper Table 2): unlike MASC, they have no access to the
//! sparsity pattern or stamp structure — that asymmetry is the paper's
//! point.

// Unit tests may assert with unwrap/expect; shipping code may not (see
// clippy.toml and masc-lint rule R1).
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chimp;
pub mod fpzip_like;
pub mod gzip_like;
pub mod ndzip_like;
pub mod spicemate;

pub use chimp::ChimpLike;
pub use fpzip_like::FpzipLike;
pub use gzip_like::GzipLike;
pub use ndzip_like::NdzipLike;
pub use spicemate::SpiceMate;

pub use masc_codec::CodecError;

/// A floating-point stream compressor.
///
/// Object-safe so benchmark harnesses can iterate over a
/// `Vec<Box<dyn Compressor>>`.
pub trait Compressor {
    /// Short display name (matches the paper's table rows).
    fn name(&self) -> &'static str;

    /// Compresses a value stream.
    fn compress(&self, values: &[f64]) -> Vec<u8>;

    /// Decompresses a stream produced by [`compress`](Self::compress).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] for truncated or corrupt input.
    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f64>, CodecError>;

    /// Whether decompression reproduces inputs bit-exactly.
    fn is_lossless(&self) -> bool {
        true
    }

    /// Maximum absolute error guaranteed by a lossy compressor (`0.0` for
    /// lossless ones).
    fn max_error(&self) -> f64 {
        0.0
    }
}

/// Every baseline, boxed, for sweep harnesses.
pub fn all_baselines() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(GzipLike::new()),
        Box::new(FpzipLike::new()),
        Box::new(NdzipLike::new()),
        Box::new(SpiceMate::new(1e-6)),
        Box::new(ChimpLike::new()),
    ]
}

/// Helper: bytes of a value stream (`8 × len`).
pub fn raw_bytes(values: &[f64]) -> usize {
    values.len() * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_five() {
        let all = all_baselines();
        let names: Vec<_> = all.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "GzipLike",
                "FpzipLike",
                "NdzipLike",
                "SpiceMate",
                "ChimpLike"
            ]
        );
        assert_eq!(all.iter().filter(|c| !c.is_lossless()).count(), 1);
    }

    #[test]
    fn every_baseline_round_trips_a_smooth_stream() {
        let values: Vec<f64> = (0..5000)
            .map(|i| 1e-3 * (1.0 + 1e-5 * (i as f64 * 0.01).sin()))
            .collect();
        for c in all_baselines() {
            let packed = c.compress(&values);
            let out = c.decompress(&packed).unwrap();
            assert_eq!(out.len(), values.len(), "{}", c.name());
            if c.is_lossless() {
                for (a, b) in values.iter().zip(&out) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{}", c.name());
                }
            } else {
                let eb = c.max_error();
                for (a, b) in values.iter().zip(&out) {
                    assert!((a - b).abs() <= eb, "{}: {a} vs {b}", c.name());
                }
            }
        }
    }
}
